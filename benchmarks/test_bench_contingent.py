"""EX3 (3.1.3) — contingent transaction cost vs alternative depth.

Sweep: chains of alternatives where the first k fail.  Expected shape:
cost grows linearly with the number of failed attempts; exactly one
alternative ever commits.
"""

from conftest import fresh_runtime, incrementer, make_counters

from repro.bench.report import print_table
from repro.models.contingent import run_contingent


def _run(failures_before_success, total=8, seed=3):
    rt = fresh_runtime(seed=seed)
    oids = make_counters(rt, total)
    bodies = [
        incrementer(oid, fail=(index < failures_before_success))
        for index, oid in enumerate(oids)
    ]
    steps_before = rt.steps
    committed_before = rt.manager.stats["committed"]
    result = run_contingent(rt, bodies)
    return (
        result,
        rt.steps - steps_before,
        rt.manager.stats["committed"] - committed_before,
    )


def test_bench_contingent_depth_sweep(benchmark):
    rows = []
    for failures in (0, 1, 2, 4, 7):
        result, steps, commits = _run(failures)
        assert result.committed
        assert result.chosen_index == failures
        assert commits == 1  # at most one alternative commits
        rows.append([failures + 1, steps, len(result.attempts)])
    print_table(
        "EX3: contingent cost vs attempts needed (8 alternatives)",
        ["attempts", "steps", "initiated"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]  # linear-ish growth
    benchmark(lambda: _run(4))


def test_bench_contingent_total_failure(benchmark):
    """All alternatives fail: every attempt is paid, nothing commits."""

    def run():
        rt = fresh_runtime(seed=4)
        oids = make_counters(rt, 6)
        return run_contingent(
            rt, [incrementer(oid, fail=True) for oid in oids]
        )

    result = run()
    assert not result.committed
    assert len(result.attempts) == 6
    print_table(
        "EX3b: contingent all-fail",
        ["alternatives", "attempts", "committed"],
        [[6, len(result.attempts), int(result.committed)]],
    )
    benchmark(run)
