"""EX19 — the observability layer's hot-path tax.

``install_observability`` hangs three things off a manager: the
EventMetrics + SpanBuilder narrow-kind bus subscriptions, the
``manager.metrics`` per-primitive latency hook, and the WAL append/flush
hook.  The acceptance bar for the obs PR is the same 5% budget as
PR 3's EX17: attaching the full kit must cost at most a few percent on
the manager-hot-path workloads, because this layer is meant to be *on*
in every later perf experiment.  This module re-runs the EX15
cooperative increment workload and the EX14c permit probe twice —
observed (full ``install_observability``) vs bare — and records the A/B
pairs into the shared bench trajectory (``BENCH_PR5.json``, written by
the suite conftest at session end).

Timing discipline (per the repo's A/B measurement notes): CPU time via
``time.thread_time``, alternating arms inside the repeat loop, one
unmeasured warm-up per arm, cell = min over repeats.

Gate discipline: the 5% budget is asserted on a *deterministic* cost
proxy — the interpreter call count inside the timed region, measured by
running each arm once under ``cProfile``.  On this single-vCPU container
the CPU-time pairs swing by tens of percent between arms that execute
byte-identical code (EX19b's probe loop is the control: same
instructions either way), so the raw ``thread_time`` columns are
recorded for the trajectory but are too noisy to gate on.  Call counts
over the seeded, conflict-free workloads are exactly reproducible, and
both arms run in the same process (same hash seed), so the A/B call
delta is the obs layer's cost and nothing else.
"""

import cProfile
import gc
import time

import pytest

from repro.bench.report import RECORDER, print_table
from repro.common.codec import decode_int, encode_int
from repro.common.ids import ObjectId, Tid
from repro.core.manager import TransactionManager
from repro.core.semantics import WRITE
from repro.obs import install_observability
from repro.runtime.coop import CooperativeRuntime

AB_SERIES_MARK = "obs attached vs detached"
REPEATS = 15


def _overhead_pct(baseline_ms, observed_ms):
    if baseline_ms <= 0:
        return 0.0
    return (observed_ms / baseline_ms - 1.0) * 100.0


def _ab_min(run_base, run_observed, repeats=REPEATS):
    """Best-of-N for both arms, alternating base/observed each repeat so
    drift lands on both equally.  Each ``run_*`` returns (check, elapsed);
    the checks must agree between the arms.  One unmeasured warm-up run
    per arm precedes the measured repeats."""
    run_base()
    run_observed()
    base_best = observed_best = None
    base_check = observed_check = None
    for __ in range(repeats):
        base_check, elapsed = run_base()
        base_best = elapsed if base_best is None else min(base_best, elapsed)
        observed_check, elapsed = run_observed()
        observed_best = (
            elapsed if observed_best is None else min(observed_best, elapsed)
        )
    assert base_check == observed_check
    return base_check, base_best, observed_best


def _ab_calls(run_base, run_observed):
    """The deterministic arm costs: interpreter calls (Python + builtin)
    inside the timed region, one profiled run per arm.  One run is
    enough — the workloads are seeded and conflict-free, so the counts
    are exact."""

    def count(run):
        profile = cProfile.Profile()
        check, __ = run(profile)
        return check, sum(entry.callcount for entry in profile.getstats())

    base_check, base_calls = count(run_base)
    observed_check, observed_calls = count(run_observed)
    assert base_check == observed_check
    return base_calls, observed_calls


# --------------------------------------------------------------- EX15 --


# Each transaction works a private strip of OBJECTS_PER_TXN objects for
# ROUNDS read+write rounds: 16 data operations per transaction.  The
# data ops ride the bus's unwatched fast path (READ/WRITE lock kinds are
# not subscribed), so the A/B delta weighs the kit's fixed per-lifecycle
# cost against a transaction that does a representative amount of work —
# a one-op transaction would measure the lifecycle-to-work ratio of a
# workload the manager never sees in the experiments.
OBJECTS_PER_TXN = 4
ROUNDS = 2


def _bodies(oids, transactions):
    """Disjoint multi-op increments: conflict-free, so both arms do
    identical logical work and the delta is purely the subscriber fan-out
    plus the metrics hooks."""

    def blind(index):
        strip = oids[
            index * OBJECTS_PER_TXN : (index + 1) * OBJECTS_PER_TXN
        ]

        def body(tx):
            for __ in range(ROUNDS):
                for oid in strip:
                    value = decode_int((yield tx.read(oid)))
                    yield tx.write(oid, encode_int(value + 1))

        return body

    return [blind(index) for index in range(transactions)]


def _run_coop(transactions, observed, profile=None):
    rt = CooperativeRuntime(TransactionManager(), seed=3)
    kit = None
    if observed:
        kit = install_observability(manager=rt.manager)

    def setup(tx):
        created = []
        for index in range(transactions * OBJECTS_PER_TXN):
            created.append((yield tx.create(encode_int(0), name=f"r{index}")))
        return created

    oids = rt.run(setup).value
    gc.collect()
    gc.disable()
    if profile is not None:
        profile.enable()
    start = time.thread_time()
    tids = [rt.spawn(body) for body in _bodies(oids, transactions)]
    outcomes = rt.commit_all(tids)
    elapsed = (time.thread_time() - start) * 1e3
    if profile is not None:
        profile.disable()
    gc.enable()

    def reader(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    finals = rt.run(reader).value
    assert sum(finals) == sum(outcomes.values()) * OBJECTS_PER_TXN * ROUNDS
    if kit is not None:
        # The observed arm must actually have observed the batch — an
        # accidentally detached kit would "win" the A/B for free.
        snap = kit.snapshot()
        assert snap["counters"]["txn.committed"] >= transactions
        assert len(kit.spans.spans) >= transactions
    return sum(outcomes.values()), elapsed


def test_bench_ex15_obs_overhead(benchmark):
    rows = []
    for transactions in (64, 128, 256):
        commits, base_ms, obs_ms = _ab_min(
            lambda: _run_coop(transactions, observed=False),
            lambda: _run_coop(transactions, observed=True),
        )
        # Same logical outcome either way: the kit only watches.
        assert commits == transactions
        base_calls, obs_calls = _ab_calls(
            lambda p: _run_coop(transactions, observed=False, profile=p),
            lambda p: _run_coop(transactions, observed=True, profile=p),
        )
        rows.append(
            [
                f"{transactions}t",
                commits,
                base_ms,
                obs_ms,
                _overhead_pct(base_ms, obs_ms),
                base_calls,
                obs_calls,
                _overhead_pct(base_calls, obs_calls),
            ]
        )
    print_table(
        f"EX19a: EX15 coop workload — {AB_SERIES_MARK}",
        [
            "workload",
            "commits",
            "off ms",
            "on ms",
            "overhead %",
            "off calls",
            "on calls",
            "call overhead %",
        ],
        rows,
    )
    benchmark(lambda: _run_coop(32, observed=True))


# -------------------------------------------------------------- EX14c --


def _allows_probe(total, checks, observed, profile=None):
    """EX14c through the manager: ``allows()`` probes against an OD
    carrying ``total`` foreign permits, on a manager that may carry the
    full obs kit (bus subscriptions + metrics hooks included).  The
    probe itself emits no events — this arm measures the *ambient* cost
    of an instrumented manager on an uninstrumented path."""
    manager = TransactionManager()
    rt = CooperativeRuntime(manager, seed=7)
    if observed:
        install_observability(manager=manager)

    oids = {}

    def setup(tx):
        oids["a"] = yield tx.create(b"v0")

    assert rt.run(setup).committed
    oid = ObjectId(oids["a"])
    for value in range(total):
        manager.permits.grant(
            oid, Tid(value + 1), receiver=Tid(10_000 + value), operation=WRITE
        )
    gc.collect()
    gc.disable()
    if profile is not None:
        profile.enable()
    start = time.thread_time()
    for __ in range(checks):
        manager.permits.allows(oid, Tid(1), Tid(10_000), WRITE)
    elapsed = (time.thread_time() - start) * 1e6
    if profile is not None:
        profile.disable()
    gc.enable()
    assert manager.permits.allows(oid, Tid(1), Tid(10_000), WRITE)
    return total, elapsed


def test_bench_ex14c_obs_overhead(benchmark):
    rows = []
    for total in (64, 256, 1024):
        __, base_us, obs_us = _ab_min(
            lambda: _allows_probe(total, 10_000, observed=False),
            lambda: _allows_probe(total, 10_000, observed=True),
        )
        base_calls, obs_calls = _ab_calls(
            lambda p: _allows_probe(total, 10_000, observed=False, profile=p),
            lambda p: _allows_probe(total, 10_000, observed=True, profile=p),
        )
        rows.append(
            [
                total,
                base_us,
                obs_us,
                _overhead_pct(base_us, obs_us),
                base_calls,
                obs_calls,
                _overhead_pct(base_calls, obs_calls),
            ]
        )
    print_table(
        f"EX19b: EX14c allows() probe — {AB_SERIES_MARK}",
        [
            "permits on OD",
            "off us",
            "on us",
            "overhead %",
            "off calls",
            "on calls",
            "call overhead %",
        ],
        rows,
    )
    benchmark(lambda: _allows_probe(256, 1000, observed=True))


def test_bench_pr5_overhead_budget():
    """The acceptance gate on the recorded trajectory: median obs
    overhead across every A/B row stays within the 5% budget the ISSUE
    sets (same bar as PR 3's EX17).  The gate reads the deterministic
    call-overhead column — exactly reproducible per seeded workload —
    because the CPU-time pairs on a shared single-vCPU box jitter by
    more than the budget between byte-identical arms (see the module
    docstring).  The verdict is recorded as its own series so
    BENCH_PR5.json carries the judgement alongside the raw pairs."""
    overheads = []
    for entry in RECORDER.series:
        if AB_SERIES_MARK not in entry["series"]:
            continue
        pct_index = entry["headers"].index("call overhead %")
        overheads.extend(row[pct_index] for row in entry["rows"])
    if not overheads:
        pytest.skip("the A/B benches did not run in this session")
    overheads.sort()
    middle = len(overheads) // 2
    if len(overheads) % 2:
        median = overheads[middle]
    else:
        median = (overheads[middle - 1] + overheads[middle]) / 2.0
    print_table(
        "EX19: obs overhead budget",
        ["median overhead %", "budget %", "rows measured"],
        [[median, 5.0, len(overheads)]],
    )
    assert median <= 5.0, f"median obs overhead {median:.2f}% > 5%"
