"""EX16 (extension) — large objects through the full transaction stack.

EOS-style segment chains let objects exceed a page.  Sweep the object
size through the page boundary and measure transactional read/write cost
(locks + latches + before/after-image logging included).  Expected
shape: cost is linear in size with a step at the chunking threshold
(one page → several), and abort/recovery semantics are size-independent.
"""

import time

from conftest import fresh_runtime

from repro.bench.report import print_table
from repro.storage.page import PAGE_SIZE


def _round_trip_ms(size, writes=4, seed=41):
    rt = fresh_runtime(seed=seed)
    payload = bytes(index % 251 for index in range(size))

    def setup(tx):
        return (yield tx.create(payload, name="blob"))

    oid = rt.run(setup).value
    start = time.perf_counter()

    def writer(tx):
        for round_number in range(writes):
            current = yield tx.read(oid)
            yield tx.write(oid, current[::-1])

    tid = rt.spawn(writer)
    rt.commit(tid)
    elapsed = (time.perf_counter() - start) * 1e3

    def reader(tx):
        return (yield tx.read(oid))

    final = rt.run(reader).value
    expected = payload[::-1] if writes % 2 else payload
    assert final == expected
    return elapsed


def test_bench_large_object_size_sweep(benchmark):
    rows = []
    for size in (512, PAGE_SIZE // 2, PAGE_SIZE * 2, PAGE_SIZE * 8):
        elapsed = _round_trip_ms(size)
        rows.append([size, size > PAGE_SIZE - 64, elapsed])
    print_table(
        "EX16: transactional RMW cost vs object size (4 rewrites)",
        ["bytes", "chunked", "ms"],
        rows,
    )
    assert rows[-1][2] > rows[0][2]  # bigger costs more
    benchmark(lambda: _round_trip_ms(PAGE_SIZE * 2, writes=1))


def test_bench_large_object_abort_and_recovery(benchmark):
    """Failure atomicity is size-independent: a multi-page object rolls
    back exactly like a small one, in memory and across a crash."""

    def run():
        rt = fresh_runtime(seed=42)
        storage = rt.manager.storage
        payload = b"big" * 5000  # ~15KB: four chunks

        def setup(tx):
            return (yield tx.create(payload, name="blob"))

        oid = rt.run(setup).value

        def doomed(tx):
            yield tx.write(oid, b"overwritten" * 2000)
            yield tx.abort()

        tid = rt.spawn(doomed)
        rt.wait(tid)

        def reader(tx):
            return (yield tx.read(oid))

        assert rt.run(reader).value == payload

        storage.log.flush()
        storage.crash()
        storage.recover()
        assert storage.read_object(None, oid) == payload
        return True

    assert run()
    print_table("EX16b: large-object abort + crash recovery",
                ["outcome"], [["intact"]])
    benchmark(run)
