"""EX13 (ablation) — restart recovery time vs log length.

Recovery scans the whole durable log (analysis + redo + undo), so its
cost grows with accumulated history.  The sharp checkpoint (flush all
pages, truncate the log when quiescent) bounds it.  Sweep the number of
committed transactions before the crash, with and without a checkpoint.

Expected shape: recovery time linear in log length without checkpoints,
flat with them; recovered state identical either way.
"""

import time

from conftest import fresh_runtime, incrementer, make_counters

from repro.bench.report import print_table


def _workload(history_length, checkpoint, seed=27):
    rt = fresh_runtime(seed=seed)
    storage = rt.manager.storage
    oids = make_counters(rt, 4)
    for index in range(history_length):
        tid = rt.spawn(incrementer(oids[index % 4]))
        rt.commit(tid)
    if checkpoint:
        rt.manager.checkpoint(truncate=True)
    storage.log.flush()
    storage.crash()
    start = time.perf_counter()
    storage.recover()
    elapsed = (time.perf_counter() - start) * 1e3
    finals = [
        int(storage.read_object(None, oid).decode("ascii")) for oid in oids
    ]
    return elapsed, finals, len(storage.log.records())


def test_bench_recovery_log_length_sweep(benchmark):
    rows = []
    for history in (8, 32, 128, 512):
        plain_ms, plain_state, __ = _workload(history, checkpoint=False)
        ckpt_ms, ckpt_state, __ = _workload(history, checkpoint=True)
        assert plain_state == ckpt_state  # same recovered data
        expected = [
            len([i for i in range(history) if i % 4 == slot])
            for slot in range(4)
        ]
        assert plain_state == expected
        rows.append([history, plain_ms, ckpt_ms])
    print_table(
        "EX13: recovery time vs history length — with/without checkpoint",
        ["committed txns", "no checkpoint (ms)", "sharp checkpoint (ms)"],
        rows,
    )
    # Without checkpoints recovery grows with history; with them it
    # stays (near) flat — the longest run shows a clear win.
    assert rows[-1][1] > rows[-1][2]
    benchmark(lambda: _workload(64, checkpoint=False))


def test_bench_recovery_loser_heavy(benchmark):
    """Undo-heavy recovery: many uncommitted writers at crash time."""

    def run(losers):
        rt = fresh_runtime(seed=28)
        storage = rt.manager.storage
        oids = make_counters(rt, losers)
        committed = rt.spawn(incrementer(oids[0]))
        rt.commit(committed)
        for oid in oids:
            rt.spawn(incrementer(oid, delta=100))
        rt.run_until_quiescent()  # all complete, none commit
        storage.log.flush()
        storage.crash()
        start = time.perf_counter()
        report = storage.recover()
        elapsed = (time.perf_counter() - start) * 1e3
        return elapsed, report.undone

    rows = []
    for losers in (2, 8, 32):
        elapsed, undone = run(losers)
        assert undone >= losers
        rows.append([losers, undone, elapsed])
    print_table(
        "EX13b: undo-heavy recovery",
        ["in-flight writers", "updates undone", "ms"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]
    benchmark(lambda: run(8))
