"""EX14d / EX15c — wall-clock variants for the sharded engine.

EX15c extends the EX15 substitution check with throughput: the same
increment workload on the deterministic sharded engine (1 vs 4 shards,
single thread — overhead check), the thread-per-shard parallel runtime,
and shared-nothing multi-process shard partitions.  The ISSUE's ≥ 2×
speedup gate applies to the multi-process configuration and only on a
runner with enough cores to make the claim physically possible; on
smaller runners the measured ratio is still printed and recorded in the
trajectory file so multi-core CI enforces it.

EX14d is the cross-shard tax probe: the same transaction population
committed as single-shard versus spread multi-shard footprints, so the
barrier's cost (foreign segment flushes) is visible as a per-commit
wall-clock delta.
"""

import os
import time

import pytest

from repro.bench.report import print_table
from repro.bench.shardload import (
    cpu_can_support_speedup_gate,
    multiprocess_throughput,
    parallel_runtime_throughput,
    sharded_oracle_throughput,
)
from repro.common.codec import encode_int
from repro.common.ids import Tid
from repro.storage.segmented import ShardedStorageManager


def test_bench_ex15c_sharded_throughput(benchmark):
    rows = []

    # Deterministic engine, one thread: sharding must not tax the oracle.
    c1, w1, t1 = sharded_oracle_throughput(1, n_txns=32)
    c4, w4, t4 = sharded_oracle_throughput(4, n_txns=32)
    rows.append(["oracle 1 shard", c1, f"{w1 * 1e3:.1f}", f"{t1:.0f}"])
    rows.append(["oracle 4 shards", c4, f"{w4 * 1e3:.1f}", f"{t4:.0f}"])
    assert c1 == c4 == 32
    # Striping overhead stays within an order of magnitude.
    assert w4 < w1 * 10

    # Thread-per-shard runtime (GIL-bound: concurrency, not parallelism).
    pc, pw, pt = parallel_runtime_throughput(4, n_txns=32)
    rows.append(["threads 4 shards", pc, f"{pw * 1e3:.1f}", f"{pt:.0f}"])
    assert pc == 32

    # Shared-nothing multi-process partitions: the scaling configuration.
    mc1, mw1, mt1 = multiprocess_throughput(1, txns_per_shard=64)
    mc4, mw4, mt4 = multiprocess_throughput(4, txns_per_shard=64)
    speedup = (mt4 / mt1) if mt1 else 0.0
    rows.append(["procs 1 shard", mc1, f"{mw1 * 1e3:.1f}", f"{mt1:.0f}"])
    rows.append(["procs 4 shards", mc4, f"{mw4 * 1e3:.1f}", f"{mt4:.0f}"])
    rows.append(
        [f"speedup (cores={os.cpu_count()})", "", "", f"{speedup:.2f}x"]
    )
    assert mc1 == 64 and mc4 == 256

    print_table(
        "EX15c: sharded engine wall-clock throughput",
        ["configuration", "commits", "ms", "txn/s"],
        rows,
    )

    if cpu_can_support_speedup_gate():
        # The ISSUE acceptance gate, enforced where it is measurable.
        assert speedup >= 2.0, (
            f"4-shard multiprocess speedup {speedup:.2f}x < 2.0x on a "
            f"{os.cpu_count()}-core runner"
        )

    benchmark(lambda: sharded_oracle_throughput(4, n_txns=16))


def _commit_population(multi_shard, population=24):
    """Commit ``population`` transactions; footprints either stay on one
    shard or spread over all four.  Returns per-commit milliseconds."""
    store = ShardedStorageManager(n_shards=4)
    setup = Tid(999)
    oids = [
        store.create_object(setup, encode_int(0), name=f"e{i}")
        for i in range(16)
    ]
    store.log_commit(setup)
    by_shard = {}
    for oid in oids:
        by_shard.setdefault(store.router.shard_of(oid), []).append(oid)
    start = time.perf_counter()
    for index in range(population):
        tid = Tid(index + 1)
        if multi_shard:
            targets = [group[0] for group in by_shard.values()]
        else:
            group = list(by_shard.values())[index % len(by_shard)]
            targets = [group[0]]
        for oid in targets:
            store.write_object(tid, oid, encode_int(index))
        store.log_commit(tid)
    elapsed = time.perf_counter() - start
    return elapsed * 1e3 / population


def test_bench_ex14d_cross_shard_commit_tax(benchmark):
    rows = []
    local_ms = _commit_population(multi_shard=False)
    spread_ms = _commit_population(multi_shard=True)
    rows.append(["single-shard footprint", f"{local_ms:.4f}"])
    rows.append(["four-shard footprint", f"{spread_ms:.4f}"])
    rows.append(
        ["barrier tax", f"{spread_ms / local_ms:.2f}x" if local_ms else "-"]
    )
    print_table(
        "EX14d: cross-shard commit barrier tax (per-commit ms)",
        ["footprint", "ms/commit"],
        rows,
    )
    # The barrier costs something but stays bounded: the eager foreign
    # flushes are per-touched-segment, not per-object.
    assert spread_ms < local_ms * 50
    benchmark(lambda: _commit_population(multi_shard=True, population=8))
