"""EX10 (4.2) — commit-time dependency resolution and abort cascades.

Sweeps: (a) CD chains of growing length committed from the tail — each
commit must wait for its dependee, so draining the chain costs O(n)
try-commit passes; (b) AD cascade chains — aborting the head takes the
whole chain down in one call, with undo work linear in chain length.
"""

import time

from conftest import fresh_runtime, incrementer, make_counters

from repro.bench.report import print_table
from repro.core.dependency import DependencyType
from repro.core.outcomes import CommitStatus


def _build_chain(dep_type, length, seed=33):
    """length transactions, each dependent on the previous."""
    rt = fresh_runtime(seed=seed)
    oids = make_counters(rt, length)
    tids = []
    for oid in oids:
        tid = rt.spawn(incrementer(oid))
        rt.run_until_quiescent()
        tids.append(tid)
    for earlier, later in zip(tids, tids[1:]):
        rt.manager.form_dependency(dep_type, earlier, later)
    return rt, tids


def test_bench_commit_chain_resolution(benchmark):
    rows = []
    for length in (2, 4, 8, 16, 32):
        rt, tids = _build_chain(DependencyType.CD, length)
        # Drive commits from the TAIL: every attempt on a non-ready
        # transaction reports BLOCKED until its dependee commits.
        blocked_attempts = 0
        outstanding = list(reversed(tids))
        while outstanding:
            for tid in list(outstanding):
                outcome = rt.manager.try_commit(tid)
                if outcome.is_final:
                    outstanding.remove(tid)
                elif outcome.status is CommitStatus.BLOCKED:
                    blocked_attempts += 1
        rows.append([length, blocked_attempts])
    print_table(
        "EX10: CD chain drained tail-first — blocked commit attempts",
        ["chain length", "blocked attempts"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]

    def representative():
        rt, tids = _build_chain(DependencyType.CD, 8)
        return rt.commit_all(tids)

    benchmark(representative)


def test_bench_abort_cascade(benchmark):
    rows = []
    for length in (2, 4, 8, 16, 32):
        rt, tids = _build_chain(DependencyType.AD, length)
        start = time.perf_counter()
        rt.abort(tids[0])  # the head: everyone depends on it transitively
        elapsed = (time.perf_counter() - start) * 1e6
        aborted = rt.manager.stats["aborted"]
        assert aborted == length
        assert rt.manager.stats["cascaded_aborts"] == length - 1
        rows.append([length, aborted, elapsed])
    print_table(
        "EX10b: AD cascade from the head",
        ["chain length", "aborted", "us"],
        rows,
    )

    def representative():
        rt, tids = _build_chain(DependencyType.AD, 8)
        rt.abort(tids[0])
        return rt.manager.stats["aborted"]

    benchmark(representative)


def test_bench_gc_group_resolution(benchmark):
    """Group-commit resolution scales with group size: one try_commit on
    any member resolves the whole component."""
    rows = []
    for size in (2, 4, 8, 16, 32):
        rt, tids = _build_chain(DependencyType.GC, size)
        start = time.perf_counter()
        outcome = rt.manager.try_commit(tids[0])
        elapsed = (time.perf_counter() - start) * 1e6
        assert outcome.status is CommitStatus.COMMITTED
        assert len(outcome.group) == size
        rows.append([size, elapsed, elapsed / size])
    print_table(
        "EX10c: GC component committed by ONE call",
        ["group size", "us", "us/member"],
        rows,
    )

    def representative():
        rt, tids = _build_chain(DependencyType.GC, 8)
        return rt.manager.try_commit(tids[0])

    benchmark(representative)
