"""EX18 — multi-site group commit: message cost and convergence rounds.

Sweep 1: happy-path presumed-abort 2PC over a growing site count.  The
protocol exchange per group is linear in the number of participants
(one PREPARE/VOTE/DECISION/ACK quartet each, plus the console RPCs that
drive the workload), and the message count is *deterministic* — the
same cluster, the same plan, the same bytes on the wire every run — so
the sweep doubles as a chattiness regression tripwire.

Sweep 2: recovery convergence after a coordinator power cut at each 2PC
protocol phase.  The cost unit is cluster rounds to quiescence.  The
shape: crashes *before* the decision cost hundreds of rounds (console
RPC retries against the dead coordinator, then restart plus the paced
in-doubt inquiry), while a crash *after* the release settles almost
immediately — but every phase stays under one convergence budget.
"""

from repro.bench.report import print_table
from repro.chaos.faults import FaultPlan
from repro.cluster import Cluster
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import probe_message_steps, run_cluster_plan
from repro.storage.log import CommitRecord

SITE_POOL = ("alpha", "beta", "gamma", "delta", "epsilon")


def _body(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def _happy_path(n_sites):
    cluster = Cluster(sites=SITE_POOL[:n_sites])
    refs = [
        cluster.spawn_at(name, _body(name.encode()))
        for name in sorted(cluster.sites)
    ]
    for ref in refs:
        cluster.wait(ref)
    cluster.link_group(refs)
    sent_before = cluster.fabric.stats["sent"]
    rounds_before = cluster.rounds
    outcome = cluster.group_commit(refs)
    cluster.converge()
    commit_messages = cluster.fabric.stats["sent"] - sent_before
    commit_rounds = cluster.rounds - rounds_before
    committed_everywhere = all(
        any(
            isinstance(record, CommitRecord)
            and record.tid.value == ref.tid.value
            for record in cluster.sites[ref.site].durable_records()
        )
        for ref in refs
    )
    return outcome, commit_messages, commit_rounds, committed_everywhere


def test_bench_group_commit_vs_site_count(benchmark):
    rows = []
    for n_sites in (2, 3, 4, 5):
        outcome, messages, rounds, everywhere = _happy_path(n_sites)
        assert outcome.committed and everywhere
        rows.append([n_sites, messages, messages / n_sites, rounds])
    print_table(
        "EX18: presumed-abort group commit vs site count",
        ["sites", "commit messages", "messages/site", "rounds"],
        rows,
    )
    # The protocol is linear in participants: per-site message cost is
    # flat (within 2x across the sweep) and the 3-site exchange stays
    # under the EX18 budget of 16 messages end to end.
    per_site = [row[2] for row in rows]
    assert max(per_site) <= 2 * min(per_site)
    assert rows[1][1] <= 16
    benchmark(lambda: _happy_path(3))


def test_bench_recovery_convergence_after_coordinator_crash(benchmark):
    """Rounds to a settled cluster, per crashed protocol phase."""
    spec = cluster_scenarios.get("cluster_group_commit")
    phases = ("gc_begin", "prepare", "vote", "decision", "ack")
    steps_by_phase = {}
    for number, detail in probe_message_steps(spec):
        kind = detail.split(":")[-1]
        if kind in phases:
            steps_by_phase.setdefault(kind, (number, detail))
    coordinator = sorted(spec.sites)[0]

    def crash_at(step):
        return run_cluster_plan(
            spec, FaultPlan(site_crash_at=(coordinator, step))
        )

    rows = []
    for phase in phases:
        step, __ = steps_by_phase[phase]
        result = crash_at(step)
        assert result.ok, result.describe()
        rows.append([phase, step, result.cluster.rounds, result.report.ok])
    print_table(
        "EX18: convergence after coordinator crash, by protocol phase",
        ["crashed at", "msg step", "rounds to settle", "oracles ok"],
        rows,
    )
    # Every phase settles inside one convergence budget — no crash
    # position strands the cluster in a permanent inquiry storm.
    settle_rounds = [row[2] for row in rows]
    assert max(settle_rounds) <= 400
    first_step = steps_by_phase["gc_begin"][0]
    benchmark(lambda: crash_at(first_step))
