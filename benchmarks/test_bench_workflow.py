"""EX9 (appendix) — the X_conference workflow under availability sweeps.

Runs the literal appendix program over inventories of varying scarcity.
Expected shape: success rate tracks min(flight seats across preferred
airlines, hotel rooms); compensation work appears exactly when a flight
was booked but no hotel was available; the car race never books more
than one car.
"""

from conftest import fresh_runtime

from repro.bench.report import print_table
from repro.workflow.engine import WorkflowEngine
from repro.workflow.travel import (
    TravelAgency,
    build_x_conference_spec,
    x_conference,
)


def _campaign(availability, trips=6, seed=21):
    rt = fresh_runtime(seed=seed)
    agency = TravelAgency(rt, availability=dict(availability))
    steps_before = rt.steps
    successes = sum(x_conference(rt, agency) for __ in range(trips))
    return successes, rt.steps - steps_before, agency


def test_bench_workflow_availability_sweep(benchmark):
    rows = []
    scenarios = [
        ("plentiful", {}),
        ("3 flights each", {"Delta": 1, "United": 1, "American": 1}),
        ("2 rooms only", {"Equator": 2}),
        ("no hotel", {"Equator": 0}),
        ("no flights", {"Delta": 0, "United": 0, "American": 0}),
    ]
    for label, availability in scenarios:
        successes, steps, agency = _campaign(availability)
        rows.append([label, successes, 6, steps])
    print_table(
        "EX9: X_conference success rate vs inventory (6 trips attempted)",
        ["scenario", "booked", "attempted", "steps"],
        rows,
    )
    by_label = {row[0]: row[1] for row in rows}
    assert by_label["plentiful"] == 5  # default 5 units of everything
    assert by_label["3 flights each"] == 3
    assert by_label["2 rooms only"] == 2
    assert by_label["no hotel"] == 0
    assert by_label["no flights"] == 0
    benchmark(lambda: _campaign({}, trips=2))


def test_bench_workflow_compensation_accounting(benchmark):
    """When the hotel is the bottleneck, every failed trip must leave the
    airline inventory untouched (compensations ran)."""

    def run():
        successes, steps, agency = _campaign({"Equator": 2}, trips=6)
        return successes, agency

    successes, agency = run()
    flights_used = sum(
        5 - agency.availability(a) for a in ("Delta", "United", "American")
    )
    print_table(
        "EX9b: compensation accounting (2 rooms, 6 trips)",
        ["booked trips", "flights consumed"],
        [[successes, flights_used]],
    )
    assert successes == 2
    assert flights_used == 2  # failed trips gave their seats back
    benchmark(lambda: run()[0])


def test_bench_workflow_engine_vs_literal(benchmark):
    """The declarative engine pays some overhead over the hand-written
    translation; both must agree on outcomes."""

    def literal():
        rt = fresh_runtime(seed=30)
        agency = TravelAgency(rt)
        steps_before = rt.steps
        assert x_conference(rt, agency) == 1
        return rt.steps - steps_before

    def declarative():
        rt = fresh_runtime(seed=30)
        agency = TravelAgency(rt)
        steps_before = rt.steps
        result = WorkflowEngine(rt).execute(build_x_conference_spec(agency))
        assert result.success
        return rt.steps - steps_before

    rows = [
        ["literal appendix program", literal()],
        ["workflow engine", declarative()],
    ]
    print_table("EX9c: literal vs engine steps", ["driver", "steps"], rows)
    benchmark(literal)


def test_bench_parallel_vs_sequential_engine(benchmark):
    """Independent I/O-bound tasks overlap under parallel=True.

    On the threaded runtime with a 10ms "external call" inside each task
    (the reservation systems of the appendix scenario), the sequential
    engine pays the sum of task latencies; the parallel engine pays
    roughly the longest one.
    """
    import time as _time

    from repro.common.codec import decode_int, encode_int
    from repro.runtime.threaded import ThreadedRuntime
    from repro.workflow.spec import WorkflowSpec

    DELAY = 0.01

    def build_spec(oids):
        def slow(oid):
            def body(tx):
                value = decode_int((yield tx.read(oid)))
                _time.sleep(DELAY)  # the external reservation call
                yield tx.write(oid, encode_int(value + 1))

            return body

        spec = WorkflowSpec("fanout")
        for index, oid in enumerate(oids):
            spec.task(f"t{index}").alternative(slow(oid))
        return spec

    def run(parallel, tasks):
        rt = ThreadedRuntime(watchdog_interval=0.05, poll_timeout=0.001)
        try:
            def setup(tx):
                created = []
                for index in range(tasks):
                    created.append(
                        (yield tx.create(encode_int(0), name=f"w{index}"))
                    )
                return created

            __, oids = rt.run(setup)
            start = _time.perf_counter()
            result = WorkflowEngine(rt, parallel=parallel).execute(
                build_spec(oids)
            )
            elapsed = (_time.perf_counter() - start) * 1e3
            assert result.success
            return elapsed
        finally:
            rt.close()

    rows = []
    for tasks in (2, 4, 8):
        sequential_ms = run(False, tasks)
        parallel_ms = run(True, tasks)
        rows.append(
            [tasks, sequential_ms, parallel_ms,
             sequential_ms / parallel_ms]
        )
    print_table(
        "EX9d: sequential vs parallel engine (10ms I/O per task, threads)",
        ["tasks", "sequential ms", "parallel ms", "speedup"],
        rows,
    )
    # 8 independent tasks: parallel must be clearly faster than serial.
    assert rows[-1][1] > rows[-1][2]
    benchmark(lambda: run(True, 4))
