"""EX2 (3.1.2) — group commit cost vs group size, and flush coalescing.

Sweep: distributed transactions of growing component count.  Expected
shape: one commit call commits the whole group; total scheduler steps grow
roughly linearly with group size, and the log carries exactly ONE commit
record per group regardless of size.

The flush-coalescer sweep measures the storage-side analogue: N
independent commits enrolled in one flush batch produce ONE device
``fsync`` (asserted via ``flush_count``), with the amortization factor
growing linearly in the batch bound.
"""

from conftest import fresh_runtime, incrementer, make_counters

from repro.bench.report import print_table
from repro.common.ids import Tid
from repro.models.distributed import run_distributed
from repro.storage.log import CommitRecord, FlushCoalescer, WriteAheadLog


def _run(group_size, seed=5):
    rt = fresh_runtime(seed=seed)
    oids = make_counters(rt, group_size)
    steps_before = rt.steps
    result = run_distributed(rt, [incrementer(oid) for oid in oids])
    commit_records = [
        r
        for r in rt.manager.storage.log.records()
        if isinstance(r, CommitRecord)
    ]
    return result, rt.steps - steps_before, len(commit_records)


def test_bench_group_commit_size_sweep(benchmark):
    rows = []
    for size in (1, 2, 4, 8, 16):
        result, steps, commit_count = _run(size)
        assert result.committed
        rows.append(
            [size, steps, steps / size, commit_count - 1]  # -1 for setup
        )
    print_table(
        "EX2: group commit vs group size",
        ["group size", "steps", "steps/member", "group commit records"],
        rows,
    )
    # One commit record per group, independent of size.
    assert all(row[3] == 1 for row in rows)
    # Per-member cost roughly flat: within 4x of the smallest.
    per_member = [row[2] for row in rows]
    assert max(per_member) <= 4 * min(per_member)
    benchmark(lambda: _run(8))


def test_bench_flush_coalescing(benchmark):
    """EX2c: the flush coalescer amortises one fsync over a whole batch.

    400 commits under growing batch bounds; flushes drop from one-per-
    commit (batch=1) to one-per-batch, and a full batch of N enrolled
    commits costs exactly 1 device flush.
    """
    commits = 400

    def run(batch):
        log = WriteAheadLog(
            group_commit=(
                FlushCoalescer(max_commits=batch) if batch > 1 else None
            )
        )
        before = log.flush_count
        for value in range(1, commits + 1):
            log.log_commit(Tid(value))
        return log.flush_count - before

    rows = []
    for batch in (1, 2, 4, 8, 16, 32):
        flushes = run(batch)
        rows.append([batch, commits, flushes, commits / flushes])
    print_table(
        "EX2c: flush coalescing — 400 commits vs batch bound",
        ["batch", "commits", "fsyncs", "commits/fsync"],
        rows,
    )
    # N enrolled commits -> exactly commits/N device flushes.
    for batch, total, flushes, __ in rows:
        assert flushes == total // batch if batch > 1 else total
    benchmark(lambda: run(8))


def test_bench_group_abort_cost(benchmark):
    """Group abort: one failing member takes the whole group down; undo
    work grows with group size."""

    def run(size):
        rt = fresh_runtime(seed=9)
        oids = make_counters(rt, size)
        bodies = [incrementer(oid) for oid in oids[:-1]]
        bodies.append(incrementer(oids[-1], fail=True))
        steps_before = rt.steps
        result = run_distributed(rt, bodies)
        return result, rt.steps - steps_before

    rows = []
    for size in (2, 4, 8, 16):
        result, steps = run(size)
        assert not result.committed
        rows.append([size, steps])
    print_table(
        "EX2b: group abort cost vs group size",
        ["group size", "steps"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]
    benchmark(lambda: run(8))
