"""FIG1 (4.1) — the descriptor data structures at scale.

The paper's structures exist for lookup efficiency: TDs in a chained hash
table, permits and dependencies doubly hashed on the two tids involved.
Sweeps: table size vs lookup cost (chain lengths stay bounded thanks to
resizing), and permit-check cost with many permits on one object vs
spread across objects.
"""

import time

from conftest import fresh_runtime

from repro.bench.report import print_table
from repro.common.hashtable import ChainedHashTable, DoubleHashIndex
from repro.common.ids import ObjectId, Tid
from repro.core.locks import ObjectRegistry
from repro.core.permits import PermitTable
from repro.core.semantics import WRITE


def _timed(callable_, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def test_bench_chained_table_scaling(benchmark):
    rows = []
    for size in (100, 1_000, 10_000, 50_000):
        table = ChainedHashTable(buckets=8)
        for index in range(size):
            table.put(Tid(index), index)

        probe_keys = [Tid(i * 7 % size) for i in range(1000)]

        def probe():
            for key in probe_keys:
                table.get(key)

        micros = _timed(probe)
        rows.append(
            [size, table.bucket_count, table.longest_chain(), micros]
        )
    print_table(
        "FIG1a: chained TD table — 1000 probes",
        ["entries", "buckets", "longest chain", "us/1000 probes"],
        rows,
    )
    # Resizing keeps chains short at every scale.
    assert all(row[2] <= 16 for row in rows)
    # Probe cost roughly flat (hash table, not a list scan).
    assert rows[-1][3] <= 20 * rows[0][3]
    table = ChainedHashTable()
    for index in range(10_000):
        table.put(Tid(index), index)
    benchmark(lambda: [table.get(Tid(i)) for i in range(0, 10_000, 100)])


def test_bench_double_hash_index_scaling(benchmark):
    rows = []
    for pairs in (100, 1_000, 10_000):
        index = DoubleHashIndex()
        for value in range(pairs):
            index.add(Tid(value % 50), Tid(value % 97), value)

        def probe():
            for value in range(50):
                index.by_left(Tid(value))
            for value in range(97):
                index.by_right(Tid(value))

        rows.append([pairs, _timed(probe)])
    print_table(
        "FIG1b: doubly hashed permit/dependency index — full fan probes",
        ["entries", "us/probe sweep"],
        rows,
    )
    benchmark(lambda: index.by_left(Tid(7)))


def test_bench_permit_check_cost(benchmark):
    """The lock path scans an object's permit list (section 4.2 step 1b):
    cost grows with permits on THAT object, not with permits elsewhere."""
    rows = []
    for on_object, elsewhere in ((4, 0), (64, 0), (4, 2000), (64, 2000)):
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        hot = ObjectId(1)
        for value in range(on_object):
            permits.grant(
                hot, Tid(value + 1), receiver=Tid(5000), operation=WRITE
            )
        for value in range(elsewhere):
            permits.grant(
                ObjectId(value + 10),
                Tid(value + 1),
                receiver=Tid(6000),
                operation=WRITE,
            )

        def probe():
            for __ in range(1000):
                permits.allows(hot, Tid(1), Tid(5000), WRITE)

        rows.append([on_object, elsewhere, _timed(probe)])
    print_table(
        "FIG1c: permit check cost — 1000 allows() calls",
        ["permits on object", "permits elsewhere", "us"],
        rows,
    )
    # Unrelated permits do not slow the hot object's checks (4x slack).
    with_noise = [row for row in rows if row[1] > 0]
    without = {row[0]: row[2] for row in rows if row[1] == 0}
    for on_object, __, micros in with_noise:
        assert micros <= 4 * without[on_object] + 50

    registry = ObjectRegistry()
    permits = PermitTable(registry)
    for value in range(64):
        permits.grant(ObjectId(1), Tid(value + 1), receiver=Tid(99))
    benchmark(lambda: permits.allows(ObjectId(1), Tid(1), Tid(99), WRITE))


def test_bench_od_attachment(benchmark):
    """ODs are created on first interest and freed when idle — the
    registry never leaks descriptors across transaction lifetimes."""

    def run():
        rt = fresh_runtime(seed=44)
        from conftest import incrementer, make_counters

        oids = make_counters(rt, 32)
        for oid in oids:
            tid = rt.spawn(incrementer(oid))
            rt.commit(tid)
        return len(rt.manager.registry)

    live = run()
    print_table(
        "FIG1d: live object descriptors after quiescence",
        ["live ODs"],
        [[live]],
    )
    assert live == 0
    benchmark(run)
