"""EX4 (3.1.4) — nested transaction cost vs nesting depth and fanout.

Sweeps: (a) a chain of subtransactions nested k deep; (b) a flat parent
with k children.  Expected shape: cost per subtransaction is roughly
constant (each level pays one initiate/permit/begin/wait/delegate/commit
sequence), so total steps grow linearly in the number of subtransactions
either way.  A failure at the deepest level unwinds the entire nest.
"""

from conftest import fresh_runtime, make_counters, read_counter

from repro.bench.report import print_table
from repro.common.codec import decode_int, encode_int
from repro.models.atomic import run_atomic
from repro.models.nested import require_subtransaction


def chain_body(oids, depth, fail_at_leaf=False):
    """A nest of transactions, each level wrapping the next."""

    def level(index):
        def body(tx):
            value = decode_int((yield tx.read(oids[index])))
            yield tx.write(oids[index], encode_int(value + 1))
            if index + 1 < depth:
                yield from require_subtransaction(tx, level(index + 1))
            elif fail_at_leaf:
                yield tx.abort()

        return body

    return level(0)


def fanout_body(oids, children):
    def child(oid):
        def body(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        return body

    def parent(tx):
        for oid in oids[:children]:
            yield from require_subtransaction(tx, child(oid))

    return parent


def test_bench_nested_depth_sweep(benchmark):
    rows = []
    for depth in (1, 2, 4, 8):
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, depth)
        steps_before = rt.steps
        result = run_atomic(rt, chain_body(oids, depth))
        steps = rt.steps - steps_before
        assert result.committed
        assert all(read_counter(rt, oid) == 1 for oid in oids)
        rows.append([depth, steps, steps / depth])
    print_table(
        "EX4: nested chain cost vs depth",
        ["depth", "steps", "steps/level"],
        rows,
    )
    # Each blocked ancestor retries its wait every round, so a depth-d
    # chain costs O(d^2) scheduler steps — linear manager work per level
    # plus the polling discipline's quadratic retry overhead.  Assert the
    # quadratic envelope (and that cost does grow with depth).
    for depth, steps, __ in rows:
        assert steps <= 6 * depth * depth + 10
    assert rows[-1][1] > rows[0][1]

    def representative():
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, 4)
        return run_atomic(rt, chain_body(oids, 4))

    benchmark(representative)


def test_bench_nested_fanout_sweep(benchmark):
    rows = []
    for children in (1, 2, 4, 8, 16):
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, children)
        steps_before = rt.steps
        result = run_atomic(rt, fanout_body(oids, children))
        assert result.committed
        rows.append([children, rt.steps - steps_before])
    print_table(
        "EX4b: nested fanout cost vs children",
        ["children", "steps"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]

    def representative():
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, 8)
        return run_atomic(rt, fanout_body(oids, 8))

    benchmark(representative)


def test_bench_nested_deep_failure_unwind(benchmark):
    """Failure at the deepest leaf: the undo grows with the nest size."""
    rows = []
    for depth in (2, 4, 8):
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, depth)
        steps_before = rt.steps
        result = run_atomic(
            rt, chain_body(oids, depth, fail_at_leaf=True)
        )
        assert not result.committed
        assert all(read_counter(rt, oid) == 0 for oid in oids)
        rows.append([depth, rt.steps - steps_before])
    print_table(
        "EX4c: deep-failure unwind cost",
        ["depth", "steps"],
        rows,
    )

    def representative():
        rt = fresh_runtime(seed=2)
        oids = make_counters(rt, 4)
        return run_atomic(rt, chain_body(oids, 4, fail_at_leaf=True))

    benchmark(representative)
