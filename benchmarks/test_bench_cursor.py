"""EX8 (3.2.2) — cursor stability vs repeatable read: writer latency.

A reader scans N records; a writer wants to update the first record.
Under cursor stability the reader permits writes as the cursor moves on,
so the writer proceeds almost immediately; under repeatable read the
writer waits for the reader's commit.

Expected shape: writer completion under cursor stability is flat in scan
length; under repeatable read it grows with it.
"""

from conftest import fresh_runtime, make_counters

from repro.bench.report import print_table
from repro.common.codec import encode_int
from repro.models.cursor import cursor_scan


def _writer_wait_rounds(stable, scan_length, seed=12):
    rt = fresh_runtime(seed=seed)
    manager = rt.manager
    oids = make_counters(rt, scan_length)

    def reader(tx):
        yield from cursor_scan(tx, oids, stable=stable)

    def writer(tx):
        yield tx.write(oids[0], encode_int(777))

    reader_tid = rt.spawn(reader)
    rt.round()  # the reader locks record 0
    rt.round()  # (stable) cursor leaves record 0: permit issued
    writer_tid = rt.spawn(writer)
    rounds = 0
    while manager.wait_outcome(writer_tid) is None:
        progressed = rt.round()
        rounds += 1
        if not progressed:
            if manager.wait_outcome(reader_tid):
                manager.try_commit(reader_tid)
        assert rounds < 10_000
    rt.run_until_quiescent()
    rt.commit_all([reader_tid, writer_tid])
    return rounds


def test_bench_cursor_stability_writer_latency(benchmark):
    rows = []
    for scan_length in (2, 4, 8, 16, 32):
        stable = _writer_wait_rounds(True, scan_length)
        repeatable = _writer_wait_rounds(False, scan_length)
        rows.append([scan_length, stable, repeatable])
    print_table(
        "EX8: writer completion rounds — cursor stability vs repeatable read",
        ["scan length", "cursor stability", "repeatable read"],
        rows,
    )
    for row in rows:
        assert row[1] <= row[2]
    # Repeatable-read latency grows with scan length; stability stays flat.
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][1] <= rows[0][1] + 3
    benchmark(lambda: _writer_wait_rounds(True, 16))


def test_bench_cursor_throughput_mixed(benchmark):
    """Several scanners + several writers on a shared table."""

    def run(stable):
        rt = fresh_runtime(seed=13)
        oids = make_counters(rt, 8)

        def reader(tx):
            yield from cursor_scan(tx, oids, stable=stable)

        def writer(index):
            def body(tx):
                yield tx.write(oids[index % 8], encode_int(index))

            return body

        tids = [rt.spawn(reader) for __ in range(2)]
        tids += [rt.spawn(writer(i)) for i in range(4)]
        steps_before = rt.steps
        rt.run_until_quiescent()
        rt.commit_all(tids)
        return rt.steps - steps_before

    stable_steps = run(True)
    repeatable_steps = run(False)
    print_table(
        "EX8b: mixed scan/write workload steps",
        ["mode", "steps"],
        [["cursor stability", stable_steps],
         ["repeatable read", repeatable_steps]],
    )
    benchmark(lambda: run(True))
