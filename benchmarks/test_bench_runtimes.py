"""EX15 (ablation) — the two runtimes over the same core.

The same workload runs on the deterministic cooperative scheduler and on
the thread-per-transaction runtime.  Expected shape: identical *logical*
outcomes (same commits, same final data) with different wall-clock
profiles — the cooperative runtime has no thread overhead but pays
polling retries; threads pay context switches and the GIL.

This is the substitution check for DESIGN.md's claim that semantics are
runtime-independent.
"""

import time

from repro.bench.report import print_table
from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.runtime.threaded import ThreadedRuntime


def _bodies(oids, count):
    def blind(index):
        def body(tx):
            value = decode_int((yield tx.read(oids[index % len(oids)])))
            yield tx.write(
                oids[index % len(oids)], encode_int(value + 1)
            )

        return body

    return [blind(index) for index in range(count)]


def _setup(runtime, n_objects):
    def setup(tx):
        created = []
        for index in range(n_objects):
            created.append(
                (yield tx.create(encode_int(0), name=f"r{index}"))
            )
        return created

    result = runtime.run(setup)
    return result.value if hasattr(result, "value") else result[1]


def _run_coop(transactions, n_objects):
    rt = CooperativeRuntime(TransactionManager(), seed=3)
    oids = _setup(rt, n_objects)
    start = time.perf_counter()
    tids = [rt.spawn(body) for body in _bodies(oids, transactions)]
    rt.run_until_quiescent()
    outcomes = rt.commit_all(tids)
    elapsed = (time.perf_counter() - start) * 1e3
    finals = []

    def reader(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    finals = rt.run(reader).value
    return sum(outcomes.values()), finals, elapsed


def _run_threaded(transactions, n_objects):
    rt = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=0.002)
    try:
        oids = _setup(rt, n_objects)
        start = time.perf_counter()
        tids = [rt.initiate(body) for body in _bodies(oids, transactions)]
        for tid in tids:
            rt.begin(tid)
        outcomes = rt.commit_all(tids)
        elapsed = (time.perf_counter() - start) * 1e3

        def reader(tx):
            values = []
            for oid in oids:
                values.append(decode_int((yield tx.read(oid))))
            return values

        __, finals = rt.run(reader)
        return sum(outcomes.values()), finals, elapsed
    finally:
        rt.close()


def test_bench_runtime_equivalence(benchmark):
    rows = []
    for transactions, n_objects in ((4, 4), (8, 4), (16, 8)):
        coop_commits, coop_finals, coop_ms = _run_coop(
            transactions, n_objects
        )
        thr_commits, thr_finals, thr_ms = _run_threaded(
            transactions, n_objects
        )
        rows.append(
            [f"{transactions}t/{n_objects}o", coop_commits, coop_ms,
             thr_commits, thr_ms]
        )
        # Consistency on both runtimes: final sum == committed increments.
        assert sum(coop_finals) == coop_commits
        assert sum(thr_finals) == thr_commits
    print_table(
        "EX15: cooperative vs threaded runtime (same core, same workload)",
        ["workload", "coop commits", "coop ms", "thread commits",
         "thread ms"],
        rows,
    )
    benchmark(lambda: _run_coop(8, 4))


def test_bench_threaded_scaling(benchmark):
    rows = []
    for transactions in (2, 8, 16):
        commits, finals, elapsed = _run_threaded(transactions, 8)
        rows.append([transactions, commits, elapsed])
        assert sum(finals) == commits
    print_table(
        "EX15b: threaded runtime scaling",
        ["transactions", "commits", "ms"],
        rows,
    )
    benchmark(lambda: _run_threaded(4, 4))
