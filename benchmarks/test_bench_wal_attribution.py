"""EX15 — WAL attribution: incremental index vs full-log scan.

``updates_by`` used to replay the entire decoded log on every abort and
delegation, making an abort-heavy workload quadratic in history length.
The attribution index makes it a dict probe.  Sweeps:

* ``updates_by`` for one transaction against a growing *foreign*
  history — indexed cost is flat, the retained scan oracle grows
  linearly (the per-call gap is the quadratic term's slope);
* restart ``max_tid_value`` — a probe after one ``resync`` rebuild.
"""

import time

from repro.bench.report import print_table
from repro.common.ids import ObjectId, Tid
from repro.storage.log import WriteAheadLog

VICTIM = Tid(1)


def _log_with_history(foreign_records):
    log = WriteAheadLog()
    log.log_before_image(VICTIM, ObjectId(1), b"mine")
    for value in range(foreign_records):
        log.log_before_image(
            Tid(2 + value % 50), ObjectId(2 + value % 7), b"foreign"
        )
    return log


def _time_us(fn, repeats=200):
    start = time.perf_counter()
    for __ in range(repeats):
        fn()
    return (time.perf_counter() - start) * 1e6 / repeats


def test_bench_updates_by_indexed_vs_scan(benchmark):
    rows = []
    for history in (100, 400, 1600, 6400):
        log = _log_with_history(history)
        indexed_us = _time_us(lambda: log.updates_by(VICTIM))
        scan_us = _time_us(
            lambda: log.updates_by_scan(VICTIM), repeats=10
        )
        assert log.updates_by(VICTIM) == log.updates_by_scan(VICTIM)
        rows.append([history, indexed_us, scan_us, scan_us / indexed_us])
    print_table(
        "EX15: updates_by — indexed probe vs full-log scan",
        ["history length", "indexed us", "scan us", "scan/indexed"],
        rows,
    )
    # The scan grows with history; the probe does not (10x slack for
    # scheduler noise on sub-microsecond timings).
    assert rows[-1][2] > rows[0][2] * 4
    assert rows[-1][1] < rows[0][1] * 10
    log = _log_with_history(1600)
    benchmark(lambda: log.updates_by(VICTIM))


def test_bench_restart_max_tid_probe(benchmark):
    rows = []
    for history in (100, 800, 6400):
        log = _log_with_history(history)
        log.flush()
        reopened = WriteAheadLog(log.device)  # one resync rebuild
        probe_us = _time_us(reopened.max_tid_value)
        assert reopened.max_tid_value() == reopened.max_tid_value_scan()
        rows.append([history, probe_us])
    print_table(
        "EX15b: max_tid_value after restart — probe cost",
        ["history length", "us"],
        rows,
    )
    log = _log_with_history(800)
    benchmark(log.max_tid_value)
