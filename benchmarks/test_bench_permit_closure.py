"""EX14 (ablation) — the permit transitive-sharing rule's cost.

Section 2.2's rule — permit(t_i,t_j) ∘ permit(t_j,t_k) implies
permit(t_i,t_k) — is materialized eagerly at grant time.  Sweeps:

* a permit *chain* t_1→t_2→...→t_n on one object: inserting the n-th
  link derives O(n) permits (the full closure is O(n²) descriptors);
* a permit *star* (one giver, many receivers): no composition exists, so
  grants stay O(1).

The payoff side: after the closure, ``allows()`` is a single list scan —
no graph search at lock time, which is the design's point (the lock path
is the hot path; grant time is not).
"""

import time

from repro.bench.report import print_table
from repro.common.ids import ObjectId, Tid
from repro.core.locks import ObjectRegistry
from repro.core.permits import PermitTable
from repro.core.semantics import WRITE

OB = ObjectId(1)


def _build_chain(length):
    registry = ObjectRegistry()
    permits = PermitTable(registry)
    start = time.perf_counter()
    for value in range(1, length):
        permits.grant(
            OB, Tid(value), receiver=Tid(value + 1), operation=WRITE
        )
    elapsed = (time.perf_counter() - start) * 1e3
    return permits, elapsed


def _build_star(receivers):
    registry = ObjectRegistry()
    permits = PermitTable(registry)
    start = time.perf_counter()
    for value in range(receivers):
        permits.grant(
            OB, Tid(1), receiver=Tid(value + 2), operation=WRITE
        )
    elapsed = (time.perf_counter() - start) * 1e3
    return permits, elapsed


def test_bench_closure_chain_vs_star(benchmark):
    rows = []
    for size in (8, 16, 32, 64):
        chain_permits, chain_ms = _build_chain(size)
        star_permits, star_ms = _build_star(size)
        rows.append(
            [
                size,
                chain_ms,
                len(chain_permits),
                star_ms,
                len(star_permits),
            ]
        )
    print_table(
        "EX14: permit materialization — chain (O(n^2) closure) vs star",
        ["links", "chain ms", "chain PDs", "star ms", "star PDs"],
        rows,
    )
    # The chain materializes the quadratic closure; the star stays linear.
    last = rows[-1]
    assert last[2] > last[4]
    assert last[2] == 64 * 63 // 2  # all ordered pairs i<j: n(n-1)/2
    benchmark(lambda: _build_chain(32))


def test_bench_allows_after_closure_is_flat(benchmark):
    """The hot-path payoff: end-to-end permission checks cost one list
    scan regardless of how long the chain that produced them was."""
    rows = []
    for size in (8, 32, 64):
        permits, __ = _build_chain(size)

        def probe():
            for __ in range(1000):
                permits.allows(OB, Tid(1), Tid(size), WRITE)

        start = time.perf_counter()
        probe()
        elapsed = (time.perf_counter() - start) * 1e6
        assert permits.allows(OB, Tid(1), Tid(size), WRITE)
        rows.append([size, elapsed])
    print_table(
        "EX14b: allows(t_1 -> t_n) — 1000 checks after closure",
        ["chain length", "us"],
        rows,
    )
    permits, __ = _build_chain(32)
    benchmark(lambda: permits.allows(OB, Tid(1), Tid(32), WRITE))


def test_bench_allows_probe_flat_in_foreign_permits(benchmark):
    """EX14c: ``allows`` probes the giver's bucket, not the whole OD.

    An OD carrying N permits from N *distinct* givers: a check against
    one giver touches that giver's bucket (size 1) regardless of N —
    the dict probe the Figure 1 structures promise.  The structural
    assertion is the acceptance criterion; the timing series shows the
    flat shape.
    """
    rows = []
    for total in (64, 256, 1024):
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        for value in range(total):
            permits.grant(
                OB, Tid(value + 1),
                receiver=Tid(10_000 + value), operation=WRITE,
            )
        od = registry.maybe_get(OB)
        assert len(od.permits) == total
        # The probe sees one permit while the OD carries `total`.
        assert len(od.permits_from(Tid(1))) == 1

        start = time.perf_counter()
        for __ in range(1000):
            permits.allows(OB, Tid(1), Tid(10_000), WRITE)
        elapsed = (time.perf_counter() - start) * 1e6
        rows.append([total, elapsed])
    print_table(
        "EX14c: allows() probe — 1000 checks vs foreign permits on the OD",
        ["permits on OD", "us"],
        rows,
    )
    registry = ObjectRegistry()
    permits = PermitTable(registry)
    for value in range(256):
        permits.grant(
            OB, Tid(value + 1), receiver=Tid(10_000 + value), operation=WRITE
        )
    benchmark(lambda: permits.allows(OB, Tid(1), Tid(10_000), WRITE))
