"""EX5 (3.1.5) — split cost vs delegated-set size.

The section 4.2 delegate algorithm moves one LRD per object and rewrites
the giver's permits: O(|X|).  Sweep the size of the delegated set and
measure the wall-clock of the ``delegate`` call itself (the one place a
logical-step count cannot see the data-structure work).
"""

import time

from conftest import fresh_runtime, make_counters

from repro.bench.report import print_table
from repro.common.codec import encode_int


def _prepare(n_objects, seed=6):
    rt = fresh_runtime(seed=seed)
    oids = make_counters(rt, n_objects)

    def toucher(tx):
        for oid in oids:
            yield tx.write(oid, encode_int(1))

    worker = rt.spawn(toucher)
    rt.run_until_quiescent()
    target = rt.manager.initiate()
    return rt, worker, target, oids


def _timed_delegate(n_objects):
    rt, worker, target, oids = _prepare(n_objects)
    start = time.perf_counter()
    moved = rt.manager.delegate(worker, target)
    elapsed = time.perf_counter() - start
    assert len(moved) == n_objects
    return elapsed


def test_bench_split_delegation_size_sweep(benchmark):
    rows = []
    for n_objects in (1, 8, 64, 256):
        # Median of a few runs to steady the tiny timings.
        timings = sorted(_timed_delegate(n_objects) for __ in range(5))
        micros = timings[2] * 1e6
        rows.append([n_objects, micros, micros / n_objects])
    print_table(
        "EX5: delegate(t_i, t_j, X) cost vs |X|",
        ["|X|", "median us", "us/object"],
        rows,
    )
    # O(|X|): per-object cost must not blow up with size (allow noise).
    assert rows[-1][2] <= 50 * rows[0][2]

    rt, worker, target, __ = _prepare(64)
    state = {"giver": worker, "receiver": target}

    def delegate_back_and_forth():
        moved = rt.manager.delegate(state["giver"], state["receiver"])
        state["giver"], state["receiver"] = (
            state["receiver"], state["giver"],
        )
        return moved

    benchmark(delegate_back_and_forth)


def test_bench_split_partial_vs_full(benchmark):
    """Delegating a subset costs proportionally less than everything."""
    rows = []
    for fraction_label, count in (("1/8", 32), ("1/2", 128), ("all", 256)):
        rt, worker, target, oids = _prepare(256)
        start = time.perf_counter()
        moved = rt.manager.delegate(worker, target, oids=set(oids[:count]))
        elapsed = (time.perf_counter() - start) * 1e6
        assert len(moved) == count
        rows.append([fraction_label, count, elapsed])
    print_table(
        "EX5b: partial delegation cost (256 locks held)",
        ["fraction", "objects moved", "us"],
        rows,
    )

    def representative():
        rt, worker, target, oids = _prepare(64)
        return rt.manager.delegate(worker, target)

    benchmark(representative)
