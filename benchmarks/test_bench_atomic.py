"""EX1 (3.1.1) — atomic transaction throughput under contention.

Sweep: a fixed population of read-modify-write transactions over a
shrinking object pool.  Expected shape: fewer objects → more conflicts →
more deadlock aborts and lower committed throughput per scheduler step.
"""

from conftest import fresh_runtime

from repro.bench.harness import run_interleaved, run_sequential
from repro.bench.report import print_table
from repro.bench.workload import WorkloadSpec, bodies_for, populate_objects


def _run(n_objects, transactions=12, seed=7):
    rt = fresh_runtime(seed=seed)
    spec = WorkloadSpec(
        transactions=transactions,
        ops_per_txn=4,
        n_objects=n_objects,
        write_ratio=0.5,
        seed=seed,
    )
    oids = populate_objects(rt, n_objects)
    return run_interleaved(rt, bodies_for(spec, oids))


def test_bench_atomic_contention_sweep(benchmark):
    rows = []
    for n_objects in (32, 16, 8, 4, 2, 1):
        metrics = _run(n_objects)
        rows.append(
            [
                n_objects,
                metrics.committed,
                metrics.aborted,
                metrics.steps,
                metrics.throughput,
            ]
        )
    print_table(
        "EX1: atomic throughput vs contention (12 txns, 4 ops, 50% writes)",
        ["objects", "committed", "aborted", "steps", "commits/1k-steps"],
        rows,
    )
    # Shape assertions: the hottest pool aborts more and commits less
    # than the coolest.
    assert rows[-1][2] >= rows[0][2]
    assert rows[-1][1] <= rows[0][1]
    benchmark(lambda: _run(8))


def test_bench_atomic_sequential_baseline(benchmark):
    """The zero-contention baseline: everything commits, no aborts."""

    def run():
        rt = fresh_runtime()
        spec = WorkloadSpec(
            transactions=12, ops_per_txn=4, n_objects=16, seed=3
        )
        oids = populate_objects(rt, 16)
        return run_sequential(rt, bodies_for(spec, oids))

    metrics = run()
    print_table(
        "EX1b: sequential baseline",
        ["committed", "aborted", "steps"],
        [[metrics.committed, metrics.aborted, metrics.steps]],
    )
    assert metrics.committed == 12 and metrics.aborted == 0
    benchmark(run)
