"""EX11 (4.1) — the EOS S/X latch under thread contention.

Sweeps: reader-only, writer-only, and mixed thread populations hammering
one latch.  Expected shape: shared acquisitions scale (they coexist);
exclusive acquisitions serialize; the X-bit keeps writers from starving
in the mixed case (verified by bounding writer completion).
"""

import threading
import time

from repro.bench.report import print_table
from repro.common.latch import Latch, LatchMode


def _hammer(readers, writers, iterations=300):
    latch = Latch("bench")
    done = []
    writer_finish_times = []
    start = time.perf_counter()

    def reader():
        for __ in range(iterations):
            latch.acquire(LatchMode.SHARED)
            latch.release(LatchMode.SHARED)
        done.append("r")

    def writer():
        for __ in range(iterations):
            latch.acquire(LatchMode.EXCLUSIVE)
            latch.release(LatchMode.EXCLUSIVE)
        writer_finish_times.append(time.perf_counter() - start)
        done.append("w")

    threads = [threading.Thread(target=reader) for __ in range(readers)]
    threads += [threading.Thread(target=writer) for __ in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    elapsed = time.perf_counter() - start
    assert len(done) == readers + writers, "a latch user never finished"
    total_ops = (readers + writers) * iterations
    return elapsed, total_ops, writer_finish_times


def test_bench_latch_population_sweep(benchmark):
    rows = []
    for label, readers, writers in (
        ("4 readers", 4, 0),
        ("4 writers", 0, 4),
        ("3R + 1W", 3, 1),
        ("2R + 2W", 2, 2),
    ):
        elapsed, total_ops, __ = _hammer(readers, writers)
        rows.append([label, total_ops, elapsed * 1e3,
                     total_ops / elapsed / 1000])
    print_table(
        "EX11: latch throughput by population (300 ops each)",
        ["population", "ops", "ms", "kops/s"],
        rows,
    )
    benchmark(lambda: _hammer(2, 1, iterations=100))


def test_bench_latch_writer_not_starved(benchmark):
    """With a steady reader stream, the X-bit bounds writer completion:
    the writer finishes while readers are still running."""
    elapsed, __, writer_times = _hammer(6, 1, iterations=200)
    print_table(
        "EX11b: writer completion vs run end (6 readers, 1 writer)",
        ["writer done (ms)", "whole run (ms)"],
        [[writer_times[0] * 1e3, elapsed * 1e3]],
    )
    assert writer_times, "writer never finished: starved"
    assert writer_times[0] <= elapsed + 1e-9
    benchmark(lambda: _hammer(3, 1, iterations=50))


def test_bench_latch_uncontended_cost(benchmark):
    """The baseline: one thread, no contention."""
    latch = Latch()

    def one_pair():
        latch.acquire(LatchMode.EXCLUSIVE)
        latch.release(LatchMode.EXCLUSIVE)

    benchmark(one_pair)
