"""EX7 (3.2.1) — cooperative permits vs strict two-phase locking.

Two transactions make k alternating edits to one shared object.  Under
strict 2PL the second blocks until the first commits (no interleaving);
with the permit ping-pong both proceed concurrently.  Measured: total
scheduler steps to completion, lock suspensions (the interleaving
evidence), and the second transaction's completion tick.

Expected shape: cooperation lets the pair finish together (second
completes far earlier) at the cost of coupled commits.
"""

from conftest import fresh_runtime, make_counters

from repro.bench.report import print_table
from repro.common.codec import decode_int, encode_int
from repro.models.cooperative import establish_cooperation


def editor(oid, edits):
    def body(tx):
        for __ in range(edits):
            def apply(raw):
                return encode_int(decode_int(raw) + 1), None

            yield tx.operation(oid, "write", apply)

    return body


def _run(cooperative, edits, seed=15):
    """Scheduler rounds until BOTH editors complete.

    The driver eagerly try-commits completed editors after stuck rounds,
    which is how strict 2PL hands the object over; with cooperation both
    editors interleave within the same rounds instead.  Rounds are the
    fair unit — logical ticks would penalize cooperation for the extra
    permit/suspension events it emits.
    """
    rt = fresh_runtime(seed=seed)
    manager = rt.manager
    [oid] = make_counters(rt, 1)
    first = rt.spawn(editor(oid, edits))
    second = rt.spawn(editor(oid, edits))
    if cooperative:
        establish_cooperation(manager, first, second, oids=[oid])
    rounds = 0
    while (
        manager.wait_outcome(first) is None
        or manager.wait_outcome(second) is None
    ):
        progressed = rt.round()
        rounds += 1
        if not progressed:
            for tid in (first, second):
                if manager.wait_outcome(tid):
                    manager.try_commit(tid)
        assert rounds < 10_000, "editors never finished"
    rt.commit_all([first, second])
    return {
        "rounds": rounds,
        "suspensions": manager.lock_manager.stats["suspensions"],
        "aborted": manager.stats["aborted"],
    }


def test_bench_cooperative_vs_2pl(benchmark):
    rows = []
    for edits in (2, 4, 8, 16):
        coop = _run(True, edits)
        strict = _run(False, edits)
        rows.append(
            [
                edits,
                coop["rounds"],
                strict["rounds"],
                coop["suspensions"],
                strict["suspensions"],
            ]
        )
    print_table(
        "EX7: rounds until both editors complete — cooperative vs 2PL",
        [
            "edits each",
            "coop rounds",
            "2pl rounds",
            "coop suspensions",
            "2pl suspensions",
        ],
        rows,
    )
    for row in rows:
        assert row[1] <= row[2]  # cooperation never slower than 2PL
        assert row[3] > 0  # interleaving actually happened
        assert row[4] == 0  # strict 2PL never suspends
    benchmark(lambda: _run(True, 8))


def test_bench_cooperative_coupled_abort(benchmark):
    """The price of coupling: one rejection kills both editors' work."""

    def run():
        rt = fresh_runtime(seed=15)
        [oid] = make_counters(rt, 1)

        def rejecting(tx):
            def apply(raw):
                return encode_int(decode_int(raw) + 1), None

            yield tx.operation(oid, "write", apply)
            yield tx.abort()

        first = rt.spawn(editor(oid, 4))
        second = rt.spawn(rejecting)
        establish_cooperation(rt.manager, first, second, oids=[oid])
        rt.run_until_quiescent()
        outcomes = rt.commit_all([first, second])
        return outcomes, rt

    outcomes, rt = run()
    assert list(outcomes.values()) == [0, 0]
    print_table(
        "EX7b: coupled abort",
        ["committed", "aborted"],
        [[sum(outcomes.values()), rt.manager.stats["aborted"]]],
    )
    benchmark(lambda: run()[0])
