"""EX12 (section 5) — semantic concurrency from commuting operations.

The paper's future-work direction, implemented: increment operations
declared commutative proceed concurrently where plain writes serialize.
Sweep: N concurrent counter transactions under (a) the read/write table
and (b) the counter table.  Expected shape: with commutativity there are
no lock blocks and no deadlock aborts; with plain writes contention costs
appear and grow with N.
"""

from conftest import fresh_runtime, make_counters, read_counter

from repro.bench.report import print_table
from repro.common.codec import decode_int, encode_int
from repro.core.semantics import ConflictTable


def _increment_via_operation(oid):
    def body(tx):
        def bump(raw):
            return encode_int(decode_int(raw) + 1), None

        yield tx.operation(oid, "increment", bump)

    return body


def _increment_via_write(oid):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))

    return body


def _run(commutative, n_transactions, seed=18):
    conflicts = (
        ConflictTable.with_counter_ops() if commutative else None
    )
    rt = fresh_runtime(seed=seed, conflicts=conflicts)
    [oid] = make_counters(rt, 1)
    maker = (
        _increment_via_operation if commutative else _increment_via_write
    )
    tids = [rt.spawn(maker(oid)) for __ in range(n_transactions)]
    rt.run_until_quiescent()
    outcomes = rt.commit_all(tids)
    return {
        "committed": sum(outcomes.values()),
        "aborted": rt.manager.stats["aborted"],
        "blocks": rt.manager.lock_manager.stats["blocks"],
        "final": read_counter(rt, oid),
    }


def test_bench_semantic_concurrency_sweep(benchmark):
    rows = []
    for n_transactions in (2, 4, 8, 16):
        commuting = _run(True, n_transactions)
        plain = _run(False, n_transactions)
        rows.append(
            [
                n_transactions,
                commuting["committed"],
                commuting["blocks"],
                plain["committed"],
                plain["blocks"],
                plain["aborted"],
            ]
        )
        # Commutativity: everyone commits, nobody blocks, counter exact.
        assert commuting["committed"] == n_transactions
        assert commuting["blocks"] == 0
        assert commuting["aborted"] == 0
        assert commuting["final"] == n_transactions
        # Plain writes: consistency holds but concurrency suffers.
        assert plain["final"] == plain["committed"]
    print_table(
        "EX12: commuting increments vs plain writes (one hot counter)",
        [
            "txns",
            "commute committed",
            "commute blocks",
            "write committed",
            "write blocks",
            "write aborts",
        ],
        rows,
    )
    hot = rows[-1]
    assert hot[4] > hot[2]  # plain writes block; commuting ones do not
    benchmark(lambda: _run(True, 8))


def test_bench_semantic_mixed_readers(benchmark):
    """A reader amid commuting incrementers still conflicts (increment is
    not compatible with read), so correctness is preserved."""

    def run():
        rt = fresh_runtime(
            seed=19, conflicts=ConflictTable.with_counter_ops()
        )
        [oid] = make_counters(rt, 1)
        incs = [rt.spawn(_increment_via_operation(oid)) for __ in range(4)]

        def reader(tx):
            return decode_int((yield tx.read(oid)))

        reader_tid = rt.spawn(reader)
        rt.run_until_quiescent()
        outcomes = rt.commit_all(incs + [reader_tid])
        value = rt.result_of(reader_tid)
        return outcomes, value

    outcomes, value = run()
    committed_incs = sum(list(outcomes.values())[:4])
    print_table(
        "EX12b: reader among incrementers",
        ["committed increments", "reader saw"],
        [[committed_incs, value]],
    )
    # The reader saw a consistent snapshot: a value corresponding to a
    # prefix of the committed increments.
    assert 0 <= value <= committed_incs
    benchmark(lambda: run()[1])
