"""EX17 — the resilience runtime's hot-path tax.

The watchdog hooks into every scheduler round (``on_round``: clock tick
plus a table scan at the scan interval), the DeadlineTable subscribes to
the manager's event bus, and the quarantine registry sits on the storage
read path.  The acceptance bar for the resilience PR is that installing
the full kit costs at most a few percent on the existing hot-path
benchmarks, so this module re-runs the EX14c and EX15 workloads twice —
watchdog enabled (full ``install_resilience``) vs disabled (bare stack)
— and records the A/B pairs into the shared bench trajectory
(``BENCH_PR3.json``, written by the suite conftest at session end).

Timing discipline: per the repo's A/B measurement notes, each cell is
CPU time (``time.thread_time``: immune to scheduler preemption, and —
unlike ``process_time`` — blind to CPU burned by daemon threads that
earlier bench modules' threaded runtimes leave behind), the
enabled/disabled arms alternate inside the repeat loop (drift hits both
arms equally), each arm gets one unmeasured warm-up run, and the cell is
the *min* over repeats — the lowest-noise estimator wall-clockless
containers allow.
"""

import gc
import time

import pytest

from repro.bench.report import RECORDER, print_table
from repro.common.codec import decode_int, encode_int
from repro.common.ids import ObjectId, Tid
from repro.core.manager import TransactionManager
from repro.core.semantics import WRITE
from repro.resilience import install_resilience
from repro.runtime.coop import CooperativeRuntime

AB_SERIES_MARK = "watchdog enabled vs disabled"
REPEATS = 15


def _overhead_pct(baseline_ms, enabled_ms):
    if baseline_ms <= 0:
        return 0.0
    return (enabled_ms / baseline_ms - 1.0) * 100.0


def _ab_min(run_base, run_enabled, repeats=REPEATS):
    """Best-of-N for both arms, alternating base/enabled each repeat so
    drift lands on both equally.  Each ``run_*`` returns (check, elapsed);
    the checks must agree between the arms.  One unmeasured warm-up run
    per arm precedes the measured repeats."""
    run_base()
    run_enabled()
    base_best = enabled_best = None
    base_check = enabled_check = None
    for __ in range(repeats):
        base_check, elapsed = run_base()
        base_best = elapsed if base_best is None else min(base_best, elapsed)
        enabled_check, elapsed = run_enabled()
        enabled_best = (
            elapsed if enabled_best is None else min(enabled_best, elapsed)
        )
    assert base_check == enabled_check
    return base_check, base_best, enabled_best


# --------------------------------------------------------------- EX15 --


def _bodies(oids):
    """One disjoint increment per object: the workload is conflict-free,
    so both variants do identical logical work and the delta is purely
    the per-round watchdog hook (a lock-contended mix would diverge —
    the watchdog legitimately reaps parked losers at their deadline,
    which is behaviour, not overhead)."""

    def blind(index):
        def body(tx):
            value = decode_int((yield tx.read(oids[index])))
            yield tx.write(oids[index], encode_int(value + 1))

        return body

    return [blind(index) for index in range(len(oids))]


def _run_coop(transactions, with_watchdog):
    rt = CooperativeRuntime(TransactionManager(), seed=3)
    kit = None
    if with_watchdog:
        kit = install_resilience(rt.manager, rt, scan_interval=16)

    def setup(tx):
        created = []
        for index in range(transactions):
            created.append((yield tx.create(encode_int(0), name=f"r{index}")))
        return created

    oids = rt.run(setup).value
    gc.collect()
    gc.disable()
    start = time.thread_time()
    tids = [rt.spawn(body) for body in _bodies(oids)]
    if kit is not None:
        # The enabled variant pays for real entries, not an empty table:
        # every transaction runs under a (generous) deadline the periodic
        # scan has to walk past.  commit_all (not run_until_quiescent)
        # drives the batch: an idle quiescent phase with deadlines still
        # armed is exactly what the stall rescue is *for* — it would
        # time-travel and reap the lot, which is behaviour, not overhead.
        for tid in tids:
            kit.deadlines.set_deadline(tid, budget=1_000_000)
    outcomes = rt.commit_all(tids)
    elapsed = (time.thread_time() - start) * 1e3
    gc.enable()

    def reader(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    finals = rt.run(reader).value
    assert sum(finals) == sum(outcomes.values())
    return sum(outcomes.values()), elapsed


def test_bench_ex15_watchdog_overhead(benchmark):
    rows = []
    for transactions in (64, 128, 256):
        commits, base_ms, wd_ms = _ab_min(
            lambda: _run_coop(transactions, with_watchdog=False),
            lambda: _run_coop(transactions, with_watchdog=True),
        )
        # Same logical outcome either way: the kit only watches.
        assert commits == transactions
        rows.append(
            [
                f"{transactions}t",
                commits,
                base_ms,
                wd_ms,
                _overhead_pct(base_ms, wd_ms),
            ]
        )
    print_table(
        f"EX17a: EX15 coop workload — {AB_SERIES_MARK}",
        ["workload", "commits", "off ms", "on ms", "overhead %"],
        rows,
    )
    benchmark(lambda: _run_coop(32, with_watchdog=True))


# -------------------------------------------------------------- EX14c --


def _allows_probe(total, checks, with_watchdog):
    """EX14c through the manager: ``allows()`` probes against an OD
    carrying ``total`` foreign permits, on a manager that may carry the
    full resilience kit (event-bus subscription included)."""
    manager = TransactionManager()
    rt = CooperativeRuntime(manager, seed=7)
    if with_watchdog:
        install_resilience(manager, rt, scan_interval=16)

    oids = {}

    def setup(tx):
        oids["a"] = yield tx.create(b"v0")

    assert rt.run(setup).committed
    oid = ObjectId(oids["a"])
    for value in range(total):
        manager.permits.grant(
            oid, Tid(value + 1), receiver=Tid(10_000 + value), operation=WRITE
        )
    gc.collect()
    gc.disable()
    start = time.thread_time()
    for __ in range(checks):
        manager.permits.allows(oid, Tid(1), Tid(10_000), WRITE)
    elapsed = (time.thread_time() - start) * 1e6
    gc.enable()
    assert manager.permits.allows(oid, Tid(1), Tid(10_000), WRITE)
    return total, elapsed


def test_bench_ex14c_watchdog_overhead(benchmark):
    rows = []
    for total in (64, 256, 1024):
        __, base_us, wd_us = _ab_min(
            lambda: _allows_probe(total, 10_000, with_watchdog=False),
            lambda: _allows_probe(total, 10_000, with_watchdog=True),
        )
        rows.append([total, base_us, wd_us, _overhead_pct(base_us, wd_us)])
    print_table(
        f"EX17b: EX14c allows() probe — {AB_SERIES_MARK}",
        ["permits on OD", "off us", "on us", "overhead %"],
        rows,
    )
    benchmark(lambda: _allows_probe(256, 1000, with_watchdog=True))


def test_bench_pr3_overhead_budget():
    """The acceptance gate on the recorded trajectory: median watchdog
    overhead across every A/B row stays within the resilience PR's 5%
    budget.  (The median is the claim — wall-clock noise on a shared box
    can push an individual row past the line.)  The verdict is recorded
    as its own series so BENCH_PR3.json carries the judgement alongside
    the raw pairs."""
    overheads = []
    for entry in RECORDER.series:
        if AB_SERIES_MARK not in entry["series"]:
            continue
        pct_index = entry["headers"].index("overhead %")
        overheads.extend(row[pct_index] for row in entry["rows"])
    if not overheads:
        pytest.skip("the A/B benches did not run in this session")
    overheads.sort()
    middle = len(overheads) // 2
    if len(overheads) % 2:
        median = overheads[middle]
    else:
        median = (overheads[middle - 1] + overheads[middle]) / 2.0
    print_table(
        "EX17: watchdog overhead budget",
        ["median overhead %", "budget %", "rows measured"],
        [[median, 5.0, len(overheads)]],
    )
    assert median <= 5.0, f"median watchdog overhead {median:.2f}% > 5%"
