"""EX21 — coordinator failover and membership churn costs.

Sweep 1: rounds to quiescence when the coordinator is *permanently*
killed at each phase of the 2PC exchange.  Unlike EX18b (crash then
restart), the dead site never comes back during the measurement: the
survivors' lease-paced takeover must settle every live member on its
own, and the cost unit is cluster rounds until they do.  The shape:
pre-decision kills pay the full lease lapse plus the takeover exchange
(evidence poll, force-logged claim, re-derived abort), post-decision
kills settle from the already-released verdict almost immediately —
and *every* phase converges with zero oracle failures.

Sweep 2: message cost of a group commit over a growing site count,
with membership churn (one join + one leave mid-workload) switched on
and off.  Churn pays a bounded premium — the epoch announcements, the
handoff offer/accept/done exchange, and the stale-route rejects — on
top of the linear 2PC exchange, and the premium must not change the
commit verdict or the oracles.
"""

from repro.bench.report import print_table
from repro.chaos.faults import FaultPlan
from repro.cluster import Cluster
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import probe_message_steps, run_failover_plan

SITE_POOL = ("alpha", "beta", "gamma", "delta", "epsilon")

PHASES = ("gc_begin", "prepare", "vote", "decision", "ack")


def _body(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def _phase_steps(spec):
    """The first message step of each 2PC phase in a fault-free run."""
    steps = probe_message_steps(spec)
    first = {}
    for number, detail in steps:
        kind = detail.split(":")[-1]
        if kind in PHASES and kind not in first:
            first[kind] = number
    return [(kind, first[kind]) for kind in PHASES if kind in first]


def _failover_rounds(spec, step):
    result = run_failover_plan(spec, FaultPlan(kill_coordinator_at=step))
    takeovers = sum(
        site.stats["takeovers_decided"]
        for site in result.cluster.sites.values()
    )
    return result, result.cluster.rounds, takeovers


def _churned_commit(n_sites, churn):
    cluster = Cluster(sites=SITE_POOL[:n_sites])
    for name in sorted(cluster.membership):
        cluster.wait(cluster.spawn_at(name, _body(name.encode())))
    sent_before = cluster.fabric.stats["sent"]
    if churn:
        cluster.join_site("omega")
        leaver = sorted(cluster.membership - {"omega"})[0]
        cluster.leave_site(leaver, "omega")
    refs = [
        cluster.spawn_at(name, _body(name.encode() + b"!"))
        for name in sorted(cluster.membership)
    ]
    for ref in refs:
        cluster.wait(ref)
    cluster.link_group(refs)
    outcome = cluster.group_commit(refs)
    cluster.converge()
    messages = cluster.fabric.stats["sent"] - sent_before
    report, __ = cluster.evaluate(label=f"churn={churn} n={n_sites}")
    return outcome, messages, report


def test_bench_failover_convergence_by_phase(benchmark):
    spec = cluster_scenarios.get("cluster_group_commit")
    phase_steps = _phase_steps(spec)
    assert [kind for kind, __ in phase_steps] == list(PHASES)
    rows = []
    oracle_failures = 0
    for kind, step in phase_steps:
        result, rounds, takeovers = _failover_rounds(spec, step)
        if not result.ok:
            oracle_failures += 1
        rows.append([kind, step, rounds, takeovers, result.ok])
    print_table(
        "EX21a: rounds to quiescence, coordinator permanently dead",
        ["killed at", "step", "rounds", "takeovers decided", "oracles ok"],
        rows,
    )
    # The acceptance bar: a permanently dead coordinator never leaves a
    # participant PREPARED forever, at any phase, with zero failures.
    assert oracle_failures == 0
    # Pre-decision kills pay the takeover; post-release ones must not.
    assert rows[-1][2] <= rows[2][2]
    vote_step = dict(phase_steps)["vote"]
    benchmark(
        lambda: run_failover_plan(
            spec, FaultPlan(kill_coordinator_at=vote_step)
        )
    )


def test_bench_group_commit_churn_premium(benchmark):
    rows = []
    for n_sites in (3, 4, 5):
        base_outcome, base_messages, base_report = _churned_commit(
            n_sites, churn=False
        )
        churn_outcome, churn_messages, churn_report = _churned_commit(
            n_sites, churn=True
        )
        assert base_outcome.committed and churn_outcome.committed
        assert base_report.ok and churn_report.ok
        rows.append([
            n_sites,
            base_messages,
            churn_messages,
            churn_messages - base_messages,
        ])
    print_table(
        "EX21b: group-commit message cost, churn off vs on",
        ["sites", "messages (stable)", "messages (join+leave)", "premium"],
        rows,
    )
    # Churn costs messages (announcements + handoff) but the premium is
    # bounded: it must not blow past 4x the stable exchange.
    for __, base, churned, premium in rows:
        assert premium > 0
        assert churned <= 4 * base
    benchmark(lambda: _churned_commit(3, churn=True))
