"""Shared helpers for the benchmark suite.

Every benchmark does two things:

1. runs a deterministic parameter sweep on the cooperative runtime and
   prints a paper-style table (the rows EXPERIMENTS.md records); sweeps
   use scheduler steps / logical ticks as their time unit, so the shapes
   are machine-independent;
2. hands one representative configuration to pytest-benchmark for a
   wall-clock datum.
"""

from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime


def fresh_runtime(seed=1234, conflicts=None, storage=None):
    """A deterministic runtime with its own manager."""
    manager = TransactionManager(conflicts=conflicts, storage=storage)
    return CooperativeRuntime(manager, seed=seed)


def make_counters(runtime, count, initial=0):
    def setup(tx):
        oids = []
        for index in range(count):
            oid = yield tx.create(encode_int(initial), name=f"b{index}")
            oids.append(oid)
        return oids

    return runtime.run(setup).value


def read_counter(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    return runtime.run(body).value


def incrementer(oid, delta=1, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + delta))
        if fail:
            yield tx.abort()
        return value + delta

    return body
