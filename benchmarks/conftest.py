"""Shared helpers for the benchmark suite.

Every benchmark does two things:

1. runs a deterministic parameter sweep on the cooperative runtime and
   prints a paper-style table (the rows EXPERIMENTS.md records); sweeps
   use scheduler steps / logical ticks as their time unit, so the shapes
   are machine-independent;
2. hands one representative configuration to pytest-benchmark for a
   wall-clock datum.

The session-level hooks below additionally record every bench's wall
time (and pytest-benchmark's calibrated ops/sec where available) into
the shared :data:`repro.bench.report.RECORDER` and write the whole
trajectory — one row per printed series plus one row per bench — to
``BENCH_PR9.json`` at session end, so future PRs can diff perf against
earlier trajectories (``BENCH_PR1.json`` through ``BENCH_PR7.json`` are
frozen baselines of the earlier PRs; do not regenerate them).
"""

import time

import pytest

from repro.bench.report import RECORDER
from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime

BENCH_TRAJECTORY_FILE = "BENCH_PR9.json"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    item._bench_wall_time_s = time.perf_counter() - start


def _calibrated_ops(session):
    """pytest-benchmark's mean-derived ops/sec per bench, when it ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return {}
    ops = {}
    for bench in getattr(bench_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        mean = getattr(stats, "mean", None)
        if mean is None:  # some versions nest the stats object
            mean = getattr(getattr(stats, "stats", None), "mean", None)
        if mean:
            ops[bench.fullname.split("::")[-1]] = 1.0 / mean
    return ops


def pytest_sessionfinish(session, exitstatus):
    ops = _calibrated_ops(session)
    for item in session.items:
        wall = getattr(item, "_bench_wall_time_s", None)
        if wall is None:
            continue
        RECORDER.add_timing(item.name, wall, ops_per_sec=ops.get(item.name))
    if RECORDER.rows():
        RECORDER.write_json(session.config.rootpath / BENCH_TRAJECTORY_FILE)


def fresh_runtime(seed=1234, conflicts=None, storage=None):
    """A deterministic runtime with its own manager."""
    manager = TransactionManager(conflicts=conflicts, storage=storage)
    return CooperativeRuntime(manager, seed=seed)


def make_counters(runtime, count, initial=0):
    def setup(tx):
        oids = []
        for index in range(count):
            oid = yield tx.create(encode_int(initial), name=f"b{index}")
            oids.append(oid)
        return oids

    return runtime.run(setup).value


def read_counter(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    return runtime.run(body).value


def incrementer(oid, delta=1, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + delta))
        if fail:
            yield tx.abort()
        return value + delta

    return body
