"""EX6 (3.1.6) — sagas vs one long atomic transaction.

The saga motivation: a long-lived activity run as a single transaction
holds its locks end to end, starving competitors; as a saga each
component commits (and releases) as it goes.  Measured here:

* competitor blocked-time — the logical tick at which a competitor
  touching the FIRST object can commit, under saga vs monolith;
* compensation cost vs failure point (deeper failures undo more).

Expected shape: the competitor finishes (len-1)x earlier under the saga;
compensation work grows linearly with the committed prefix.
"""

from conftest import fresh_runtime, make_counters

from repro.acta.history import HistoryRecorder
from repro.bench.report import print_table
from repro.common.codec import decode_int, encode_int
from repro.common.events import EventKind
from repro.models.saga import Saga, run_saga


def bump_body(oid, delta=1, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + delta))
        if fail:
            yield tx.abort()

    return body


def saga_over(oids, fail_at=None):
    saga = Saga()
    for index, oid in enumerate(oids):
        fail = fail_at is not None and index == fail_at
        is_last = index == len(oids) - 1
        saga.step(
            bump_body(oid, fail=fail),
            None if is_last else bump_body(oid, delta=-1),
            name=f"t{index + 1}",
        )
    return saga


def monolith_over(oids):
    def body(tx):
        for oid in oids:
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

    return body


def blind_write(oid, value=99):
    """A write without a preceding read: no upgrade, it just queues."""

    def body(tx):
        yield tx.write(oid, encode_int(value))

    return body


def _competitor_commit_tick(use_saga, length, seed=8):
    """Tick at which a competitor wanting the FIRST object commits.

    The long activity acquires object 0 first (one scheduler round), then
    the competitor arrives and waits.  Under the saga the wait ends when
    component t1 commits; under the monolith, only at the very end.
    """
    rt = fresh_runtime(seed=seed)
    recorder = HistoryRecorder(rt.manager)
    oids = make_counters(rt, length)

    if use_saga:
        first_step = rt.spawn(bump_body(oids[0]))
        rt.round()  # t1 holds object 0
        competitor = rt.spawn(blind_write(oids[0]))
        rt.commit(first_step)  # t1 commits; the competitor may proceed
        for oid in oids[1:]:
            step = rt.spawn(bump_body(oid))
            rt.commit(step)
    else:
        long_tid = rt.spawn(monolith_over(oids))
        rt.round()  # the monolith holds object 0
        competitor = rt.spawn(blind_write(oids[0]))
        rt.run_until_quiescent()
        rt.commit(long_tid)
    rt.run_until_quiescent()
    rt.commit_all([competitor])

    # The competitor's COMPLETE tick is when its blocked write finally
    # executed (commit timing is the driver's choice, not the system's).
    for event in recorder.events:
        if event.kind is EventKind.COMPLETE and event.tid == competitor:
            return event.tick
    raise AssertionError("competitor never completed")


def test_bench_saga_vs_monolith_blocking(benchmark):
    rows = []
    for length in (2, 4, 8, 16):
        saga_tick = _competitor_commit_tick(True, length)
        mono_tick = _competitor_commit_tick(False, length)
        rows.append([length, saga_tick, mono_tick, mono_tick / saga_tick])
    print_table(
        "EX6: competitor commit tick — saga vs monolithic transaction",
        ["saga length", "saga tick", "monolith tick", "monolith/saga"],
        rows,
    )
    # The monolith penalty grows with length; saga stays ~flat.
    assert rows[-1][2] > rows[-1][1]
    benchmark(lambda: _competitor_commit_tick(True, 8))


def test_bench_saga_compensation_cost(benchmark):
    rows = []
    length = 8
    for fail_at in (1, 2, 4, 7):
        rt = fresh_runtime(seed=8)
        oids = make_counters(rt, length)
        steps_before = rt.steps
        result = run_saga(rt, saga_over(oids, fail_at=fail_at))
        steps = rt.steps - steps_before
        assert not result.committed
        assert result.compensated_steps == fail_at
        rows.append([fail_at, steps, result.compensated_steps])
    print_table(
        "EX6b: saga compensation cost vs failure point (length 8)",
        ["failure at step", "steps", "compensations run"],
        rows,
    )
    assert rows[-1][1] > rows[0][1]

    def representative():
        rt = fresh_runtime(seed=8)
        oids = make_counters(rt, 8)
        return run_saga(rt, saga_over(oids, fail_at=4))

    benchmark(representative)
