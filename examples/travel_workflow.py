"""The appendix travel workflow (X_conference), two ways.

1. The literal appendix program: contingent flight booking (Delta, then
   United, then American), a required hotel with flight compensation, and
   a raced optional car rental.
2. The same activity as a declarative WorkflowSpec run by the engine.

Run:  python examples/travel_workflow.py
"""

from repro import CooperativeRuntime
from repro.workflow import TravelAgency, WorkflowEngine, x_conference
from repro.workflow.travel import build_x_conference_spec


def show(agency, names):
    return ", ".join(f"{n}={agency.availability(n)}" for n in names)


def main():
    names = ["Delta", "United", "American", "Equator", "National", "Avis"]

    # -- the literal appendix program --------------------------------------
    rt = CooperativeRuntime(seed=11)
    agency = TravelAgency(
        rt,
        availability={
            "Delta": 1, "United": 1, "American": 1,
            "Equator": 2, "National": 1, "Avis": 1,
        },
    )
    print("inventory:", show(agency, names))

    print("\ntrip 1:", "booked" if x_conference(rt, agency) else "failed")
    print("inventory:", show(agency, names))

    print("trip 2:", "booked" if x_conference(rt, agency) else "failed")
    print("inventory:", show(agency, names))

    # Third trip: no flights remain anywhere -> activity fails outright.
    print("trip 3:", "booked" if x_conference(rt, agency) else "failed")

    # -- hotel sold out: the flight gets compensated -------------------------
    rt2 = CooperativeRuntime(seed=11)
    sold_out = TravelAgency(rt2, availability={"Equator": 0})
    outcome = x_conference(rt2, sold_out)
    print(
        f"\nhotel sold out: activity={'booked' if outcome else 'failed'},"
        f" Delta seats back to {sold_out.availability('Delta')}"
    )

    # -- the declarative version --------------------------------------------------
    rt3 = CooperativeRuntime(seed=11)
    agency3 = TravelAgency(rt3, availability={"National": 0})
    engine = WorkflowEngine(rt3)
    result = engine.execute(build_x_conference_spec(agency3))
    print("\ndeclarative run:", "success" if result.success else "failed")
    for name, outcome in result.outcomes.items():
        label = f" via {outcome.label}" if outcome.label else ""
        print(f"  {name}: {outcome.status.value}{label}")


if __name__ == "__main__":
    main()
