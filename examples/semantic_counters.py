"""Semantic concurrency (section 5's future work, implemented).

A payroll system: raising one employee's salary, moving another between
departments, and adding a new hire all commute — so they run concurrently
without blocking, where plain read/write locking would serialize (or
deadlock) them.

Run:  python examples/semantic_counters.py
"""

from repro import CooperativeRuntime, TransactionManager, encode_int, encode_json
from repro.core.typedobjects import (
    Counter,
    TxRecord,
    TxSet,
    register_record_fields,
    semantic_conflict_table,
)


def main():
    table = semantic_conflict_table()
    register_record_fields(table, ["salary", "department"])
    rt = CooperativeRuntime(TransactionManager(conflicts=table), seed=7)

    def setup(tx):
        employee = yield tx.create(
            encode_json({"salary": 50_000, "department": "storage"}),
            name="employee",
        )
        department = yield tx.create(encode_json([]), name="department")
        headcount = yield tx.create(encode_int(0), name="headcount")
        return employee, department, headcount

    employee_oid, department_oid, headcount_oid = rt.run(setup).value
    employee = TxRecord(employee_oid)
    department = TxSet(department_oid)
    headcount = Counter(headcount_oid)

    # Three concurrent transactions touching the same employee record,
    # department set, and headcount counter — all commute.
    def give_raise(tx):
        new_salary = yield employee.apply(tx, "salary", lambda v: v + 5_000)
        return new_salary

    def transfer(tx):
        yield employee.update(tx, "department", "transactions")
        return "moved"

    def hire(tx, name):
        yield department.insert(tx, name)
        yield headcount.increment(tx)
        return name

    tids = [
        rt.spawn(give_raise),
        rt.spawn(transfer),
        rt.spawn(hire, args=("alice",)),
        rt.spawn(hire, args=("bob",)),
    ]
    rt.run_until_quiescent()
    outcomes = rt.commit_all(tids)

    blocks = rt.manager.lock_manager.stats["blocks"]
    print(f"committed: {sum(outcomes.values())}/4, lock blocks: {blocks}")

    def report(tx):
        record = yield employee.get(tx)
        members = yield department.members(tx)
        count = yield headcount.get(tx)
        return record, members, count

    record, members, count = rt.run(report).value
    print(f"employee : {record}")
    print(f"dept set : {members} (headcount counter: {count})")
    assert blocks == 0, "commuting operations should never block"


if __name__ == "__main__":
    main()
