"""Quickstart: the ASSET primitives in one file.

Shows the basic primitives (initiate / begin / commit / wait / abort) and
each of the three novel ones — permit, delegate, form_dependency — on a
two-account bank built over the storage manager.

Run:  python examples/quickstart.py
"""

from repro import (
    CooperativeRuntime,
    DependencyType,
    decode_int,
    encode_int,
)


def main():
    rt = CooperativeRuntime(seed=42)

    # -- create two accounts inside a setup transaction -----------------
    def setup(tx):
        checking = yield tx.create(encode_int(100), name="checking")
        savings = yield tx.create(encode_int(250), name="savings")
        return checking, savings

    result = rt.run(setup)
    checking, savings = result.value
    print(f"accounts created (committed={result.committed})")

    # -- an atomic transfer: initiate / begin / commit -------------------
    def transfer(tx, src, dst, amount):
        balance = decode_int((yield tx.read(src)))
        if balance < amount:
            yield tx.abort()  # insufficient funds: undo everything
        yield tx.write(src, encode_int(balance - amount))
        other = decode_int((yield tx.read(dst)))
        yield tx.write(dst, encode_int(other + amount))
        return amount

    tid = rt.initiate(transfer, args=(checking, savings, 30))
    rt.begin(tid)
    committed = rt.commit(tid)
    print(f"transfer committed={bool(committed)}")

    # -- permit: let an auditor read uncommitted state --------------------
    def long_update(tx):
        balance = decode_int((yield tx.read(checking)))
        yield tx.write(checking, encode_int(balance + 1000))
        # Let anyone read our uncommitted write (relaxed isolation):
        yield tx.permit(oids=[checking], operations=["read"])
        return balance

    def auditor(tx):
        return decode_int((yield tx.read(checking)))

    updater = rt.spawn(long_update)
    rt.run_until_quiescent()  # updater completed; still holds its locks
    audit = rt.spawn(auditor)  # ... yet the audit read proceeds (permit)
    rt.run_until_quiescent()
    rt.commit(audit)
    rt.commit(updater)
    print(f"auditor saw uncommitted balance: {rt.result_of(audit)}")

    # -- delegate: hand uncommitted work to another transaction -------------
    def worker(tx):
        balance = decode_int((yield tx.read(savings)))
        yield tx.write(savings, encode_int(balance + 5))
        # do NOT commit; the collector will own this update

    def collector(tx):
        yield tx.status_of(tx.tid)  # any request; real work was delegated

    worker_tid = rt.spawn(worker)
    collector_tid = rt.spawn(collector)
    rt.run_until_quiescent()
    rt.manager.delegate(worker_tid, collector_tid)  # responsibility moves
    rt.abort(worker_tid)  # aborting the worker no longer undoes the +5
    rt.commit(collector_tid)  # ... committing the collector persists it

    def read_savings(tx):
        return decode_int((yield tx.read(savings)))

    print(f"savings after delegated commit: {rt.run(read_savings).value}")

    # -- form_dependency: group commit ------------------------------------------
    def deposit(tx, oid, amount):
        balance = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(balance + amount))

    first = rt.initiate(deposit, args=(checking, 1))
    second = rt.initiate(deposit, args=(savings, 1))
    rt.manager.form_dependency(DependencyType.GC, first, second)
    rt.begin(first, second)
    rt.commit(first)  # commits BOTH (group commit)
    print(
        "group commit:",
        rt.manager.status_of(first).value,
        "/",
        rt.manager.status_of(second).value,
    )


if __name__ == "__main__":
    main()
