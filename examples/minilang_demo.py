"""Compiling the mini-language down to the primitives.

The paper expects the primitives to be targets of "a compiler for a
database programming language".  This demo writes a saga and a nested
transaction in the O++-flavoured mini-language and executes the compiled
programs.

Run:  python examples/minilang_demo.py
"""

from repro import CooperativeRuntime, decode_json, encode_json
from repro.lang import compile_source

ORDER_SAGA = """
saga {
  trans { write(stock, read(stock) - 1); }
  compensating trans { write(stock, read(stock) + 1); }

  trans { write(paid, read(paid) + price); }
  compensating trans { write(paid, read(paid) - price); }

  trans {
    if (read(courier) == 0) { abort; }
    write(courier, read(courier) - 1);
  }
}
"""

NESTED_TRIP = """
trans {
  trans { write(flights, read(flights) - 1); }
  booked = try trans {
    if (read(cars) == 0) { abort; }
    write(cars, read(cars) - 1);
  };
  return booked;
}
"""


def main():
    rt = CooperativeRuntime(seed=17)

    def setup(tx):
        objects = {}
        for name, value in [
            ("stock", 3), ("paid", 0), ("courier", 0),
            ("flights", 2), ("cars", 0),
        ]:
            objects[name] = yield tx.create(encode_json(value), name=name)
        return objects

    objects = rt.run(setup).value

    def value_of(name):
        def body(tx):
            return decode_json((yield tx.read(objects[name])))

        return rt.run(body).value

    # The courier is unavailable: the saga's third step aborts and the
    # first two are compensated in reverse order.
    saga = compile_source(ORDER_SAGA)
    print("saga model:", saga.model)
    result = saga.execute(rt, objects=objects, variables={"price": 30})
    print(
        "order saga :", result.execution_order,
        "| stock", value_of("stock"), "| paid", value_of("paid"),
    )

    # Nested: the flight books; the car subtransaction fails but the trip
    # survives (try-trans = attempt semantics) and reports booked=0.
    trip = compile_source(NESTED_TRIP)
    print("trip model:", trip.model)
    result = trip.execute(rt, objects=objects)
    print(
        "nested trip:", "committed" if result.committed else "aborted",
        "| car booked:", result.value,
        "| flights", value_of("flights"),
    )


if __name__ == "__main__":
    main()
