"""Composing a brand-new transaction model from the primitives.

The paper's pitch is that ASSET users are not limited to the published
models: the primitives compose into application-specific semantics.  This
example builds a **checkpointed long transaction** — a batch job that,
every N updates, *splits off* its finished work into a transaction that
commits immediately (releasing those locks for concurrent readers) while
the job keeps running.  If the job later fails, only the un-checkpointed
tail is lost.

That model is not in the paper — it is split/join (3.1.5) re-composed
with a commit discipline, which is exactly the kind of custom semantics
the primitive set exists to enable.

Run:  python examples/custom_model.py
"""

from repro import CooperativeRuntime, decode_int, encode_int


def checkpointed_batch(tx, oids, checkpoint_every, fail_after=None):
    """Increment every object, committing work in checkpoint chunks."""
    chunk = []
    done = 0
    for oid in oids:
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))
        chunk.append(oid)
        done += 1
        if fail_after is not None and done >= fail_after:
            yield tx.abort()  # crash mid-batch: only the tail is lost
        if len(chunk) >= checkpoint_every:
            # Split the finished chunk into a fresh transaction and
            # commit it right away: delegate + commit on a child.
            child = yield tx.initiate(_noop)
            yield tx.delegate(child, oids=chunk)
            yield tx.begin(child)
            yield tx.commit(child)
            chunk = []
    return done


def _noop(tx):
    """The checkpoint carrier: it only exists to own delegated work."""
    if False:  # pragma: no cover - makes this a generator function
        yield None
    return None


def totals(rt, oids):
    def body(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    return rt.run(body).value


def main():
    rt = CooperativeRuntime(seed=21)

    def setup(tx):
        oids = []
        for index in range(8):
            oids.append((yield tx.create(encode_int(0), name=f"row{index}")))
        return oids

    oids = rt.run(setup).value

    # A clean run: everything ends up incremented.
    tid = rt.spawn(checkpointed_batch, args=(oids, 3))
    rt.run_until_quiescent()
    rt.commit(tid)
    print("clean run  :", totals(rt, oids))

    # A failing run: the job dies after 7 rows.  Rows checkpointed in the
    # two committed chunks (6 rows) survive; only the tail is rolled back.
    tid = rt.spawn(checkpointed_batch, args=(oids, 3, 7))
    rt.run_until_quiescent()
    rt.commit(tid)  # returns 0: the batch transaction itself aborted
    print("failed run :", totals(rt, oids))
    print("(first 6 rows kept their checkpointed increment; rows 7-8 lost)")


if __name__ == "__main__":
    main()
