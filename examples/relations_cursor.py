"""Cursor stability over a relation (section 3.2.2, end to end).

An analyst scans the whole orders relation while a teller updates an
order the cursor has already passed.  Under cursor stability the teller
never waits; under repeatable read the same update would block until the
analyst commits.  The directory lock still protects the scan from
phantoms — a concurrent INSERT waits for the analyst.

Run:  python examples/relations_cursor.py
"""

from repro import CooperativeRuntime
from repro.models.relation import (
    create_relation,
    insert_record,
    record_oids,
    scan_relation,
    update_record,
)


def main():
    rt = CooperativeRuntime(seed=29)

    def setup(tx):
        orders = yield from create_relation(tx, name="orders")
        for number in range(1, 5):
            yield from insert_record(
                tx, orders, {"order": number, "status": "open"}
            )
        return orders

    orders = rt.run(setup).value

    analyst_view = {}

    def analyst(tx):
        analyst_view["rows"] = yield from scan_relation(
            tx, orders, process=lambda r: (r["order"], r["status"])
        )

    def teller(tx):
        records = yield from record_oids(tx, orders)
        yield from update_record(
            tx, records[0], lambda r: {**r, "status": "shipped"}
        )

    def late_insert(tx):
        yield from insert_record(tx, orders, {"order": 99, "status": "open"})

    analyst_tid = rt.spawn(analyst)
    for __ in range(4):
        rt.round()  # the cursor has moved past order #1
    teller_tid = rt.spawn(teller)
    inserter_tid = rt.spawn(late_insert)
    for __ in range(4):
        rt.round()

    teller_done = rt.manager.wait_outcome(teller_tid)
    inserter_done = rt.manager.wait_outcome(inserter_tid)
    print(f"teller finished mid-scan: {teller_done is True}")
    print(f"inserter blocked by the scan (no phantoms): {inserter_done is None}")

    rt.run_until_quiescent()
    rt.commit_all([analyst_tid, teller_tid, inserter_tid])

    print(f"analyst saw: {analyst_view['rows']}")

    def final(tx):
        return (
            yield from scan_relation(
                tx, orders, process=lambda r: (r["order"], r["status"])
            )
        )

    print(f"final state: {rt.run(final).value}")


if __name__ == "__main__":
    main()
