"""Cooperative design editing (section 3.2.1's motivating scenario).

Two designers refine the same design object.  Under plain two-phase
locking the second designer would block until the first commits; with the
permit ping-pong they alternate edits on the live object, and a group
commit ensures the design is published only "if the final state of the
object is considered to be acceptable in the eyes of the cooperating
designers" — both sign off, or neither's work commits.

Run:  python examples/design_cooperation.py
"""

from repro import CooperativeRuntime, decode_json, encode_json
from repro.models import couple_commits, establish_cooperation


def designer(tx, design_oid, name, edits, approve):
    """Apply ``edits`` strokes to the design; abort unless approving.

    Each stroke is an atomic read-modify-write (one ``operation``), so
    interleaved designers never lose each other's updates — they build on
    whatever the live object holds when their turn comes.
    """

    def apply_stroke(stroke):
        def transform(raw):
            design = decode_json(raw)
            design["strokes"].append(f"{name}:{stroke}")
            design["revision"] += 1
            return encode_json(design), design["revision"]

        return transform

    for stroke in edits:
        yield tx.operation(design_oid, "write", apply_stroke(stroke))
    if not approve:
        yield tx.abort()
    return name


def run_session(approve_a, approve_b, seed=5):
    rt = CooperativeRuntime(seed=seed)

    def setup(tx):
        value = encode_json({"strokes": [], "revision": 0})
        return (yield tx.create(value, name="design"))

    design = rt.run(setup).value

    alice = rt.spawn(
        designer, args=(design, "alice", ["outline", "shade"], approve_a)
    )
    bob = rt.spawn(
        designer, args=(design, "bob", ["color", "label"], approve_b)
    )

    # Mutual cooperation: both may conflict on the design object, and
    # their commits are coupled (both or neither).
    establish_cooperation(
        rt.manager, alice, bob, oids=[design], mutual=False
    )
    rt.manager.permit(bob, tj=alice, oids=[design])
    couple_commits(rt.manager, alice, bob)

    rt.run_until_quiescent()
    committed = rt.commit(alice)
    rt.commit(bob)

    def read_design(tx):
        return decode_json((yield tx.read(design)))

    final = rt.run(read_design).value
    return committed, final


def main():
    committed, design = run_session(approve_a=True, approve_b=True)
    print("both approve  -> published:", bool(committed))
    print("  strokes:", design["strokes"])
    print("  revision:", design["revision"])

    committed, design = run_session(approve_a=True, approve_b=False)
    print("bob rejects   -> published:", bool(committed))
    print("  strokes:", design["strokes"], "(all edits rolled back)")


if __name__ == "__main__":
    main()
