"""A multi-step funds movement as a saga (section 3.1.6).

Moving payroll across three banks is long-lived: locking all three for
one atomic transaction would block every teller for the duration.  As a
saga, each hop commits immediately (releasing its locks) and carries a
compensating transaction; if a later hop fails, the committed prefix is
compensated in reverse order.

Run:  python examples/banking_saga.py
"""

from repro import CooperativeRuntime, decode_int, encode_int
from repro.models import Saga, run_saga


def withdraw(tx, account, amount):
    balance = decode_int((yield tx.read(account)))
    if balance < amount:
        yield tx.abort()
    yield tx.write(account, encode_int(balance - amount))
    return balance - amount


def deposit(tx, account, amount):
    balance = decode_int((yield tx.read(account)))
    yield tx.write(account, encode_int(balance + amount))
    return balance + amount


def build_saga(source, clearing, destination, amount):
    """withdraw(source) -> clear -> deposit(destination)."""
    return (
        Saga()
        .step(
            withdraw, deposit,
            args=(source, amount), compensation_args=(source, amount),
            name="t1",
        )
        .step(
            deposit, withdraw,
            args=(clearing, amount), compensation_args=(clearing, amount),
            name="t2",
        )
        .step(
            # Final hop: moves out of clearing into the destination; no
            # compensation needed ("commitment of t_n implies the
            # commitment of the whole saga").
            _final_hop, None,
            args=(clearing, destination, amount),
            name="t3",
        )
    )


def _final_hop(tx, clearing, destination, amount):
    cleared = decode_int((yield tx.read(clearing)))
    if cleared < amount:
        yield tx.abort()
    yield tx.write(clearing, encode_int(cleared - amount))
    balance = decode_int((yield tx.read(destination)))
    yield tx.write(destination, encode_int(balance + amount))
    return balance + amount


def balances(rt, oids):
    def body(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    return rt.run(body).value


def main():
    rt = CooperativeRuntime(seed=9)

    def setup(tx):
        src = yield tx.create(encode_int(500), name="source")
        clr = yield tx.create(encode_int(0), name="clearing")
        dst = yield tx.create(encode_int(100), name="destination")
        return src, clr, dst

    source, clearing, destination = rt.run(setup).value
    oids = [source, clearing, destination]

    # -- a successful run ----------------------------------------------------
    result = run_saga(rt, build_saga(source, clearing, destination, 200))
    print("success run:", result.execution_order, "->", balances(rt, oids))

    # -- a failing run: overdraw the source on the first hop -----------------
    result = run_saga(rt, build_saga(source, clearing, destination, 9999))
    print("overdraw run:", result.execution_order, "->", balances(rt, oids))

    # -- fail at the last hop: the committed prefix gets compensated ----------
    # Drain the clearing account between hops by sabotaging the amount.
    saga = build_saga(source, clearing, destination, 250)
    saga.steps[2] = type(saga.steps[2])(
        body=_final_hop, compensation=None,
        args=(clearing, destination, 100000), name="t3",
    )
    result = run_saga(rt, saga)
    print(
        "late-failure :", result.execution_order,
        "->", balances(rt, oids),
        f"(compensated {result.compensated_steps} steps)",
    )


if __name__ == "__main__":
    main()
