"""Setup shim: enables legacy editable installs where `wheel` is absent.

The project metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-build-isolation --no-use-pep517`` work in offline
environments whose setuptools cannot build PEP 660 wheels.
"""

from setuptools import setup

setup()
