"""Runtime conformance: every model behaves identically on every runtime.

The model library only uses the paper-style driver API, so each
translation scheme must produce the same outcomes whether the programs
run under the deterministic scheduler, real threads, the deterministic
sharded engine, or a worker thread per shard.  Runtime construction and
the shared counter helpers live in :mod:`tests.differential.harness`, so
the same battery is reusable by the differential suite.
"""

import pytest

from repro.models import (
    Saga,
    require_subtransaction,
    run_atomic,
    run_contingent,
    run_distributed,
    run_saga,
)
from tests.differential.harness import (
    RUNTIME_NAMES,
    incrementer,
    make_counters,
    make_runtime,
    read_counter,
)


@pytest.fixture(params=RUNTIME_NAMES)
def rt(request):
    runtime, closer = make_runtime(request.param, seed=77)
    yield runtime
    closer()


class TestModelConformance:
    def test_atomic(self, rt):
        [oid] = make_counters(rt, 1)
        assert run_atomic(rt, incrementer(oid)).committed
        assert not run_atomic(rt, incrementer(oid, fail=True)).committed
        assert read_counter(rt, oid) == 1

    def test_distributed(self, rt):
        oids = make_counters(rt, 2)
        assert run_distributed(
            rt, [incrementer(oid) for oid in oids]
        ).committed
        assert not run_distributed(
            rt, [incrementer(oids[0]), incrementer(oids[1], fail=True)]
        ).committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]

    def test_contingent(self, rt):
        oids = make_counters(rt, 2)
        result = run_contingent(
            rt, [incrementer(oids[0], fail=True), incrementer(oids[1])]
        )
        assert result.committed and result.chosen_index == 1
        assert [read_counter(rt, oid) for oid in oids] == [0, 1]

    def test_saga(self, rt):
        oids = make_counters(rt, 2)
        saga = Saga()
        saga.step(
            incrementer(oids[0]),
            incrementer(oids[0]),  # "compensation": bumps again (visible)
            name="t1",
        )
        saga.step(incrementer(oids[1], fail=True), None, name="t2")
        result = run_saga(rt, saga)
        assert not result.committed
        assert result.execution_order == ["t1", "ct1"]
        assert read_counter(rt, oids[0]) == 2  # step + compensation

    def test_nested(self, rt):
        oids = make_counters(rt, 2)

        def parent(tx):
            first = yield from require_subtransaction(
                tx, incrementer(oids[0])
            )
            second = yield from require_subtransaction(
                tx, incrementer(oids[1])
            )
            return (first.value, second.value)

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == (1, 1)

        def failing_parent(tx):
            yield from require_subtransaction(tx, incrementer(oids[0]))
            yield from require_subtransaction(
                tx, incrementer(oids[1], fail=True)
            )

        result = run_atomic(rt, failing_parent)
        assert not result.committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]


class TestTravelWorkflowConformance:
    """The appendix travel workflow must end identically on every runtime.

    Happy path: flight (contingent over three airlines), hotel
    (required), car (optional race) — all COMMITTED, exactly one booking
    per resource class.  Sold-out hotel: the saga unwinds — the flight
    is compensated and the inventory is untouched — on every runtime.
    """

    def _booked(self, agency, names):
        return sum(len(agency.bookings(name)) for name in names)

    def test_travel_workflow_terminal_outcomes_match(self, rt):
        from repro.workflow import TravelAgency, WorkflowEngine
        from repro.workflow.engine import TaskStatus
        from repro.workflow.travel import AIRLINES, CAR_COMPANIES
        from repro.workflow.travel import build_x_conference_spec

        agency = TravelAgency(rt)
        engine = WorkflowEngine(rt)
        result = engine.execute(build_x_conference_spec(agency))
        assert result.success
        assert result.status_of("flight") is TaskStatus.COMMITTED
        assert result.status_of("hotel") is TaskStatus.COMMITTED
        assert result.status_of("car") is TaskStatus.COMMITTED
        assert self._booked(agency, AIRLINES) == 1
        assert self._booked(agency, ["Equator"]) == 1
        assert self._booked(agency, CAR_COMPANIES) == 1

    def test_travel_workflow_sellout_compensates_everywhere(self, rt):
        from repro.workflow import TravelAgency, WorkflowEngine
        from repro.workflow.engine import TaskStatus
        from repro.workflow.travel import AIRLINES, CAR_COMPANIES
        from repro.workflow.travel import build_x_conference_spec

        agency = TravelAgency(rt, availability={"Equator": 0})
        engine = WorkflowEngine(rt)
        result = engine.execute(build_x_conference_spec(agency))
        assert not result.success
        assert result.status_of("hotel") is TaskStatus.FAILED
        assert result.status_of("flight") is TaskStatus.COMPENSATED
        assert self._booked(
            agency, list(AIRLINES) + ["Equator"] + list(CAR_COMPANIES)
        ) == 0
