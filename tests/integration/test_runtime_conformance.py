"""Runtime conformance: every model behaves identically on both runtimes.

The model library only uses the paper-style driver API, so each
translation scheme must produce the same outcomes whether the programs
run under the deterministic scheduler or real threads.
"""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.models import (
    Saga,
    require_subtransaction,
    run_atomic,
    run_contingent,
    run_distributed,
    run_saga,
)
from repro.runtime.coop import CooperativeRuntime
from repro.runtime.threaded import ThreadedRuntime


@pytest.fixture(params=["coop", "threaded"])
def rt(request):
    if request.param == "coop":
        yield CooperativeRuntime(seed=77)
    else:
        runtime = ThreadedRuntime(
            watchdog_interval=0.01, poll_timeout=0.002
        )
        yield runtime
        runtime.close()


def make_counters(runtime, count):
    def setup(tx):
        oids = []
        for index in range(count):
            oids.append(
                (yield tx.create(encode_int(0), name=f"c{index}"))
            )
        return oids

    result = runtime.run(setup)
    return result.value if hasattr(result, "value") else result[1]


def read_counter(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    result = runtime.run(body)
    return result.value if hasattr(result, "value") else result[1]


def incrementer(oid, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))
        if fail:
            yield tx.abort()
        return value + 1

    return body


class TestModelConformance:
    def test_atomic(self, rt):
        [oid] = make_counters(rt, 1)
        assert run_atomic(rt, incrementer(oid)).committed
        assert not run_atomic(rt, incrementer(oid, fail=True)).committed
        assert read_counter(rt, oid) == 1

    def test_distributed(self, rt):
        oids = make_counters(rt, 2)
        assert run_distributed(
            rt, [incrementer(oid) for oid in oids]
        ).committed
        assert not run_distributed(
            rt, [incrementer(oids[0]), incrementer(oids[1], fail=True)]
        ).committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]

    def test_contingent(self, rt):
        oids = make_counters(rt, 2)
        result = run_contingent(
            rt, [incrementer(oids[0], fail=True), incrementer(oids[1])]
        )
        assert result.committed and result.chosen_index == 1
        assert [read_counter(rt, oid) for oid in oids] == [0, 1]

    def test_saga(self, rt):
        oids = make_counters(rt, 2)
        saga = Saga()
        saga.step(
            incrementer(oids[0]),
            incrementer(oids[0]),  # "compensation": bumps again (visible)
            name="t1",
        )
        saga.step(incrementer(oids[1], fail=True), None, name="t2")
        result = run_saga(rt, saga)
        assert not result.committed
        assert result.execution_order == ["t1", "ct1"]
        assert read_counter(rt, oids[0]) == 2  # step + compensation

    def test_nested(self, rt):
        oids = make_counters(rt, 2)

        def parent(tx):
            first = yield from require_subtransaction(
                tx, incrementer(oids[0])
            )
            second = yield from require_subtransaction(
                tx, incrementer(oids[1])
            )
            return (first.value, second.value)

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == (1, 1)

        def failing_parent(tx):
            yield from require_subtransaction(tx, incrementer(oids[0]))
            yield from require_subtransaction(
                tx, incrementer(oids[1], fail=True)
            )

        result = run_atomic(rt, failing_parent)
        assert not result.committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]
