"""Runtime conformance: every model behaves identically on every runtime.

The model library only uses the paper-style driver API, so each
translation scheme must produce the same outcomes whether the programs
run under the deterministic scheduler, real threads, the deterministic
sharded engine, or a worker thread per shard.  Runtime construction and
the shared counter helpers live in :mod:`tests.differential.harness`, so
the same battery is reusable by the differential suite.
"""

import pytest

from repro.models import (
    Saga,
    require_subtransaction,
    run_atomic,
    run_contingent,
    run_distributed,
    run_saga,
)
from tests.differential.harness import (
    RUNTIME_NAMES,
    incrementer,
    make_counters,
    make_runtime,
    read_counter,
)


@pytest.fixture(params=RUNTIME_NAMES)
def rt(request):
    runtime, closer = make_runtime(request.param, seed=77)
    yield runtime
    closer()


class TestModelConformance:
    def test_atomic(self, rt):
        [oid] = make_counters(rt, 1)
        assert run_atomic(rt, incrementer(oid)).committed
        assert not run_atomic(rt, incrementer(oid, fail=True)).committed
        assert read_counter(rt, oid) == 1

    def test_distributed(self, rt):
        oids = make_counters(rt, 2)
        assert run_distributed(
            rt, [incrementer(oid) for oid in oids]
        ).committed
        assert not run_distributed(
            rt, [incrementer(oids[0]), incrementer(oids[1], fail=True)]
        ).committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]

    def test_contingent(self, rt):
        oids = make_counters(rt, 2)
        result = run_contingent(
            rt, [incrementer(oids[0], fail=True), incrementer(oids[1])]
        )
        assert result.committed and result.chosen_index == 1
        assert [read_counter(rt, oid) for oid in oids] == [0, 1]

    def test_saga(self, rt):
        oids = make_counters(rt, 2)
        saga = Saga()
        saga.step(
            incrementer(oids[0]),
            incrementer(oids[0]),  # "compensation": bumps again (visible)
            name="t1",
        )
        saga.step(incrementer(oids[1], fail=True), None, name="t2")
        result = run_saga(rt, saga)
        assert not result.committed
        assert result.execution_order == ["t1", "ct1"]
        assert read_counter(rt, oids[0]) == 2  # step + compensation

    def test_nested(self, rt):
        oids = make_counters(rt, 2)

        def parent(tx):
            first = yield from require_subtransaction(
                tx, incrementer(oids[0])
            )
            second = yield from require_subtransaction(
                tx, incrementer(oids[1])
            )
            return (first.value, second.value)

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == (1, 1)

        def failing_parent(tx):
            yield from require_subtransaction(tx, incrementer(oids[0]))
            yield from require_subtransaction(
                tx, incrementer(oids[1], fail=True)
            )

        result = run_atomic(rt, failing_parent)
        assert not result.committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 1]
