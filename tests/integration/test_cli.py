"""The command-line interface end to end."""

import pytest

from repro.cli import Database, main


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "db")


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestLifecycle:
    def test_init_creates_files(self, db, capsys, tmp_path):
        code, out = run_cli(capsys, "init", "--db", db)
        assert code == 0
        assert (tmp_path / "db" / "pages.db").exists()
        assert (tmp_path / "db" / "wal.log").exists()

    def test_create_and_get(self, db, capsys):
        run_cli(capsys, "init", "--db", db)
        code, out = run_cli(
            capsys, "create", "--db", db, "stock", "5", "paid", "0"
        )
        assert code == 0
        code, out = run_cli(capsys, "get", "--db", db, "stock")
        assert code == 0
        assert "stock = 5" in out

    def test_get_all(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "a", "1", "b", "2")
        __, out = run_cli(capsys, "get", "--db", db)
        assert "a = 1" in out and "b = 2" in out
        assert "__catalog__" not in out

    def test_duplicate_create_rejected(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "a", "1")
        with pytest.raises(SystemExit):
            run_cli(capsys, "create", "--db", db, "a", "2")

    def test_string_values(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "name", '"Delta"')
        __, out = run_cli(capsys, "get", "--db", db, "name")
        assert 'name = "Delta"' in out


class TestRunPrograms:
    def test_atomic_program(self, db, capsys, tmp_path):
        run_cli(capsys, "create", "--db", db, "x", "10")
        program = tmp_path / "p.asset"
        program.write_text("trans { write(x, read(x) + 5); return read(x); }")
        code, out = run_cli(capsys, "run", "--db", db, str(program))
        assert code == 0
        assert "committed: True" in out
        assert "value: 15" in out
        __, out = run_cli(capsys, "get", "--db", db, "x")
        assert "x = 15" in out

    def test_saga_program_with_variables(self, db, capsys, tmp_path):
        run_cli(capsys, "create", "--db", db, "stock", "3", "paid", "0")
        program = tmp_path / "order.asset"
        program.write_text(
            """
            saga {
              trans { write(stock, read(stock) - 1); }
              compensating trans { write(stock, read(stock) + 1); }
              trans {
                if (price > 100) { abort; }
                write(paid, read(paid) + price);
              }
            }
            """
        )
        code, out = run_cli(
            capsys, "run", "--db", db, str(program), "--var", "price=30"
        )
        assert code == 0 and "t1 t2" in out
        # An overpriced order aborts and compensates.
        code, out = run_cli(
            capsys, "run", "--db", db, str(program), "--var", "price=200"
        )
        assert code == 1
        assert "t1 ct1" in out
        __, out = run_cli(capsys, "get", "--db", db, "stock")
        assert "stock = 2" in out  # one sale, the failed one rolled back

    def test_workflow_program(self, db, capsys, tmp_path):
        run_cli(capsys, "create", "--db", db, "stock", "2", "backup", "9")
        program = tmp_path / "flow.asset"
        program.write_text(
            """
            workflow {
              task reserve {
                trans { if (read(stock) == 0) { abort; }
                        write(stock, read(stock) - 1); }
                else trans { write(backup, read(backup) - 1); }
              }
            }
            """
        )
        code, out = run_cli(capsys, "run", "--db", db, str(program))
        assert code == 0
        assert "model: workflow" in out
        __, out = run_cli(capsys, "get", "--db", db, "stock")
        assert "stock = 1" in out

    def test_failed_program_returns_nonzero(self, db, capsys, tmp_path):
        run_cli(capsys, "create", "--db", db, "x", "1")
        program = tmp_path / "p.asset"
        program.write_text("trans { abort; }")
        code, __ = run_cli(capsys, "run", "--db", db, str(program))
        assert code == 1

    def test_syntax_error_is_a_clean_exit(self, db, capsys, tmp_path):
        run_cli(capsys, "init", "--db", db)
        program = tmp_path / "bad.asset"
        program.write_text("trans { write(x 1); }")
        with pytest.raises(SystemExit) as exc:
            run_cli(capsys, "run", "--db", db, str(program))
        assert "bad.asset" in str(exc.value)

    def test_missing_program_file_is_a_clean_exit(self, db, capsys):
        run_cli(capsys, "init", "--db", db)
        with pytest.raises(SystemExit, match="cannot read program"):
            run_cli(capsys, "run", "--db", db, "/nonexistent.asset")


class TestMaintenance:
    def test_log_dump(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "x", "1")
        __, out = run_cli(capsys, "log", "--db", db)
        assert "CommitRecord" in out
        assert "records)" in out

    def test_checkpoint_truncate(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "x", "1")
        __, out = run_cli(capsys, "checkpoint", "--db", db, "--truncate")
        assert "truncated" in out
        __, out = run_cli(capsys, "log", "--db", db)
        assert "(1 records)" in out  # just the checkpoint marker

    def test_recover(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "x", "1")
        code, out = run_cli(capsys, "recover", "--db", db)
        assert code == 0
        assert "RecoveryReport" in out

    def test_data_survives_reopen(self, db, capsys):
        run_cli(capsys, "create", "--db", db, "x", "42")
        database = Database(db)
        try:
            assert database.get("x") == 42
        finally:
            database.close()
