"""Cross-cutting scenarios exercising several subsystems at once."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.acta.checker import check_group_atomicity
from repro.acta.history import HistoryRecorder
from repro.acta.serializability import is_conflict_serializable
from repro.common.codec import decode_int, encode_int, encode_json
from repro.lang import compile_source
from repro.models import (
    Saga,
    require_subtransaction,
    run_atomic,
    run_distributed,
    run_saga,
)
from repro.runtime.coop import CooperativeRuntime
from repro.workflow import TravelAgency, WorkflowEngine, x_conference
from repro.workflow.travel import build_x_conference_spec


class TestMixedModels:
    def test_saga_of_nested_transactions(self, rt):
        """Saga components can themselves be nested transactions."""
        oids = make_counters(rt, 4)

        def nested_step(first, second, fail_inner=False):
            def inner(tx):
                value = decode_int((yield tx.read(second)))
                yield tx.write(second, encode_int(value + 1))
                if fail_inner:
                    yield tx.abort()

            def body(tx):
                value = decode_int((yield tx.read(first)))
                yield tx.write(first, encode_int(value + 1))
                yield from require_subtransaction(tx, inner)

            return body

        def comp(first, second):
            def body(tx):
                for oid in (first, second):
                    value = decode_int((yield tx.read(oid)))
                    yield tx.write(oid, encode_int(value - 1))

            return body

        saga = Saga()
        saga.step(
            nested_step(oids[0], oids[1]), comp(oids[0], oids[1]), name="t1"
        )
        saga.step(
            nested_step(oids[2], oids[3], fail_inner=True), None, name="t2"
        )
        result = run_saga(rt, saga)
        assert not result.committed
        assert result.execution_order == ["t1", "ct1"]
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_distributed_group_with_nested_members(self, rt):
        oids = make_counters(rt, 2)

        def member(oid):
            def inner(tx):
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))

            def body(tx):
                yield from require_subtransaction(tx, inner)

            return body

        result = run_distributed(rt, [member(oid) for oid in oids])
        assert result.committed
        assert all(read_counter(rt, oid) == 1 for oid in oids)

    def test_minilang_program_against_travel_objects(self):
        """The compiler and the workflow domain compose."""
        rt = CooperativeRuntime(seed=3)
        agency = TravelAgency(rt, availability={"Delta": 2})

        program = compile_source(
            """
            trans {
              write(marker, 1);
              return read(marker);
            }
            """
        )

        def setup(tx):
            return (yield tx.create(encode_json(0), name="marker"))

        marker = rt.run(setup).value
        result = program.execute(rt, objects={"marker": marker})
        assert result.committed and result.value == 1
        assert x_conference(rt, agency) == 1


class TestHistoriesStayHealthy:
    def test_full_scenario_invariants(self):
        """A busy mixed run keeps group atomicity and (permit-aware)
        serializability."""
        rt = CooperativeRuntime(seed=99)
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 4)

        def bump(oid):
            def body(tx):
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))

            return body

        run_atomic(rt, bump(oids[0]))
        run_distributed(rt, [bump(oids[1]), bump(oids[2])])
        saga = Saga()
        saga.step(bump(oids[3]), bump(oids[3]), name="t1")
        saga.step(
            lambda tx: (yield tx.abort()), None, name="t2"
        )
        run_saga(rt, saga)

        assert check_group_atomicity(recorder) == []
        ok, cycle = is_conflict_serializable(recorder)
        assert ok, cycle
        assert rt.manager.lock_manager.check_invariants() == []

    def test_workflow_and_literal_agree(self):
        """Engine-run and hand-written X_conference end in identical
        inventory states from identical starts."""
        availability = {"Delta": 1, "Equator": 1, "National": 1, "Avis": 0}

        rt_a = CooperativeRuntime(seed=5)
        agency_a = TravelAgency(rt_a, availability=dict(availability))
        literal = x_conference(rt_a, agency_a)

        rt_b = CooperativeRuntime(seed=5)
        agency_b = TravelAgency(rt_b, availability=dict(availability))
        engine = WorkflowEngine(rt_b).execute(
            build_x_conference_spec(agency_b)
        )

        assert bool(literal) == bool(engine.success)
        for name in ("Delta", "Equator", "National", "Avis"):
            assert agency_a.availability(name) == agency_b.availability(name)


class TestResourceLimits:
    def test_transaction_cap_applies_across_models(self):
        from repro.core.manager import TransactionManager

        manager = TransactionManager(max_transactions=3)
        rt = CooperativeRuntime(manager)
        oids = make_counters(rt, 1)

        def bump(tx):
            value = decode_int((yield tx.read(oids[0])))
            yield tx.write(oids[0], encode_int(value + 1))

        # Distributed with 4 components cannot even initiate (cap 3,
        # one slot used by nothing since setup committed).
        result = run_distributed(rt, [bump] * 4)
        assert not result.committed
