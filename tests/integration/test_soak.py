"""A seeded soak: many models interleaved over one shared database.

A random (but reproducible) driver mixes atomic transfers, sagas,
distributed deposits, nested audits, and contingent withdrawals over one
set of accounts, then checks global invariants:

* money conservation (every committed operation is balance-preserving);
* the lock manager's structural invariant;
* group atomicity and (permit-aware) conflict-serializability of the
  committed history;
* no leaked object descriptors, dependencies, or permits at quiescence.
"""

import random

import pytest

from tests.conftest import make_counters, read_counter

from repro.acta.checker import check_group_atomicity
from repro.acta.history import HistoryRecorder
from repro.acta.serializability import is_conflict_serializable
from repro.common.codec import decode_int, encode_int
from repro.models import (
    Saga,
    attempt_subtransaction,
    run_atomic,
    run_contingent,
    run_distributed,
    run_saga,
)
from repro.runtime.coop import CooperativeRuntime

N_ACCOUNTS = 6
INITIAL = 100


def transfer(src, dst, amount, fail=False):
    def body(tx):
        a = decode_int((yield tx.read(src)))
        yield tx.write(src, encode_int(a - amount))
        b = decode_int((yield tx.read(dst)))
        yield tx.write(dst, encode_int(b + amount))
        if fail:
            yield tx.abort()

    return body


def nested_audit(oids):
    def leaf(oid):
        def body(tx):
            yield tx.read(oid)

        return body

    def root(tx):
        for oid in oids:
            yield from attempt_subtransaction(tx, leaf(oid))

    return root


@pytest.mark.parametrize("seed", [11, 222, 3333])
def test_soak_mixed_models(seed):
    rng = random.Random(seed)
    rt = CooperativeRuntime(seed=seed)
    recorder = HistoryRecorder(rt.manager)
    oids = make_counters(rt, N_ACCOUNTS, initial=INITIAL)

    def pick_two():
        src, dst = rng.sample(range(N_ACCOUNTS), 2)
        return oids[src], oids[dst]

    for __ in range(25):
        roll = rng.random()
        amount = rng.randint(1, 10)
        if roll < 0.35:
            src, dst = pick_two()
            run_atomic(rt, transfer(src, dst, amount, fail=rng.random() < 0.3))
        elif roll < 0.55:
            src, dst = pick_two()
            other_src, other_dst = pick_two()
            run_distributed(
                rt,
                [
                    transfer(src, dst, amount),
                    transfer(
                        other_src, other_dst, amount,
                        fail=rng.random() < 0.3,
                    ),
                ],
            )
        elif roll < 0.75:
            src, dst = pick_two()
            saga = Saga()
            saga.step(
                transfer(src, dst, amount),
                transfer(dst, src, amount),
                name="t1",
            )
            saga.step(
                transfer(dst, src, 0, fail=rng.random() < 0.4),
                None,
                name="t2",
            )
            run_saga(rt, saga)
        elif roll < 0.9:
            src, dst = pick_two()
            run_contingent(
                rt,
                [
                    transfer(src, dst, amount, fail=True),
                    transfer(src, dst, amount),
                ],
            )
        else:
            run_atomic(rt, nested_audit(oids))

    # ---- invariants ------------------------------------------------------
    total = sum(read_counter(rt, oid) for oid in oids)
    assert total == N_ACCOUNTS * INITIAL  # conservation

    assert rt.manager.lock_manager.check_invariants() == []
    assert check_group_atomicity(recorder) == []
    ok, cycle = is_conflict_serializable(recorder)
    assert ok, cycle

    # Nothing leaked at quiescence.
    assert len(rt.manager.registry) == 0
    assert len(rt.manager.dependencies) == 0
    assert len(rt.manager.permits) == 0

    # And the whole thing survives a crash.
    storage = rt.manager.storage
    storage.log.flush()
    storage.crash()
    storage.recover()
    recovered = sum(
        decode_int(storage.read_object(None, oid)) for oid in oids
    )
    assert recovered == N_ACCOUNTS * INITIAL
