"""Crash recovery through the full transaction-manager stack."""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.storage.disk import InMemoryDiskManager
from repro.storage.log import MemoryLogDevice, WriteAheadLog
from repro.storage.store import StorageManager


def build_stack():
    disk = InMemoryDiskManager()
    log = WriteAheadLog(MemoryLogDevice())
    storage = StorageManager(disk=disk, log=log)
    manager = TransactionManager(storage=storage)
    return CooperativeRuntime(manager), storage


def bump(oid, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))
        if fail:
            yield tx.abort()

    return body


class TestCrashCycles:
    def test_committed_transactions_survive_crash(self):
        rt, storage = build_stack()

        def setup(tx):
            return (yield tx.create(encode_int(0), name="x"))

        oid = rt.run(setup).value
        for __ in range(3):
            tid = rt.spawn(bump(oid))
            rt.commit(tid)

        storage.crash()
        report = storage.recover()
        assert decode_int(storage.read_object(None, oid)) == 3

    def test_in_flight_transaction_rolled_back_at_restart(self):
        rt, storage = build_stack()

        def setup(tx):
            return (yield tx.create(encode_int(0), name="x"))

        oid = rt.run(setup).value
        committed = rt.spawn(bump(oid))
        rt.commit(committed)

        # A transaction completes but never commits, then we crash with
        # its update records durable (flushed) — restart must undo it.
        hanging = rt.spawn(bump(oid))
        rt.run_until_quiescent()
        storage.log.flush()
        storage.crash()
        report = storage.recover()
        assert report.losers
        assert decode_int(storage.read_object(None, oid)) == 1

    def test_group_commit_is_atomic_across_crash(self):
        rt, storage = build_stack()

        def setup(tx):
            a = yield tx.create(encode_int(0), name="a")
            b = yield tx.create(encode_int(0), name="b")
            return a, b

        oid_a, oid_b = rt.run(setup).value
        first = rt.initiate(bump(oid_a))
        second = rt.initiate(bump(oid_b))
        rt.manager.form_dependency(DependencyType.GC, first, second)
        rt.begin(first, second)
        rt.commit(first)

        storage.crash()
        storage.recover()
        assert decode_int(storage.read_object(None, oid_a)) == 1
        assert decode_int(storage.read_object(None, oid_b)) == 1

    def test_delegated_work_attribution_across_crash(self):
        rt, storage = build_stack()

        def setup(tx):
            return (yield tx.create(encode_int(0), name="x"))

        oid = rt.run(setup).value
        worker = rt.spawn(bump(oid))
        rt.run_until_quiescent()
        collector = rt.manager.initiate()
        rt.manager.delegate(worker, collector)
        rt.abort(worker)
        rt.begin(collector)
        rt.commit(collector)

        storage.crash()
        storage.recover()
        assert decode_int(storage.read_object(None, oid)) == 1

    def test_saga_prefix_survives_crash_mid_saga(self):
        """Committed saga components are durable even if the process dies
        before the saga finishes (that is the POINT of sagas)."""
        rt, storage = build_stack()

        def setup(tx):
            a = yield tx.create(encode_int(0), name="a")
            b = yield tx.create(encode_int(0), name="b")
            return a, b

        oid_a, oid_b = rt.run(setup).value
        t1 = rt.spawn(bump(oid_a))
        rt.commit(t1)  # component 1 committed
        t2 = rt.spawn(bump(oid_b))
        rt.run_until_quiescent()  # component 2 completed, NOT committed
        storage.log.flush()
        storage.crash()
        storage.recover()
        assert decode_int(storage.read_object(None, oid_a)) == 1
        assert decode_int(storage.read_object(None, oid_b)) == 0

    def test_repeated_crashes(self):
        rt, storage = build_stack()

        def setup(tx):
            return (yield tx.create(encode_int(0), name="x"))

        oid = rt.run(setup).value
        tid = rt.spawn(bump(oid))
        rt.commit(tid)
        for __ in range(3):
            storage.crash()
            storage.recover()
        assert decode_int(storage.read_object(None, oid)) == 1


class TestFileBackedStack:
    def test_full_persistence_round_trip(self, tmp_path):
        from repro.storage.disk import FileDiskManager
        from repro.storage.log import FileLogDevice

        disk = FileDiskManager(tmp_path / "pages.db")
        log = WriteAheadLog(FileLogDevice(tmp_path / "wal.log"))
        storage = StorageManager(disk=disk, log=log)
        rt = CooperativeRuntime(TransactionManager(storage=storage))

        def setup(tx):
            return (yield tx.create(encode_int(10), name="x"))

        oid = rt.run(setup).value
        tid = rt.spawn(bump(oid))
        rt.commit(tid)
        storage.pool.flush_all()
        storage.log.flush()
        storage.close()

        # A brand new process over the same files.
        disk2 = FileDiskManager(tmp_path / "pages.db")
        log2 = WriteAheadLog(FileLogDevice(tmp_path / "wal.log"))
        storage2 = StorageManager(disk=disk2, log=log2)
        storage2.recover()
        assert decode_int(storage2.read_object(None, oid)) == 11
        storage2.close()
