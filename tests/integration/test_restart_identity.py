"""Transaction identity across restarts.

Regression tests for a subtle recovery bug: a restarted manager that
reuses transaction ids already present in the write-ahead log would
entangle the new incarnation's undo/redo with the old one's — e.g. a new
session's abort of Tid(2) deleting an object CREATED by the previous
session's Tid(2).
"""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.storage.log import MemoryLogDevice, WriteAheadLog
from repro.storage.store import StorageManager


def new_session(device, disk):
    from repro.storage.store import StorageManager

    storage = StorageManager(disk=disk, log=WriteAheadLog(device))
    manager = TransactionManager(storage=storage)
    return CooperativeRuntime(manager), storage


class TestTidHighWaterMark:
    def test_fresh_manager_skips_logged_tids(self):
        from repro.storage.disk import InMemoryDiskManager

        device = MemoryLogDevice()
        disk = InMemoryDiskManager()
        rt1, storage1 = new_session(device, disk)

        def setup(tx):
            return (yield tx.create(encode_int(5), name="x"))

        oid = rt1.run(setup).value
        storage1.pool.flush_all()

        rt2, storage2 = new_session(device, disk)
        fresh = rt2.manager.initiate()
        logged = {record.tid for record in storage2.log.records()}
        assert fresh not in logged

    def test_new_sessions_abort_cannot_undo_old_work(self):
        from repro.storage.disk import InMemoryDiskManager

        device = MemoryLogDevice()
        disk = InMemoryDiskManager()
        rt1, storage1 = new_session(device, disk)

        def setup(tx):
            return (yield tx.create(encode_int(5), name="x"))

        oid = rt1.run(setup).value
        storage1.pool.flush_all()

        # Second session: start a transaction and abort it immediately.
        rt2, storage2 = new_session(device, disk)
        doomed = rt2.manager.initiate()
        rt2.begin(doomed)
        rt2.abort(doomed)

        # The old session's object must be untouched.
        def read(tx):
            return decode_int((yield tx.read(oid)))

        assert rt2.run(read).value == 5

    def test_max_tid_covers_groups_and_delegations(self):
        from repro.common.ids import ObjectId, Tid

        log = WriteAheadLog(MemoryLogDevice())
        log.log_commit(Tid(3), group=[Tid(90)])
        log.log_delegate(Tid(4), Tid(70), [ObjectId(1)])
        assert log.max_tid_value() == 90

    def test_empty_log_starts_at_one(self):
        manager = TransactionManager()
        assert manager.initiate().value == 1
