"""Every example script must run cleanly (they double as acceptance
tests for the public API)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(path, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    out = capsys.readouterr().out
    assert out.strip(), "examples must narrate what they demonstrate"


def test_we_ship_enough_examples():
    assert len(EXAMPLES) >= 3
