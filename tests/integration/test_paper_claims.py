"""Paper sentences as executable assertions.

Each test quotes a specific claim from the paper and asserts exactly it.
This file is the reproduction's conformance checklist: if a refactor
breaks a paper-stated behaviour, the failing test names the sentence.
"""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.common.codec import encode_int
from repro.common.ids import NULL_TID
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.outcomes import CommitStatus
from repro.core.semantics import WRITE
from repro.runtime.coop import CooperativeRuntime

D = DependencyType


@pytest.fixture
def manager():
    return TransactionManager()


def completed(manager):
    tid = manager.initiate()
    manager.begin(tid)
    manager.note_completed(tid)
    return tid


class TestSection21BasicPrimitives:
    def test_initiate_does_not_start_execution(self, manager):
        """'The transaction does not start executing; execution is
        started by calling begin.'"""
        tid = manager.initiate(function=lambda tx: None)
        from repro.core.status import TransactionStatus

        assert manager.status_of(tid) is TransactionStatus.INITIATED

    def test_commit_returns_1_if_already_committed(self, manager):
        """'commit returns 1 if t commits or has already committed.'"""
        tid = completed(manager)
        assert manager.try_commit(tid)
        assert manager.try_commit(tid)  # already committed: still 1

    def test_commit_returns_0_if_aborted(self, manager):
        """'otherwise, if t is aborted, commit returns 0.'"""
        tid = completed(manager)
        manager.abort(tid)
        assert not manager.try_commit(tid)

    def test_abort_returns_0_if_already_committed(self, manager):
        """'if t has already committed, it returns 0.'"""
        tid = completed(manager)
        manager.try_commit(tid)
        assert manager.abort(tid) is False

    def test_parent_returns_null_for_top_level(self, manager):
        """'For top-level transactions the null tid is returned.'"""
        tid = manager.initiate()
        assert manager.parent_of(tid) == NULL_TID

    def test_completion_retains_locks_and_volatility(self):
        """'When a transaction completes ... the locks held by the
        transaction are not released and its changes are not made
        persistent.'"""
        rt = CooperativeRuntime()
        [oid] = make_counters(rt, 1)
        tid = rt.spawn(incrementer(oid))
        rt.run_until_quiescent()  # completed, NOT committed
        # Lock still held: another transaction blocks.
        other = rt.manager.initiate()
        rt.manager.begin(other)
        outcome, __ = rt.manager.try_read(other, oid)
        assert not outcome
        # Changes not persistent: nothing committed in the log for tid.
        from repro.storage.log import CommitRecord

        commits = [
            record
            for record in rt.manager.storage.log.records()
            if isinstance(record, CommitRecord)
        ]
        assert all(tid not in record.committed_tids() for record in commits)
        rt.commit(tid)


class TestSection22Delegate:
    def test_delegated_operations_commit_with_delegatee(self):
        """'These operations are committed if and only if t_j commits.'"""
        rt = CooperativeRuntime()
        [oid] = make_counters(rt, 1)
        worker = rt.spawn(incrementer(oid))
        rt.run_until_quiescent()
        collector = rt.manager.initiate()
        rt.manager.delegate(worker, collector)
        rt.abort(worker)  # t_i's fate no longer matters
        rt.begin(collector)
        rt.commit(collector)
        assert read_counter(rt, oid) == 1

    def test_subsequent_own_operation_can_conflict(self, manager):
        """'a subsequent operation on ob performed by t_i can conflict
        with an operation previously performed by t_i.'"""
        setup = completed(manager)
        oid = None
        # build an object through a fresh transaction
        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, b"v")
        other = manager.initiate()
        manager.begin(other)
        manager.delegate(tid, other)
        outcome = manager.try_write(tid, oid, b"again")
        assert not outcome
        assert outcome.blockers == (other,)


class TestSection22Permit:
    def test_permit_without_waiting(self, manager):
        """'t_j can view objects accessed by t_i even before t_i commits
        or aborts.'"""
        ti = manager.initiate()
        manager.begin(ti)
        oid = manager.create_object(ti, b"draft")
        tj = manager.initiate()
        manager.begin(tj)
        manager.permit(ti, tj=tj, oids=[oid], operations=["read"])
        outcome, value = manager.try_read(tj, oid)
        assert outcome and value == b"draft"

    def test_transitive_sharing_statement(self, manager):
        """'the effect is as if the command permit(t_i, t_k, ...) had
        also been executed.'"""
        ti = manager.initiate()
        manager.begin(ti)
        oid = manager.create_object(ti, b"v")
        tj = manager.initiate()
        tk = manager.initiate()
        manager.begin(tj)
        manager.begin(tk)
        manager.permit(ti, tj=tj, oids=[oid], operations=[WRITE])
        manager.permit(tj, tj=tk, oids=[oid], operations=[WRITE])
        assert manager.permits.allows(oid, ti, tk, WRITE)

    def test_elementary_operations_stay_atomic(self):
        """'atomicity and mutual exclusion continue to apply to the
        elementary operations' — realized by frame latches; two permitted
        writers still serialize at the latch, so no torn values."""
        rt = CooperativeRuntime(seed=3)
        [oid] = make_counters(rt, 1)

        def writer(value):
            def body(tx):
                yield tx.write(oid, encode_int(value))

            return body

        a = rt.spawn(writer(11111111))
        b = rt.spawn(writer(22222222))
        rt.manager.permit(a, tj=b, oids=[oid])
        rt.manager.permit(b, tj=a, oids=[oid])
        rt.run_until_quiescent()
        rt.commit_all([a, b])
        assert read_counter(rt, oid) in (11111111, 22222222)


class TestSection22Dependencies:
    def test_cd_definition(self, manager):
        """'If both commit, t_j cannot commit before t_i commits, but if
        t_i aborts, t_j may still commit.'"""
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        assert manager.try_commit(tj).status is CommitStatus.BLOCKED
        manager.abort(ti)
        assert manager.try_commit(tj)

    def test_ad_definition(self, manager):
        """'if t_i aborts, t_j must abort.'"""
        from repro.core.status import TransactionStatus

        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.AD, ti, tj)
        manager.abort(ti)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_gc_definition(self, manager):
        """'either both t_i and t_j commit or neither commits.'"""
        from repro.core.status import TransactionStatus

        for failing in (False, True):
            ti, tj = completed(manager), completed(manager)
            manager.form_dependency(D.GC, ti, tj)
            if failing:
                manager.abort(tj)
            manager.try_commit(ti)
            fates = {manager.status_of(ti), manager.status_of(tj)}
            assert len(fates) == 1  # one shared fate

    def test_ad_covers_cd(self, manager):
        """'AD covers CD. That is, an abort dependency implies a commit
        dependency' — the dependent's commit waits either way."""
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.AD, ti, tj)
        outcome = manager.try_commit(tj)
        assert outcome.status is CommitStatus.BLOCKED
        assert outcome.waiting_for == (ti,)

    def test_initiate_begin_separation_enables_early_delegation(
        self, manager
    ):
        """'this separation allows us to delegate to or permit sharing
        with an initiated transaction before this transaction begins
        execution.'"""
        worker = manager.initiate()
        manager.begin(worker)
        oid = manager.create_object(worker, b"v")
        target = manager.initiate()  # initiated, NOT begun
        moved = manager.delegate(worker, target)
        assert moved == [oid]
        manager.permit(worker, tj=target, oids=[oid])  # also legal


class TestSection4Implementation:
    def test_initiate_resource_exhaustion(self):
        """'If no resources are available ... return an error code.'"""
        manager = TransactionManager(max_transactions=1)
        assert manager.initiate()
        assert manager.initiate() == NULL_TID

    def test_commit_step1_aborted_returns_failure(self, manager):
        """commit step 1: 'If it is aborted return failure.'"""
        tid = completed(manager)
        manager.abort(tid)
        assert manager.try_commit(tid).status is CommitStatus.ABORTED

    def test_abort_step2_cooperating_updates_lost(self):
        """abort step 2: 'subsequent updates done by cooperating
        transactions will also be lost.'"""
        rt = CooperativeRuntime(seed=5)
        [oid] = make_counters(rt, 1)

        def writer(value):
            def body(tx):
                yield tx.write(oid, encode_int(value))

            return body

        first = rt.spawn(writer(1))
        rt.round()
        rt.manager.permit(first, oids=[oid])
        second = rt.spawn(writer(2))  # cooperating: writes over first
        rt.run_until_quiescent()
        rt.abort(first)  # installs first's before image (0)
        rt.commit_all([second])
        # Second's update was built on first's uncommitted state; the
        # physical undo wiped it.
        assert read_counter(rt, oid) == 0
