"""Buffer pool: pinning, eviction, flushing, crash drop."""

import pytest

from repro.common.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture
def disk():
    return InMemoryDiskManager()


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity=4)


class TestPinning:
    def test_new_page_is_pinned_and_dirty(self, pool):
        frame = pool.new_page()
        assert frame.pin_count == 1
        assert frame.dirty

    def test_fetch_hit_and_miss_counters(self, pool):
        frame = pool.new_page()
        page_id = frame.page.page_id
        pool.unpin(page_id)
        pool.fetch(page_id)
        assert pool.hits == 1
        pool.unpin(page_id)
        pool.drop_all()
        pool.fetch(page_id)
        assert pool.misses == 1

    def test_unpin_without_pin_raises(self, pool):
        frame = pool.new_page()
        page_id = frame.page.page_id
        pool.unpin(page_id)
        with pytest.raises(StorageError):
            pool.unpin(page_id)

    def test_nested_pins(self, pool):
        frame = pool.new_page()
        page_id = frame.page.page_id
        pool.fetch(page_id)
        assert frame.pin_count == 2
        pool.unpin(page_id)
        pool.unpin(page_id)
        assert frame.pin_count == 0


class TestEviction:
    def test_evicts_when_full(self, pool):
        ids = []
        for __ in range(6):
            frame = pool.new_page()
            ids.append(frame.page.page_id)
            pool.unpin(frame.page.page_id)
        assert len(pool) <= 4
        assert pool.evictions >= 2

    def test_evicted_dirty_page_written_back(self, pool, disk):
        frame = pool.new_page()
        first_id = frame.page.page_id
        frame.page.insert(1, b"persist me")
        pool.unpin(first_id, dirty=True)
        for __ in range(6):
            other = pool.new_page()
            pool.unpin(other.page.page_id)
        # Whether or not first page is still cached, disk has the data.
        pool.flush_all()
        raw = disk.read_page(first_id)
        assert b"persist me" in raw

    def test_pinned_pages_never_evicted(self, pool):
        pinned = [pool.new_page() for __ in range(4)]
        with pytest.raises(StorageError):
            pool.new_page()
        # Sanity: all still cached.
        assert len(pool) == 4
        del pinned

    def test_second_chance_prefers_unreferenced(self, pool):
        frames = [pool.new_page() for __ in range(4)]
        for frame in frames:
            pool.unpin(frame.page.page_id)
        # First eviction sweeps all reference bits clear, then drops the
        # oldest (page 1).
        first_extra = pool.new_page()
        pool.unpin(first_extra.page.page_id)
        assert 1 not in pool.cached_page_ids()
        # Re-reference page 2: it now deserves a second chance.
        pool.fetch(2)
        pool.unpin(2)
        second_extra = pool.new_page()
        pool.unpin(second_extra.page.page_id)
        assert 2 in pool.cached_page_ids()  # survived thanks to its bit
        assert 3 not in pool.cached_page_ids()  # evicted instead


class TestFlushing:
    def test_flush_page_clears_dirty(self, pool, disk):
        frame = pool.new_page()
        page_id = frame.page.page_id
        frame.page.insert(1, b"abc")
        pool.unpin(page_id, dirty=True)
        pool.flush_page(page_id)
        assert not frame.dirty
        assert b"abc" in disk.read_page(page_id)

    def test_drop_all_loses_unflushed(self, pool, disk):
        frame = pool.new_page()
        page_id = frame.page.page_id
        frame.page.insert(1, b"volatile")
        pool.unpin(page_id, dirty=True)
        pool.drop_all()
        assert b"volatile" not in disk.read_page(page_id)

    def test_flush_all_then_drop_preserves(self, pool, disk):
        frame = pool.new_page()
        page_id = frame.page.page_id
        frame.page.insert(1, b"durable")
        pool.unpin(page_id, dirty=True)
        pool.flush_all()
        pool.drop_all()
        assert b"durable" in disk.read_page(page_id)
