"""The WAL attribution index: incremental ``updates_by``/``max_tid_value``.

The log now folds delegation re-attribution into a per-tid index as
records are appended, so abort/delegation/restart stop scanning the full
history.  These tests pin three things:

* **agreement** — after random interleavings of writes, delegations,
  commits, aborts, crashes, and resyncs, the index answers exactly what
  a from-scratch replay of ``records()`` answers (the pre-index
  implementations survive as ``updates_by_scan``/``max_tid_value_scan``
  oracles);
* **complexity** — steady-state ``updates_by`` and ``max_tid_value``
  perform no full-log scan (asserted by counting ``records()`` /
  device-read calls);
* **rebuild** — ``resync`` reconstructs the index once, and crash
  simulation (which drops unflushed records) leaves the index matching
  the surviving history.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import ObjectId, Tid
from repro.storage.log import MemoryLogDevice, WriteAheadLog


def apply_random_history(log, rng, steps, n_txns=5, n_objects=4):
    """Drive a random mix of log-record appends (and crashes)."""
    for __ in range(steps):
        action = rng.randrange(100)
        tid = Tid(rng.randint(1, n_txns))
        oid = ObjectId(rng.randint(1, n_objects))
        if action < 55:
            log.log_before_image(tid, oid, bytes([rng.randrange(256)]))
            log.log_after_image(tid, oid, bytes([rng.randrange(256)]))
        elif action < 75:
            delegatee = Tid(rng.randint(1, n_txns))
            oids = tuple(
                ObjectId(value)
                for value in rng.sample(
                    range(1, n_objects + 1), rng.randint(1, n_objects)
                )
            )
            log.log_delegate(tid, delegatee, oids)
        elif action < 85:
            log.log_commit(tid)
        elif action < 92:
            log.log_abort(tid)
        elif action < 97:
            log.flush()
        else:
            crash = getattr(log.device, "crash", None)
            if crash is not None:
                crash()
                log.resync()


def assert_matches_oracle(log, n_txns=6):
    assert log.max_tid_value() == log.max_tid_value_scan()
    for value in range(1, n_txns + 1):
        assert log.updates_by(Tid(value)) == log.updates_by_scan(Tid(value))


class TestAttributionAgreement:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 80))
    def test_random_interleavings_match_scan(self, seed, steps):
        log = WriteAheadLog(MemoryLogDevice())
        rng = random.Random(seed)
        apply_random_history(log, rng, steps)
        assert_matches_oracle(log)

    def test_delegation_chain_reattributes_transitively(self):
        log = WriteAheadLog()
        ob = ObjectId(7)
        log.log_before_image(Tid(1), ob, b"v0")
        log.log_delegate(Tid(1), Tid(2), (ob,))
        log.log_delegate(Tid(2), Tid(3), (ob,))
        assert log.updates_by(Tid(1)) == []
        assert log.updates_by(Tid(2)) == []
        assert [r.oid for r in log.updates_by(Tid(3))] == [ob]
        assert_matches_oracle(log)

    def test_delegation_merge_preserves_lsn_order(self):
        """Records moved to a delegatee interleave with its own in global
        LSN order — the order undo installs before images in."""
        log = WriteAheadLog()
        a, b = ObjectId(1), ObjectId(2)
        log.log_before_image(Tid(1), a, b"a0")  # lsn 1
        log.log_before_image(Tid(2), b, b"b0")  # lsn 2
        log.log_before_image(Tid(1), a, b"a1")  # lsn 3
        log.log_delegate(Tid(1), Tid(2), (a,))
        lsns = [r.lsn.value for r in log.updates_by(Tid(2))]
        assert lsns == sorted(lsns) == [1, 2, 3]
        assert_matches_oracle(log)

    def test_partial_delegation_splits_attribution(self):
        log = WriteAheadLog()
        a, b = ObjectId(1), ObjectId(2)
        log.log_before_image(Tid(1), a, b"a")
        log.log_before_image(Tid(1), b, b"b")
        log.log_delegate(Tid(1), Tid(2), (a,))
        assert [r.oid for r in log.updates_by(Tid(1))] == [b]
        assert [r.oid for r in log.updates_by(Tid(2))] == [a]
        assert_matches_oracle(log)

    def test_delegation_to_oneself_is_stable(self):
        log = WriteAheadLog()
        ob = ObjectId(1)
        log.log_before_image(Tid(1), ob, b"x")
        log.log_delegate(Tid(1), Tid(1), (ob,))
        assert [r.oid for r in log.updates_by(Tid(1))] == [ob]
        assert_matches_oracle(log)


class TestAttributionComplexity:
    def _instrument(self, log, monkeypatch):
        calls = {"records": 0}
        original = log.records

        def counting_records(*args, **kwargs):
            calls["records"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(log, "records", counting_records)
        return calls

    def test_updates_by_performs_no_full_scan(self, monkeypatch):
        log = WriteAheadLog()
        for value in range(1, 30):
            log.log_before_image(Tid(value), ObjectId(value), b"v")
        calls = self._instrument(log, monkeypatch)
        for value in range(1, 30):
            log.updates_by(Tid(value))
        assert calls["records"] == 0

    def test_max_tid_value_performs_no_full_scan(self, monkeypatch):
        log = WriteAheadLog()
        for value in range(1, 30):
            log.log_commit(Tid(value), group=(Tid(value + 100),))
        calls = self._instrument(log, monkeypatch)
        assert log.max_tid_value() == 129
        assert calls["records"] == 0

    def test_delegation_cost_is_per_transaction_not_per_log(self):
        """A delegation touches only the delegator's own update list —
        other transactions' (arbitrarily long) histories are never
        walked.  Verified structurally: the moved/kept split is computed
        from the delegator's bucket alone."""
        log = WriteAheadLog()
        # A long foreign history that must not be rescanned.
        for __ in range(200):
            log.log_before_image(Tid(9), ObjectId(99), b"f")
        ob = ObjectId(1)
        log.log_before_image(Tid(1), ob, b"v")
        foreign_before = list(log._updates_by_tid[Tid(9)])
        log.log_delegate(Tid(1), Tid(2), (ob,))
        assert log._updates_by_tid[Tid(9)] == foreign_before
        assert [r.oid for r in log.updates_by(Tid(2))] == [ob]


class TestRebuildAndCrash:
    def test_resync_rebuilds_index_once(self):
        device = MemoryLogDevice()
        log = WriteAheadLog(device)
        ob = ObjectId(3)
        log.log_before_image(Tid(1), ob, b"v")
        log.log_delegate(Tid(1), Tid(2), (ob,))
        log.flush()
        reopened = WriteAheadLog(device)
        assert reopened.updates_by(Tid(1)) == []
        assert [r.oid for r in reopened.updates_by(Tid(2))] == [ob]
        assert reopened.max_tid_value() == 2
        assert_matches_oracle(reopened)

    def test_crash_drops_unflushed_attribution(self):
        log = WriteAheadLog(MemoryLogDevice())
        durable, lost = ObjectId(1), ObjectId(2)
        log.log_before_image(Tid(1), durable, b"d")
        log.flush()
        log.log_before_image(Tid(1), lost, b"l")
        log.log_delegate(Tid(1), Tid(2), (durable,))
        log.device.crash()
        log.resync()
        # Only the durable prefix survives — and the delegation died
        # with the crash, so attribution reverts to the writer.
        assert [r.oid for r in log.updates_by(Tid(1))] == [durable]
        assert log.updates_by(Tid(2)) == []
        assert log.max_tid_value() == 1
        assert_matches_oracle(log)

    def test_truncate_clears_attribution(self):
        log = WriteAheadLog()
        log.log_before_image(Tid(5), ObjectId(1), b"v")
        log.truncate()
        assert log.updates_by(Tid(5)) == []
        assert log.max_tid_value() == 0
        assert_matches_oracle(log)
