"""Unit tests for the segmented WAL: sequencer, merge view, barrier,
delegate splitting, and recovery plumbing."""

from repro.common.codec import decode_int, encode_int
from repro.common.ids import Tid
from repro.storage.log import (
    AfterImageRecord,
    CommitRecord,
    DelegateRecord,
)
from repro.storage.segmented import LsnSequencer, ShardedStorageManager

SETUP = Tid(50)


def _store(n_shards=4, **kwargs):
    store = ShardedStorageManager(n_shards=n_shards, **kwargs)
    oids = [
        store.create_object(SETUP, encode_int(0), name=f"obj{i}")
        for i in range(8)
    ]
    store.log_commit(SETUP)
    return store, oids


class TestLsnSequencer:
    def test_values_are_strictly_increasing(self):
        seq = LsnSequencer()
        drawn = [seq.next_value() for __ in range(10)]
        assert drawn == sorted(drawn)
        assert len(set(drawn)) == 10
        assert seq.last_value == drawn[-1]

    def test_advance_to_never_goes_backwards(self):
        seq = LsnSequencer()
        seq.next_value()
        seq.advance_to(40)  # "never hand out below 40"
        assert seq.next_value() == 40
        seq.advance_to(5)  # stale resync must not rewind
        assert seq.next_value() == 41


class TestMergedView:
    def test_global_lsns_are_sparse_per_segment_dense_globally(self):
        store, oids = _store()
        tid = Tid(1)
        for oid in oids:
            store.write_object(tid, oid, encode_int(7))
        store.log_commit(tid)
        merged = list(store.log.records())
        lsns = [record.lsn.value for record in merged]
        assert lsns == sorted(lsns)
        assert len(lsns) == len(set(lsns))
        # More than one segment actually received records.
        populated = [
            shard for shard in store.shards if list(shard.log.records())
        ]
        assert len(populated) > 1

    def test_updates_by_merges_across_segments_in_lsn_order(self):
        store, oids = _store()
        tid = Tid(1)
        for index, oid in enumerate(oids):
            store.write_object(tid, oid, encode_int(index))
        updates = store.log.updates_by(tid)
        assert updates
        lsns = [record.lsn.value for record in updates]
        assert lsns == sorted(lsns)
        touched = {record.oid.value for record in updates}
        assert touched == {oid.value for oid in oids}


class TestCommitBarrier:
    def test_foreign_segments_flush_before_home_commit(self):
        store, oids = _store()
        tid = Tid(1)
        for oid in oids:
            store.write_object(tid, oid, encode_int(3))
        home, touched = store._home_and_touched(tid)
        assert len(touched) > 1  # really multi-shard
        before = {
            shard: store.shards[shard].log.flush_count for shard in touched
        }
        store.log_commit(tid)
        for shard in touched:
            if shard != home:
                after = store.shards[shard].log.flush_count
                assert after > before[shard], (
                    f"foreign segment {shard} was not flushed by the barrier"
                )
        # The commit record lives in the home segment only.
        for shard_index, shard in enumerate(store.shards):
            commits = [
                r
                for r in shard.log.records()
                if isinstance(r, CommitRecord) and tid in r.committed_tids()
            ]
            assert len(commits) == (1 if shard_index == home else 0)

    def test_single_shard_commit_flushes_no_foreign_segment(self):
        store, oids = _store()
        tid = Tid(2)
        store.write_object(tid, oids[0], encode_int(1))
        home, touched = store._home_and_touched(tid)
        assert len(touched) == 1
        others = [
            store.shards[s].log.flush_count
            for s in range(store.n_shards)
            if s != home
        ]
        store.log_commit(tid)
        after = [
            store.shards[s].log.flush_count
            for s in range(store.n_shards)
            if s != home
        ]
        assert after == others


class TestDelegateSplitting:
    def test_one_record_per_touched_segment_with_that_shards_oids(self):
        store, oids = _store()
        tid, delegatee = Tid(1), Tid(2)
        mine = oids[:6]
        for oid in mine:
            store.write_object(tid, oid, encode_int(9))
        records = store.log_delegate(tid, delegatee, tuple(mine))
        by_shard = {}
        for oid in mine:
            by_shard.setdefault(store.router.shard_of(oid), set()).add(
                oid.value
            )
        assert len(records) == len(by_shard)
        for record in records:
            assert isinstance(record, DelegateRecord)
            assert record.delegatee == delegatee
            shard = store.router.shard_of(record.oids[0])
            assert {oid.value for oid in record.oids} == by_shard[shard]
        # The delegatee inherits every touched shard in its footprint,
        # so its later commit pays the right barrier.
        assert set(by_shard) <= store.footprint_of(delegatee)


class TestSegmentedRecovery:
    def test_recovery_merges_segments_and_rebuilds_directory(self):
        store, oids = _store()
        tid = Tid(1)
        for index, oid in enumerate(oids):
            store.write_object(tid, oid, encode_int(index + 20))
        store.log_commit(tid)
        store.sync_log()
        placement = {oid.value: store.router.shard_of(oid) for oid in oids}

        store.crash()
        store.recover()

        assert {
            oid.value: store.router.shard_of(oid) for oid in oids
        } == placement
        state = store.object_state()
        for index, oid in enumerate(oids):
            assert decode_int(state[oid.value]) == index + 20

    def test_oid_counter_restored_past_all_segments(self):
        store, oids = _store()
        store.sync_log()
        store.crash()
        store.recover()
        new_oid = store.create_object(Tid(9), encode_int(1), name="fresh")
        assert new_oid.value > max(oid.value for oid in oids)

    def test_loser_undone_across_segments(self):
        store, oids = _store()
        winner, loser = Tid(1), Tid(2)
        store.write_object(winner, oids[0], encode_int(11))
        for oid in oids[1:5]:
            store.write_object(loser, oid, encode_int(66))
        store.log_commit(winner)
        store.sync_log()
        store.crash()
        store.recover()
        state = store.object_state()
        assert decode_int(state[oids[0].value]) == 11
        for oid in oids[1:5]:
            assert decode_int(state[oid.value]) == 0

    def test_segment_stats_report_per_shard_rows(self):
        store, oids = _store()
        rows = store.segment_stats()
        assert len(rows) == store.n_shards
        assert [row["shard"] for row in rows] == list(range(store.n_shards))
        assert sum(row["appends"] for row in rows) > 0
        assert sum(row["objects"] for row in rows) == len(oids)


class TestMaxTid:
    def test_max_tid_spans_all_segments(self):
        store, oids = _store()
        store.write_object(Tid(7), oids[3], encode_int(1))
        assert store.log.max_tid_value() >= 50  # the setup tid
