"""Checkpointing and log truncation."""

import pytest

from repro.common.ids import Tid
from repro.storage.log import CheckpointRecord, FileLogDevice, WriteAheadLog
from repro.storage.store import StorageManager


@pytest.fixture
def store():
    return StorageManager()


class TestSharpCheckpoint:
    def test_truncate_discards_records(self, store):
        oid = store.create_object(Tid(1), b"v")
        store.log_commit(Tid(1))
        assert len(store.log.records()) > 0
        store.checkpoint(active=(), truncate=True)
        records = store.log.records()
        # Only the post-truncation checkpoint marker remains.
        assert len(records) == 1
        assert isinstance(records[0], CheckpointRecord)

    def test_truncate_refused_while_active(self, store):
        oid = store.create_object(Tid(1), b"v")
        before = len(store.log.records())
        store.checkpoint(active=(Tid(1),), truncate=True)
        assert len(store.log.records()) == before + 1  # marker only added

    def test_state_survives_crash_after_truncation(self, store):
        oid = store.create_object(Tid(1), b"durable")
        store.log_commit(Tid(1))
        store.checkpoint(active=(), truncate=True)
        store.crash()
        report = store.recover()
        assert report.redone == 0  # nothing left to redo...
        assert store.read_object(Tid(0), oid) == b"durable"  # ...not needed

    def test_lsns_keep_growing_after_truncation(self, store):
        store.create_object(Tid(1), b"v")
        last = store.log.records()[-1].lsn
        store.checkpoint(active=(), truncate=True)
        record = store.log.log_commit(Tid(2))
        assert record.lsn.value > last.lsn if hasattr(last, "lsn") else True
        assert record.lsn.value > last.value

    def test_work_after_truncation_recovers_normally(self, store):
        oid = store.create_object(Tid(1), b"v1")
        store.log_commit(Tid(1))
        store.checkpoint(active=(), truncate=True)
        store.write_object(Tid(2), oid, b"v2")
        store.log_commit(Tid(2))
        store.write_object(Tid(3), oid, b"v3")  # loser
        store.log.flush()
        store.crash()
        store.recover()
        assert store.read_object(Tid(0), oid) == b"v2"


class TestFileDeviceTruncation:
    def test_file_log_truncates_on_disk(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(FileLogDevice(path))
        log.log_commit(Tid(1))
        assert path.stat().st_size > 0
        log.truncate()
        assert path.stat().st_size == 0
        # Still usable afterwards.
        log.log_commit(Tid(2))
        assert len(log.records()) == 1
