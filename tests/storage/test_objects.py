"""Object store: CRUD, relocation, table rebuild."""

import pytest

from repro.common.errors import StorageError, UnknownObjectError
from repro.common.ids import ObjectId
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.objects import ObjectStore


@pytest.fixture
def store():
    return ObjectStore(BufferPool(InMemoryDiskManager(), capacity=16))


class TestCrud:
    def test_create_read(self, store):
        oid = store.create(b"hello", name="greeting")
        assert store.read(oid) == b"hello"
        assert store.exists(oid)

    def test_ids_are_sequential(self, store):
        first = store.create(b"a")
        second = store.create(b"b")
        assert second.value == first.value + 1

    def test_write_overwrites(self, store):
        oid = store.create(b"old")
        store.write(oid, b"new")
        assert store.read(oid) == b"new"

    def test_write_grows_object(self, store):
        oid = store.create(b"small")
        big = b"x" * 2000
        store.write(oid, big)
        assert store.read(oid) == big

    def test_delete(self, store):
        oid = store.create(b"doomed")
        store.delete(oid)
        assert not store.exists(oid)
        with pytest.raises(UnknownObjectError):
            store.read(oid)

    def test_unknown_object(self, store):
        with pytest.raises(UnknownObjectError):
            store.read(ObjectId(999))

    def test_forced_oid_for_recovery(self, store):
        oid = store.create(b"x", oid=ObjectId(50))
        assert oid.value == 50
        # Allocation continues above the forced id.
        assert store.create(b"y").value == 51

    def test_forced_oid_conflict(self, store):
        store.create(b"x", oid=ObjectId(5))
        with pytest.raises(StorageError):
            store.create(b"y", oid=ObjectId(5))

    def test_large_object_round_trip(self, store):
        big = bytes(range(256)) * 50  # 12,800 bytes: several pages
        oid = store.create(big)
        assert store.read(oid) == big

    def test_large_object_write_and_shrink(self, store):
        oid = store.create(b"small")
        big = b"x" * 10_000
        store.write(oid, big)
        assert store.read(oid) == big
        store.write(oid, b"tiny again")
        assert store.read(oid) == b"tiny again"
        # Chunk slots were reclaimed: only real objects remain.
        assert store.object_ids() == [oid.value]

    def test_large_object_delete_reclaims_chunks(self, store):
        oid = store.create(b"z" * 10_000)
        small = store.create(b"keep")
        store.delete(oid)
        assert not store.exists(oid)
        assert store.object_ids() == [small.value]

    def test_inline_value_resembling_header_is_safe(self, store):
        # A 9-byte value that could look like a LOB header must survive.
        tricky = b"\x01" + b"\x02\x00\x00\x00" + b"\x10\x00\x00\x00"
        oid = store.create(tricky)
        assert store.read(oid) == tricky

    def test_large_object_survives_rebuild(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=16)
        store = ObjectStore(pool)
        big = b"payload-" * 2000
        oid = store.create(big)
        pool.flush_all()
        fresh = ObjectStore(BufferPool(disk, capacity=16))
        assert fresh.read(oid) == big
        # Chunk ids do not leak into the visible object space.
        assert fresh.object_ids() == [oid.value]
        # Nor do they poison id allocation.
        assert fresh.create(b"next").value == oid.value + 1

    def test_object_ids_sorted(self, store):
        for __ in range(5):
            store.create(b"v")
        assert store.object_ids() == sorted(store.object_ids())
        assert len(store) == 5


class TestPlacement:
    def test_many_objects_span_pages(self, store):
        oids = [store.create(bytes([i % 250]) * 500) for i in range(30)]
        for index, oid in enumerate(oids):
            assert store.read(oid) == bytes([index % 250]) * 500
        assert len(store.pool.disk.page_ids()) > 1

    def test_relocation_preserves_others(self, store):
        stable = store.create(b"stay")
        mover = store.create(b"s")
        store.write(mover, b"m" * 3000)
        assert store.read(stable) == b"stay"
        assert store.read(mover) == b"m" * 3000


class TestRebuild:
    def test_rebuild_after_flush(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=16)
        store = ObjectStore(pool)
        oid_a = store.create(b"alpha")
        oid_b = store.create(b"beta")
        pool.flush_all()

        fresh = ObjectStore(BufferPool(disk, capacity=16))
        assert fresh.read(oid_a) == b"alpha"
        assert fresh.read(oid_b) == b"beta"
        # Id allocation resumes above the recovered high-water mark.
        assert fresh.create(b"gamma").value > oid_b.value
