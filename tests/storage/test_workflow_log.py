"""Workflow records in the WAL: codec, durability, recovery neutrality.

The durable workflow engine's whole contract rests on three storage
properties: the record round-trips byte-exactly, ``log_workflow`` is
*forced* (durable the moment the call returns — an attempt record that
could evaporate would reopen the commit/marker atomicity hole), and the
data-path machinery (restart recovery, checkpointing) treats the new
type as inert cargo.
"""

import pytest

from repro.common.ids import Lsn, Tid
from repro.storage.log import (
    WorkflowRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
)
from repro.storage.recovery import RecoveryManager
from repro.storage.segmented import ShardedStorageManager


class TestCodec:
    def test_round_trip(self):
        record = WorkflowRecord(
            lsn=Lsn(4), tid=Tid(7), wid=3, kind="step_attempt",
            payload=b'{"step": "hotel"}',
        )
        assert decode_record(encode_record(record)) == record

    def test_empty_payload_round_trip(self):
        record = WorkflowRecord(lsn=Lsn(1), tid=Tid(0), wid=1, kind="started")
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.payload == b""

    def test_unicode_kind_round_trip(self):
        record = WorkflowRecord(lsn=Lsn(1), tid=Tid(0), wid=9, kind="señal")
        assert decode_record(encode_record(record)).kind == "señal"


class TestDurability:
    def test_log_workflow_is_forced(self):
        log = WriteAheadLog()
        log.log_workflow(5, "started", payload=b"x")
        durable = [
            r for r in log.records(durable_only=True)
            if isinstance(r, WorkflowRecord)
        ]
        assert len(durable) == 1
        assert durable[0].wid == 5
        assert durable[0].payload == b"x"

    def test_interleaves_with_data_records(self):
        from repro.common.ids import ObjectId

        log = WriteAheadLog()
        log.log_before_image(Tid(1), ObjectId(1), None)
        log.log_workflow(1, "step_attempt", payload=b"a", tid=Tid(1))
        log.log_commit(Tid(1))
        kinds = [type(r).__name__ for r in log.records()]
        assert kinds == [
            "BeforeImageRecord", "WorkflowRecord", "CommitRecord",
        ]


class TestRecoveryNeutrality:
    def test_recovery_ignores_workflow_records(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDiskManager
        from repro.storage.objects import ObjectStore

        store = ObjectStore(BufferPool(InMemoryDiskManager(), capacity=16))
        log = WriteAheadLog()
        oid = store.create(b"base")
        log.log_workflow(1, "started")
        log.log_before_image(Tid(1), oid, b"base")
        store.write(oid, b"w1")
        log.log_after_image(Tid(1), oid, b"w1")
        log.log_workflow(1, "step_attempt", tid=Tid(1))
        log.log_commit(Tid(1))
        log.log_workflow(1, "finished")
        report = RecoveryManager(log, store).recover()
        assert Tid(1) in report.winners
        assert store.read(oid) == b"w1"


class TestShardedRouting:
    def test_routes_to_segment_zero(self):
        storage = ShardedStorageManager(n_shards=4)
        storage.log_workflow(2, "started", payload=b"p")
        home = [
            r for r in storage.shards[0].log.records(durable_only=True)
            if isinstance(r, WorkflowRecord)
        ]
        assert len(home) == 1 and home[0].wid == 2
        for shard in storage.shards[1:]:
            assert not any(
                isinstance(r, WorkflowRecord) for r in shard.log.records()
            )

    def test_merged_view_carries_workflow_records(self):
        storage = ShardedStorageManager(n_shards=2)
        storage.log_workflow(1, "started")
        storage.log_workflow(1, "finished")
        kinds = [
            r.kind for r in storage.log.records()
            if isinstance(r, WorkflowRecord)
        ]
        assert kinds == ["started", "finished"]

    def test_survives_segmented_crash_recover(self):
        storage = ShardedStorageManager(n_shards=2)
        storage.log_workflow(3, "started", payload=b"ctx")
        storage.crash()
        storage.recover()
        survivors = [
            r for r in storage.log.records()
            if isinstance(r, WorkflowRecord)
        ]
        assert [r.wid for r in survivors] == [3]
        assert survivors[0].payload == b"ctx"
