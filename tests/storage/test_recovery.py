"""Restart recovery: winners redone, losers undone, delegation honoured."""

import pytest

from repro.common.ids import ObjectId, Tid
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.log import WriteAheadLog
from repro.storage.objects import ObjectStore
from repro.storage.recovery import RecoveryManager


@pytest.fixture
def setup():
    disk = InMemoryDiskManager()
    pool = BufferPool(disk, capacity=16)
    store = ObjectStore(pool)
    log = WriteAheadLog()
    return store, log


def write_logged(store, log, tid, oid, value):
    """A logged update as the storage manager performs it."""
    before = store.read(oid) if store.exists(oid) else None
    log.log_before_image(tid, oid, before)
    if store.exists(oid):
        store.write(oid, value)
    else:
        store.create(value, oid=oid)
    log.log_after_image(tid, oid, value)


class TestAnalysis:
    def test_winners_and_losers(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"w1")
        log.log_commit(Tid(1))
        write_logged(store, log, Tid(2), oid, b"w2")
        log.flush()
        report = RecoveryManager(log, store).recover()
        assert Tid(1) in report.winners
        assert Tid(2) in report.losers

    def test_finished_abort_not_a_loser(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"w1")
        # The live abort undoes and logs its undo + completion:
        log.log_after_image(Tid(1), oid, b"base")
        store.write(oid, b"base")
        log.log_abort(Tid(1))
        log.flush()
        report = RecoveryManager(log, store).recover()
        assert Tid(1) in report.already_aborted
        assert Tid(1) not in report.losers
        assert store.read(oid) == b"base"


class TestRedoUndo:
    def test_committed_update_survives_cache_loss(self, setup):
        store, log = setup
        oid = store.create(b"base")
        store.pool.flush_all()
        write_logged(store, log, Tid(1), oid, b"committed-value")
        log.log_commit(Tid(1))
        # Crash: lose the cache (dirty page never flushed).
        store.pool.drop_all()
        store._rebuild_table()
        assert store.read(oid) == b"base"  # stale on disk
        RecoveryManager(log, store).recover()
        assert store.read(oid) == b"committed-value"

    def test_uncommitted_update_rolled_back(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"dirty")
        log.flush()
        store.pool.flush_all()  # steal: dirty page reaches disk
        store.pool.drop_all()
        store._rebuild_table()
        assert store.read(oid) == b"dirty"
        RecoveryManager(log, store).recover()
        assert store.read(oid) == b"base"

    def test_creation_by_loser_deleted(self, setup):
        store, log = setup
        oid = ObjectId(77)
        log.log_before_image(Tid(1), oid, None)
        store.create(b"new", oid=oid)
        log.log_after_image(Tid(1), oid, b"new")
        log.flush()
        RecoveryManager(log, store).recover()
        assert not store.exists(oid)

    def test_creation_by_winner_recreated(self, setup):
        store, log = setup
        oid = ObjectId(77)
        log.log_before_image(Tid(1), oid, None)
        log.log_after_image(Tid(1), oid, b"new")
        log.log_commit(Tid(1))
        # The object never reached disk (cache lost before flush).
        RecoveryManager(log, store).recover()
        assert store.read(oid) == b"new"

    def test_interleaved_winner_loser_same_object(self, setup):
        store, log = setup
        oid = store.create(b"v0")
        write_logged(store, log, Tid(1), oid, b"v1")  # loser
        write_logged(store, log, Tid(2), oid, b"v2")  # winner (cooperative)
        log.log_commit(Tid(2))
        RecoveryManager(log, store).recover()
        # Repeat history then undo the loser: its before image (v0) wins —
        # the paper's acknowledged cascading-loss semantics for
        # cooperating transactions.
        assert store.read(oid) == b"v0"

    def test_recovery_is_idempotent(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"w1")
        log.log_commit(Tid(1))
        write_logged(store, log, Tid(2), oid, b"w2")
        log.flush()
        RecoveryManager(log, store).recover()
        first = store.read(oid)
        RecoveryManager(log, store).recover()
        assert store.read(oid) == first
        # Second pass found no new losers.
        report = RecoveryManager(log, store).recover()
        assert report.losers == set()


class TestDelegationAtRecovery:
    def test_delegated_to_winner_survives(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"delegated-work")
        log.log_delegate(Tid(1), Tid(2), [oid])
        log.log_commit(Tid(2))
        log.flush()
        report = RecoveryManager(log, store).recover()
        assert store.read(oid) == b"delegated-work"
        assert Tid(1) in report.losers  # the delegator itself never committed

    def test_delegated_to_loser_undone(self, setup):
        store, log = setup
        oid = store.create(b"base")
        write_logged(store, log, Tid(1), oid, b"delegated-work")
        log.log_delegate(Tid(1), Tid(2), [oid])
        log.log_commit(Tid(1))  # the DELEGATOR commits...
        log.flush()
        RecoveryManager(log, store).recover()
        # ... but responsibility had moved to Tid(2), which never did.
        assert store.read(oid) == b"base"
