"""The write-ahead log: record encoding, devices, delegation attribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import Lsn, ObjectId, Tid
from repro.storage.log import (
    AbortRecord,
    AfterImageRecord,
    BeforeImageRecord,
    CheckpointRecord,
    CommitRecord,
    DelegateRecord,
    FileLogDevice,
    MemoryLogDevice,
    WriteAheadLog,
    decode_record,
    encode_record,
)


class TestRecordCodec:
    def test_before_image_round_trip(self):
        record = BeforeImageRecord(
            lsn=Lsn(1), tid=Tid(2), oid=ObjectId(3), image=b"old"
        )
        assert decode_record(encode_record(record)) == record

    def test_absent_image_round_trip(self):
        record = BeforeImageRecord(
            lsn=Lsn(1), tid=Tid(2), oid=ObjectId(3), image=None
        )
        decoded = decode_record(encode_record(record))
        assert decoded.image is None

    def test_commit_with_group(self):
        record = CommitRecord(lsn=Lsn(9), tid=Tid(1), group=(Tid(2), Tid(3)))
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.committed_tids() == {Tid(1), Tid(2), Tid(3)}

    def test_delegate_round_trip(self):
        record = DelegateRecord(
            lsn=Lsn(5),
            tid=Tid(1),
            delegatee=Tid(7),
            oids=(ObjectId(1), ObjectId(2)),
        )
        assert decode_record(encode_record(record)) == record

    def test_abort_and_checkpoint(self):
        abort = AbortRecord(lsn=Lsn(2), tid=Tid(4))
        assert decode_record(encode_record(abort)) == abort
        checkpoint = CheckpointRecord(
            lsn=Lsn(3), tid=Tid(0), active=(Tid(1),)
        )
        assert decode_record(encode_record(checkpoint)) == checkpoint

    @given(
        st.integers(min_value=1, max_value=2**40),
        st.integers(min_value=1, max_value=2**40),
        st.integers(min_value=1, max_value=2**40),
        st.one_of(st.none(), st.binary(max_size=200)),
    )
    @settings(max_examples=80, deadline=None)
    def test_image_record_property(self, lsn, tid, oid, image):
        record = AfterImageRecord(
            lsn=Lsn(lsn), tid=Tid(tid), oid=ObjectId(oid), image=image
        )
        assert decode_record(encode_record(record)) == record


class TestWriteAheadLog:
    def test_lsns_are_monotone(self):
        log = WriteAheadLog()
        records = [
            log.log_before_image(Tid(1), ObjectId(1), b"a"),
            log.log_after_image(Tid(1), ObjectId(1), b"b"),
            log.log_commit(Tid(1)),
        ]
        lsns = [record.lsn for record in records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 3

    def test_records_returns_in_order(self):
        log = WriteAheadLog()
        log.log_before_image(Tid(1), ObjectId(1), b"a")
        log.log_commit(Tid(1))
        kinds = [type(record) for record in log.records()]
        assert kinds == [BeforeImageRecord, CommitRecord]

    def test_commit_flushes(self):
        log = WriteAheadLog()
        before = log.flush_count
        log.log_commit(Tid(1))
        assert log.flush_count == before + 1

    def test_durable_only_view(self):
        log = WriteAheadLog()
        log.log_before_image(Tid(1), ObjectId(1), b"a")
        assert log.records(durable_only=True) == []
        log.flush()
        assert len(log.records(durable_only=True)) == 1

    def test_crash_drops_unflushed(self):
        log = WriteAheadLog()
        log.log_before_image(Tid(1), ObjectId(1), b"a")
        log.flush()
        log.log_before_image(Tid(1), ObjectId(2), b"b")
        log.device.crash()
        log.resync()  # whoever crashes the device must resync the cache
        assert len(log.records()) == 1

    def test_resync_rebuilds_cache(self):
        device = MemoryLogDevice()
        log = WriteAheadLog(device)
        log.log_commit(Tid(1))
        # A second handle appends behind our back.
        other = WriteAheadLog(device)
        other.log_commit(Tid(2))
        log.resync()
        assert len(log.records()) == 2

    def test_reopen_resumes_lsn(self):
        device = MemoryLogDevice()
        log = WriteAheadLog(device)
        last = log.log_commit(Tid(1))
        reopened = WriteAheadLog(device)
        fresh = reopened.log_commit(Tid(2))
        assert fresh.lsn.value > last.lsn.value


class TestDelegationAttribution:
    def test_updates_by_follows_delegation(self):
        log = WriteAheadLog()
        a, b = ObjectId(1), ObjectId(2)
        log.log_before_image(Tid(1), a, b"va")
        log.log_before_image(Tid(1), b, b"vb")
        log.log_delegate(Tid(1), Tid(2), [a])
        assert [r.oid for r in log.updates_by(Tid(1))] == [b]
        assert [r.oid for r in log.updates_by(Tid(2))] == [a]

    def test_chained_delegation(self):
        log = WriteAheadLog()
        a = ObjectId(1)
        log.log_before_image(Tid(1), a, b"v")
        log.log_delegate(Tid(1), Tid(2), [a])
        log.log_delegate(Tid(2), Tid(3), [a])
        assert log.updates_by(Tid(1)) == []
        assert log.updates_by(Tid(2)) == []
        assert [r.oid for r in log.updates_by(Tid(3))] == [a]

    def test_updates_after_delegation_stay_with_writer(self):
        log = WriteAheadLog()
        a = ObjectId(1)
        log.log_before_image(Tid(1), a, b"v1")
        log.log_delegate(Tid(1), Tid(2), [a])
        log.log_before_image(Tid(1), a, b"v2")  # a NEW update by Tid(1)
        assert [r.image for r in log.updates_by(Tid(1))] == [b"v2"]
        assert [r.image for r in log.updates_by(Tid(2))] == [b"v1"]


class TestFileDevice:
    def test_file_round_trip(self, tmp_path):
        device = FileLogDevice(tmp_path / "wal.log")
        log = WriteAheadLog(device)
        log.log_before_image(Tid(1), ObjectId(1), b"x")
        log.log_commit(Tid(1))
        device.close()

        reopened = WriteAheadLog(FileLogDevice(tmp_path / "wal.log"))
        kinds = [type(record) for record in reopened.records()]
        assert kinds == [BeforeImageRecord, CommitRecord]

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "wal.log"
        device = FileLogDevice(path)
        log = WriteAheadLog(device)
        log.log_commit(Tid(1))
        device.flush()
        device.close()
        # Simulate a torn write: append garbage length prefix + short body.
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff\x00\x00partial")
        reopened = WriteAheadLog(FileLogDevice(path))
        assert len(reopened.records()) == 1
