"""StorageManager facade: latched logged operations, undo, crash cycle."""

import pytest

from repro.common.ids import Tid
from repro.storage.log import (
    AfterImageRecord,
    BeforeImageRecord,
    CommitRecord,
)
from repro.storage.store import StorageManager


@pytest.fixture
def store():
    return StorageManager()


class TestLoggedOperations:
    def test_create_logs_absent_before_image(self, store):
        store.create_object(Tid(1), b"fresh")
        records = store.log.records()
        assert isinstance(records[0], BeforeImageRecord)
        assert records[0].image is None
        assert isinstance(records[1], AfterImageRecord)
        assert records[1].image == b"fresh"

    def test_write_logs_before_and_after(self, store):
        oid = store.create_object(Tid(1), b"v0")
        store.write_object(Tid(1), oid, b"v1")
        records = store.log.records()
        before = [r for r in records if isinstance(r, BeforeImageRecord)]
        after = [r for r in records if isinstance(r, AfterImageRecord)]
        assert before[-1].image == b"v0"
        assert after[-1].image == b"v1"

    def test_read_does_not_log(self, store):
        oid = store.create_object(Tid(1), b"v0")
        count = len(store.log.records())
        assert store.read_object(Tid(1), oid) == b"v0"
        assert len(store.log.records()) == count

    def test_delete_is_undoable(self, store):
        oid = store.create_object(Tid(1), b"v0")
        store.log_commit(Tid(1))
        store.delete_object(Tid(2), oid)
        assert not store.objects.exists(oid)
        store.undo(Tid(2))
        assert store.read_object(Tid(2), oid) == b"v0"


class TestUndo:
    def test_undo_restores_in_reverse(self, store):
        oid = store.create_object(Tid(1), b"v0")
        store.log_commit(Tid(1))
        store.write_object(Tid(2), oid, b"v1")
        store.write_object(Tid(2), oid, b"v2")
        undone = store.undo(Tid(2))
        assert undone == 2
        assert store.read_object(Tid(2), oid) == b"v0"

    def test_undo_respects_delegation(self, store):
        oid = store.create_object(Tid(1), b"v0")
        store.log_commit(Tid(1))
        store.write_object(Tid(2), oid, b"v1")
        store.log_delegate(Tid(2), Tid(3), [oid])
        assert store.undo(Tid(2)) == 0  # no longer responsible
        assert store.read_object(Tid(2), oid) == b"v1"
        assert store.undo(Tid(3)) == 1
        assert store.read_object(Tid(3), oid) == b"v0"

    def test_undo_of_create_deletes(self, store):
        oid = store.create_object(Tid(1), b"fresh")
        store.undo(Tid(1))
        assert not store.objects.exists(oid)


class TestCrashRecovery:
    def test_full_cycle(self, store):
        oid = store.create_object(Tid(1), b"base")
        store.log_commit(Tid(1))
        store.write_object(Tid(2), oid, b"committed")
        store.log_commit(Tid(2))
        store.write_object(Tid(3), oid, b"in-flight")
        store.log.flush()  # the update records are durable; the commit isn't
        store.crash()
        report = store.recover()
        assert Tid(2) in report.winners
        assert Tid(3) in report.losers
        assert store.read_object(Tid(0), oid) == b"committed"

    def test_unflushed_log_records_lost(self, store):
        oid = store.create_object(Tid(1), b"base")
        store.log_commit(Tid(1))
        store.write_object(Tid(2), oid, b"never-committed")
        # No commit, no flush: the log records for Tid(2) may be lost, but
        # either way the value must roll back to base.
        store.crash()
        store.recover()
        assert store.read_object(Tid(0), oid) == b"base"

    def test_checkpoint_flushes_pages(self, store):
        oid = store.create_object(Tid(1), b"base")
        store.log_commit(Tid(1))
        store.checkpoint(active=[])
        # Even without redo, disk holds the value now.
        store.pool.drop_all()
        store.objects._rebuild_table()
        assert store.objects.read(oid) == b"base"

    def test_group_commit_record(self, store):
        store.create_object(Tid(1), b"a")
        store.log_commit(Tid(1), group=[Tid(2), Tid(3)])
        commits = [
            r for r in store.log.records() if isinstance(r, CommitRecord)
        ]
        assert commits[-1].committed_tids() == {Tid(1), Tid(2), Tid(3)}
