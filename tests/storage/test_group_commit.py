"""The group-commit flush coalescer.

Commit records can *enroll* in a flush batch instead of forcing an
immediate device sync; the batch flushes when it reaches ``max_commits``
commits or ``max_bytes`` appended log bytes.  The trade is explicit:
between enrollment and batch flush a commit is not durable, and a crash
in that window loses it — exactly as if the commit had never been
requested.  Everything else about write-ahead logging is unchanged.
"""

import pytest

from repro.common.errors import StorageError
from repro.common.ids import ObjectId, Tid
from repro.storage.disk import InMemoryDiskManager
from repro.storage.log import (
    CommitRecord,
    FlushCoalescer,
    MemoryLogDevice,
    WriteAheadLog,
)
from repro.storage.store import StorageManager


class TestCoalescerPolicy:
    def test_n_commits_one_flush(self):
        log = WriteAheadLog(group_commit=FlushCoalescer(max_commits=4))
        before = log.flush_count
        for value in range(1, 4):
            log.log_commit(Tid(value))
        assert log.flush_count == before  # still enrolled, not durable
        log.log_commit(Tid(4))  # fourth commit trips the batch
        assert log.flush_count == before + 1
        assert log.group_commit.pending_commits == 0
        assert log.group_commit.batches_flushed == 1
        assert log.group_commit.enrolled_total == 4

    def test_int_shorthand_builds_coalescer(self):
        log = WriteAheadLog(group_commit=8)
        assert isinstance(log.group_commit, FlushCoalescer)
        assert log.group_commit.max_commits == 8

    def test_byte_bound_trips_before_count_bound(self):
        log = WriteAheadLog(
            group_commit=FlushCoalescer(max_commits=1000, max_bytes=256)
        )
        before = log.flush_count
        log.log_before_image(Tid(1), ObjectId(1), b"x" * 512)
        log.log_commit(Tid(1))  # bytes already exceed the bound
        assert log.flush_count == before + 1

    def test_explicit_flush_drains_batch(self):
        log = WriteAheadLog(group_commit=FlushCoalescer(max_commits=100))
        log.log_commit(Tid(1))
        assert log.group_commit.pending_commits == 1
        log.flush()
        assert log.group_commit.pending_commits == 0
        assert log.group_commit.batches_flushed == 1

    def test_checkpoint_forces_batch_durable(self):
        log = WriteAheadLog(group_commit=FlushCoalescer(max_commits=100))
        log.log_commit(Tid(1))
        log.log_checkpoint(active=())  # checkpoint always flushes
        assert log.group_commit.pending_commits == 0

    def test_without_coalescer_every_commit_flushes(self):
        log = WriteAheadLog()
        before = log.flush_count
        for value in range(1, 5):
            log.log_commit(Tid(value))
        assert log.flush_count == before + 4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(StorageError):
            FlushCoalescer(max_commits=0)
        with pytest.raises(StorageError):
            FlushCoalescer(max_bytes=0)


class TestCrashSemantics:
    def _storage(self, max_commits=8):
        log = WriteAheadLog(
            MemoryLogDevice(),
            group_commit=FlushCoalescer(max_commits=max_commits),
        )
        return StorageManager(disk=InMemoryDiskManager(), log=log)

    def test_unflushed_commit_lost_on_crash(self):
        storage = self._storage()
        oid = storage.create_object(Tid(1), b"v1")
        storage.log.flush()  # the update reaches the device...
        storage.log_commit(Tid(1))  # ...but the enrolled commit does not
        storage.crash()
        report = storage.recover()
        assert Tid(1) in report.losers
        assert not storage.objects.exists(oid)

    def test_batch_boundary_makes_all_members_durable(self):
        storage = self._storage(max_commits=2)
        first = storage.create_object(Tid(1), b"v1")
        storage.log_commit(Tid(1))
        second = storage.create_object(Tid(2), b"v2")
        storage.log_commit(Tid(2))  # trips the batch: both durable
        storage.crash()
        report = storage.recover()
        assert report.winners == {Tid(1), Tid(2)}
        assert storage.objects.read(first) == b"v1"
        assert storage.objects.read(second) == b"v2"

    def test_sync_log_closes_deferral_window(self):
        storage = self._storage()
        oid = storage.create_object(Tid(1), b"v1")
        storage.log_commit(Tid(1))
        storage.sync_log()  # caller needs durability now
        storage.crash()
        report = storage.recover()
        assert Tid(1) in report.winners
        assert storage.objects.read(oid) == b"v1"

    def test_crash_resync_abandons_pending_batch(self):
        storage = self._storage()
        storage.create_object(Tid(1), b"v1")
        storage.log_commit(Tid(1))
        assert storage.log.group_commit.pending_commits == 1
        storage.crash()
        # The enrolled commit is gone from the device; nothing pends.
        assert storage.log.group_commit.pending_commits == 0
        batches_before = storage.log.group_commit.batches_flushed
        storage.log.flush()
        assert storage.log.group_commit.batches_flushed == batches_before

    def test_coalesced_commit_records_survive_in_order(self):
        storage = self._storage(max_commits=3)
        for value in range(1, 4):
            storage.create_object(Tid(value), bytes([value]))
            storage.log_commit(Tid(value))
        storage.crash()
        commits = [
            r
            for r in storage.log.records()
            if isinstance(r, CommitRecord)
        ]
        assert [r.tid for r in commits] == [Tid(1), Tid(2), Tid(3)]


class TestManagerWiring:
    def test_manager_exposes_group_commit(self):
        from repro.core.manager import TransactionManager

        manager = TransactionManager(group_commit=4)
        coalescer = manager.storage.log.group_commit
        assert isinstance(coalescer, FlushCoalescer)
        tids = []
        for __ in range(4):
            tid = manager.initiate()
            manager.begin(tid)
            manager.note_completed(tid)
            tids.append(tid)
        before = manager.storage.log.flush_count
        for tid in tids[:3]:
            assert manager.try_commit(tid).is_final
        assert manager.storage.log.flush_count == before  # deferred
        assert manager.try_commit(tids[3]).is_final  # trips the batch
        assert manager.storage.log.flush_count == before + 1
        manager.sync()  # idempotent drain
        assert coalescer.pending_commits == 0
