"""Disk managers: allocation, IO, persistence, snapshots."""

import pytest

from repro.common.errors import StorageError
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.storage.page import Page


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        yield InMemoryDiskManager()
    else:
        manager = FileDiskManager(tmp_path / "pages.db")
        yield manager
        manager.close()


class TestDiskManagers:
    def test_allocate_sequential_ids(self, disk):
        assert disk.allocate_page() == 1
        assert disk.allocate_page() == 2

    def test_new_page_is_zeroed(self, disk):
        page_id = disk.allocate_page()
        assert disk.read_page(page_id) == bytes(disk.page_size)

    def test_write_read_round_trip(self, disk):
        page_id = disk.allocate_page()
        page = Page(page_id)
        page.insert(1, b"payload")
        disk.write_page(page_id, page.to_bytes())
        clone = Page.from_bytes(disk.read_page(page_id))
        assert clone.read(0) == (1, b"payload")

    def test_unknown_page_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(99)
        with pytest.raises(StorageError):
            disk.write_page(99, bytes(disk.page_size))

    def test_wrong_image_size_rejected(self, disk):
        page_id = disk.allocate_page()
        with pytest.raises(StorageError):
            disk.write_page(page_id, b"short")

    def test_page_ids_enumerates(self, disk):
        for __ in range(3):
            disk.allocate_page()
        assert list(disk.page_ids()) == [1, 2, 3]


class TestFilePersistence:
    def test_reopen_preserves_pages(self, tmp_path):
        path = tmp_path / "pages.db"
        manager = FileDiskManager(path)
        page_id = manager.allocate_page()
        page = Page(page_id)
        page.insert(5, b"durable")
        manager.write_page(page_id, page.to_bytes())
        manager.sync()
        manager.close()

        reopened = FileDiskManager(path)
        clone = Page.from_bytes(reopened.read_page(page_id))
        assert clone.read(0) == (5, b"durable")
        reopened.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            FileDiskManager(path)


class TestSnapshots:
    def test_snapshot_restore(self):
        disk = InMemoryDiskManager()
        page_id = disk.allocate_page()
        page = Page(page_id)
        page.insert(1, b"before")
        disk.write_page(page_id, page.to_bytes())
        snapshot = disk.snapshot()

        page.update(0, b"after!")
        disk.write_page(page_id, page.to_bytes())
        disk.restore(snapshot)
        clone = Page.from_bytes(disk.read_page(page_id))
        assert clone.read(0) == (1, b"before")
