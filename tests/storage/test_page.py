"""Slotted pages: insert/read/update/delete, compaction, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.storage.page import PAGE_SIZE, Page, PageFullError


class TestBasicOperations:
    def test_insert_and_read(self):
        page = Page(1)
        slot = page.insert(42, b"hello")
        assert page.read(slot) == (42, b"hello")

    def test_multiple_objects(self):
        page = Page(1)
        slots = {page.insert(i, bytes([i]) * i): i for i in range(1, 10)}
        for slot, oid in slots.items():
            value = page.read(slot)
            assert value == (oid, bytes([oid]) * oid)

    def test_update_in_place(self):
        page = Page(1)
        slot = page.insert(1, b"abcdef")
        page.update(slot, b"xy")
        assert page.read(slot) == (1, b"xy")

    def test_update_grows_and_relocates(self):
        page = Page(1)
        slot = page.insert(1, b"ab")
        page.insert(2, b"other")
        page.update(slot, b"a much longer value than before")
        assert page.read(slot) == (1, b"a much longer value than before")
        assert page.read(1) == (2, b"other")

    def test_delete_then_read_raises(self):
        page = Page(1)
        slot = page.insert(1, b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_deleted_slot_is_reused(self):
        page = Page(1)
        slot = page.insert(1, b"x")
        page.delete(slot)
        new_slot = page.insert(2, b"y")
        assert new_slot == slot
        assert page.read(new_slot) == (2, b"y")

    def test_bad_slot_raises(self):
        page = Page(1)
        with pytest.raises(StorageError):
            page.read(0)
        with pytest.raises(StorageError):
            page.read(-1)

    def test_items_iterates_live_only(self):
        page = Page(1)
        page.insert(1, b"a")
        doomed = page.insert(2, b"b")
        page.insert(3, b"c")
        page.delete(doomed)
        assert [(oid, data) for __, oid, data in page.items()] == [
            (1, b"a"),
            (3, b"c"),
        ]


class TestSpaceManagement:
    def test_page_full(self):
        page = Page(1, page_size=256)
        with pytest.raises(PageFullError):
            page.insert(1, b"z" * 300)

    def test_fill_to_capacity_then_fail(self):
        page = Page(1, page_size=256)
        inserted = 0
        try:
            for index in range(100):
                page.insert(index, b"0123456789")
                inserted += 1
        except PageFullError:
            pass
        assert inserted > 0
        with pytest.raises(PageFullError):
            page.insert(999, b"0123456789" * 3)

    def test_compaction_reclaims_space(self):
        page = Page(1, page_size=256)
        slots = [page.insert(i, b"0123456789") for i in range(10)]
        for slot in slots[:-1]:
            page.delete(slot)
        free_before = page.free_space()
        page.compact()
        assert page.free_space() > free_before
        # The surviving object is intact.
        assert page.read(slots[-1]) == (9, b"0123456789")

    def test_insert_triggers_compaction_when_fragmented(self):
        page = Page(1, page_size=256)
        slots = [page.insert(i, b"ten bytes!") for i in range(10)]
        for slot in slots:
            page.delete(slot)
        # All space is reclaimable; a large insert must succeed.
        slot = page.insert(100, b"z" * 120)
        assert page.read(slot) == (100, b"z" * 120)

    def test_live_count(self):
        page = Page(1)
        a = page.insert(1, b"a")
        page.insert(2, b"b")
        page.delete(a)
        assert page.live_count == 1
        assert page.slot_count == 2


class TestSerialization:
    def test_round_trip_empty(self):
        page = Page(7)
        clone = Page.from_bytes(page.to_bytes())
        assert clone.page_id == 7
        assert clone.live_count == 0

    def test_round_trip_with_objects_and_tombstones(self):
        page = Page(3)
        page.insert(1, b"alpha")
        doomed = page.insert(2, b"beta")
        page.insert(3, b"gamma")
        page.delete(doomed)
        clone = Page.from_bytes(page.to_bytes())
        assert [(o, d) for __, o, d in clone.items()] == [
            (1, b"alpha"),
            (3, b"gamma"),
        ]

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"\x01" * PAGE_SIZE)

    def test_all_zero_image_is_an_empty_page(self):
        # A page allocated but never written back reads as empty.
        page = Page.from_bytes(b"\x00" * PAGE_SIZE, default_page_id=9)
        assert page.page_id == 9
        assert page.live_count == 0

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"\x00" * 100)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),
                st.binary(min_size=0, max_size=60),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, objects):
        """Property: any sequence of inserts round-trips through bytes."""
        page = Page(1)
        stored = []
        for oid, data in objects:
            try:
                slot = page.insert(oid, data)
                stored.append((slot, oid, data))
            except PageFullError:
                break
        clone = Page.from_bytes(page.to_bytes())
        for slot, oid, data in stored:
            assert clone.read(slot) == (oid, data)
