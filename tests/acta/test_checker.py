"""Model-property checkers."""

import pytest

from repro.acta.checker import (
    check_abort_dependencies,
    check_commit_order,
    check_compensation_shape,
    check_group_atomicity,
    final_fate,
)
from repro.acta.history import HistoryRecorder
from repro.common.clock import LogicalClock
from repro.common.events import EventBus, EventKind
from repro.common.ids import Tid


def make_recorder():
    bus = EventBus(LogicalClock())
    recorder = HistoryRecorder()
    bus.subscribe(recorder._on_event)
    return bus, recorder


class TestFinalFate:
    def test_fates(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.ABORTED, Tid(2))
        assert final_fate(recorder, Tid(1)) == "committed"
        assert final_fate(recorder, Tid(2)) == "aborted"
        assert final_fate(recorder, Tid(3)) == "active"


class TestGroupAtomicity:
    def test_violation_detected(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="GC")
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.ABORTED, Tid(2))
        assert len(check_group_atomicity(recorder)) == 1

    def test_both_commit_ok(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="GC")
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(2))
        assert check_group_atomicity(recorder) == []

    def test_undecided_pairs_ignored(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="GC")
        bus.emit(EventKind.COMMITTED, Tid(1))
        assert check_group_atomicity(recorder) == []


class TestAbortDependencies:
    def test_violation(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="AD")
        bus.emit(EventKind.ABORTED, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(2))
        assert check_abort_dependencies(recorder) == [(Tid(1), Tid(2))]

    def test_ok_when_both_abort(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="AD")
        bus.emit(EventKind.ABORTED, Tid(1))
        bus.emit(EventKind.ABORTED, Tid(2))
        assert check_abort_dependencies(recorder) == []


class TestCommitOrder:
    def test_violation(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="CD")
        bus.emit(EventKind.COMMITTED, Tid(2))  # tj first: violation
        bus.emit(EventKind.COMMITTED, Tid(1))
        assert check_commit_order(recorder) == [(Tid(1), Tid(2))]

    def test_correct_order(self):
        bus, recorder = make_recorder()
        bus.emit(EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2),
                 dep_type="CD")
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(2))
        assert check_commit_order(recorder) == []


class TestCompensationShape:
    def test_committed_saga(self):
        assert check_compensation_shape(["t1", "t2", "t3"], 3)

    def test_compensated_prefix(self):
        assert check_compensation_shape(["t1", "t2", "ct2", "ct1"], 3)

    def test_empty_run(self):
        assert check_compensation_shape([], 3)

    def test_wrong_compensation_order(self):
        assert not check_compensation_shape(["t1", "t2", "ct1", "ct2"], 3)

    def test_missing_compensation(self):
        assert not check_compensation_shape(["t1", "t2", "ct2"], 3)

    def test_interleaved_rejected(self):
        assert not check_compensation_shape(["t1", "ct1", "t2"], 3)

    def test_committed_saga_with_trailing_comp_rejected(self):
        assert not check_compensation_shape(
            ["t1", "t2", "t3", "ct3"], 3
        )

    def test_forward_gap_rejected(self):
        assert not check_compensation_shape(["t1", "t3"], 3)
