"""History recording from manager events."""

import pytest

from tests.conftest import incrementer, make_counters

from repro.acta.history import HistoryRecorder
from repro.common.events import EventKind
from repro.core.semantics import READ, WRITE


class TestRecording:
    def test_operations_in_tick_order(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        tid = rt.spawn(incrementer(oid))
        rt.commit(tid)
        operations = recorder.operations()
        ticks = [op.tick for op in operations]
        assert ticks == sorted(ticks)
        mine = [op for op in operations if op.tid == tid]
        assert [op.operation for op in mine] == [READ, WRITE]

    def test_committed_and_aborted_lists(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        good = rt.spawn(incrementer(oid))
        rt.commit(good)
        bad = rt.spawn(incrementer(oid, fail=True))
        rt.wait(bad)
        assert good in recorder.committed()
        assert bad in recorder.aborted()

    def test_delegations_recorded(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        worker = rt.spawn(incrementer(oid))
        rt.wait(worker)
        target = rt.manager.initiate()
        rt.manager.delegate(worker, target)
        [delegation] = recorder.delegations()
        assert delegation.source == worker
        assert delegation.target == target
        assert delegation.oids == (oid,)

    def test_permits_recorded(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        holder = rt.spawn(incrementer(oid))
        rt.wait(holder)
        rt.manager.permit(holder, oids=[oid], operations=[WRITE])
        [permit] = recorder.permits()
        assert permit.giver == holder
        assert permit.receiver is None
        assert permit.operation == WRITE

    def test_dependencies_recorded(self, rt):
        from repro.core.dependency import DependencyType

        recorder = HistoryRecorder(rt.manager)
        a = rt.manager.initiate()
        b = rt.manager.initiate()
        rt.manager.form_dependency(DependencyType.GC, a, b)
        [(__, dep_type, ti, tj)] = recorder.dependencies()
        assert dep_type == "GC"
        assert (ti, tj) == (a, b)

    def test_clear(self, rt):
        recorder = HistoryRecorder(rt.manager)
        make_counters(rt, 1)
        assert recorder.events
        recorder.clear()
        assert recorder.events == []

    def test_of_kind_filter(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        tid = rt.spawn(incrementer(oid))
        rt.commit(tid)
        commits = recorder.of_kind(EventKind.COMMITTED)
        assert all(e.kind is EventKind.COMMITTED for e in commits)
        assert len(commits) >= 2  # setup + incrementer
