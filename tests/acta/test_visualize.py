"""History visualization output."""

import pytest

from tests.conftest import incrementer, make_counters

from repro.acta.history import HistoryRecorder
from repro.acta.visualize import (
    format_history,
    format_object_timeline,
    summarize,
)
from repro.common.events import EventKind


@pytest.fixture
def run(rt):
    recorder = HistoryRecorder(rt.manager)
    [oid] = make_counters(rt, 1)
    good = rt.spawn(incrementer(oid))
    rt.commit(good)
    bad = rt.spawn(incrementer(oid, fail=True))
    rt.wait(bad)
    return recorder, oid, good, bad


class TestFormatHistory:
    def test_every_event_is_one_line(self, run):
        recorder, *_ = run
        text = format_history(recorder)
        assert len(text.splitlines()) == len(recorder.events)

    def test_filter_by_tid(self, run):
        recorder, __, good, bad = run
        text = format_history(recorder, tids=[bad])
        assert f"T{bad.value}" in text
        assert f"T{good.value} " not in text

    def test_filter_by_kind(self, run):
        recorder, *_ = run
        text = format_history(recorder, kinds=[EventKind.COMMITTED])
        assert all("committed" in line for line in text.splitlines())

    def test_ticks_ascend(self, run):
        recorder, *_ = run
        ticks = [
            int(line.split()[0].split("=")[1])
            for line in format_history(recorder).splitlines()
        ]
        assert ticks == sorted(ticks)

    def test_abort_reason_shown(self, run):
        recorder, __, __, bad = run
        text = format_history(recorder, tids=[bad],
                              kinds=[EventKind.ABORTED])
        assert "aborted" in text


class TestObjectTimeline:
    def test_operations_only(self, run):
        recorder, oid, *_ = run
        text = format_object_timeline(recorder, oid)
        for line in text.splitlines():
            assert ("read" in line) or ("write" in line)
        assert len(text.splitlines()) == len(
            [op for op in recorder.operations() if op.oid == oid]
        )


class TestSummary:
    def test_counts(self, run):
        recorder, *_ = run
        text = summarize(recorder)
        assert "2 committed, 1 aborted" in text  # setup + good, bad
        assert "1 objects" in text
