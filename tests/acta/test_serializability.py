"""Conflict-graph construction and the serializability test."""

import pytest

from tests.conftest import make_counters

from repro.acta.history import HistoryRecorder
from repro.acta.serializability import (
    ConflictGraph,
    build_conflict_graph,
    is_conflict_serializable,
)
from repro.common.codec import decode_int, encode_int
from repro.common.ids import Tid


class TestConflictGraph:
    def test_acyclic_graph(self):
        graph = ConflictGraph()
        graph.add_edge(Tid(1), Tid(2))
        graph.add_edge(Tid(2), Tid(3))
        assert graph.is_acyclic
        assert graph.topological_order() == [Tid(1), Tid(2), Tid(3)]

    def test_cycle_detected(self):
        graph = ConflictGraph()
        graph.add_edge(Tid(1), Tid(2))
        graph.add_edge(Tid(2), Tid(1))
        cycle = graph.find_cycle()
        assert set(cycle) == {Tid(1), Tid(2)}
        with pytest.raises(ValueError):
            graph.topological_order()


class TestFromHistories:
    def test_serial_transactions_have_ordered_graph(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)

        def bump(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        first = rt.spawn(bump)
        rt.commit(first)
        second = rt.spawn(bump)
        rt.commit(second)
        graph = build_conflict_graph(recorder)
        assert second in graph.edges.get(first, set())
        ok, __ = is_conflict_serializable(recorder)
        assert ok

    def test_aborted_transactions_excluded(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)

        def doomed(tx):
            yield tx.write(oid, encode_int(9))
            yield tx.abort()

        tid = rt.spawn(doomed)
        rt.wait(tid)
        graph = build_conflict_graph(recorder)
        assert tid not in graph.nodes or not graph.edges.get(tid)

    def test_delegation_reattributes_conflicts(self, rt):
        """Operations delegated to a committed transaction count as its."""
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)

        def writer(tx):
            yield tx.write(oid, encode_int(1))

        worker = rt.spawn(writer)
        rt.wait(worker)
        collector = rt.manager.initiate()
        rt.manager.delegate(worker, collector)
        rt.manager.abort(worker)
        rt.begin(collector)
        rt.commit(collector)

        graph = build_conflict_graph(recorder)
        # The write belongs to the collector now; the setup transaction's
        # creation-write precedes it.
        assert any(
            collector in targets for targets in graph.edges.values()
        ) or collector in graph.nodes

        ok, __ = is_conflict_serializable(recorder)
        assert ok

    def test_permit_suppresses_edge(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)

        def writer(value):
            def body(tx):
                yield tx.write(oid, encode_int(value))

            return body

        first = rt.spawn(writer(1))
        rt.round()
        rt.manager.permit(first, oids=[oid])
        second = rt.spawn(writer(2))
        rt.run_until_quiescent()
        rt.commit_all([first, second])

        graph = build_conflict_graph(recorder)
        assert (first, second, oid, "write") in [
            (s[0], s[1], s[2], s[3]) for s in graph.suppressed
        ]
        assert second not in graph.edges.get(first, set())


class TestCycleWitness:
    def test_nonserializable_cooperative_history_detected(self, rt):
        """Mutual permits deliberately break serializability; the checker
        must show the cycle unless the edges are permit-suppressed."""
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)

        def toggler(tx):
            for __ in range(2):
                def keep(raw):
                    return raw, None

                yield tx.operation(oid, "write", keep)

        a = rt.spawn(toggler)
        b = rt.spawn(toggler)
        # Mutual wildcard permits: both directions suppressed -> still
        # "serializable" in the permit-aware sense.
        rt.manager.permit(a, tj=b, oids=[oid])
        rt.manager.permit(b, tj=a, oids=[oid])
        rt.run_until_quiescent()
        rt.commit_all([a, b])
        ok, cycle = is_conflict_serializable(recorder)
        assert ok, cycle
        graph = build_conflict_graph(recorder)
        assert graph.suppressed  # the conflicts existed, permits hid them
