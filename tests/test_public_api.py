"""The public API surface: exports exist and resolve.

Guards against broken ``__all__`` lists and accidental removals — the
kind of regression a downstream user hits first.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.acta",
    "repro.bench",
    "repro.cli",
    "repro.common",
    "repro.core",
    "repro.lang",
    "repro.models",
    "repro.obs",
    "repro.runtime",
    "repro.storage",
    "repro.workflow",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", ()):
        assert hasattr(module, export), f"{name}.{export} missing"


def test_top_level_convenience_names():
    import repro

    for export in (
        "TransactionManager",
        "CooperativeRuntime",
        "ThreadedRuntime",
        "DependencyType",
        "TransactionAborted",
        "encode_int",
        "decode_json",
    ):
        assert hasattr(repro, export)


def test_version_is_set():
    import repro

    major, minor, patch = repro.__version__.split(".")
    assert int(major) >= 1


def test_docstrings_everywhere_public():
    """Every public module, class, and function carries a docstring."""
    import inspect

    missing = []
    for name in PUBLIC_MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
        for attr_name in dir(module):
            if attr_name.startswith("_"):
                continue
            attr = getattr(module, attr_name)
            if not (inspect.isclass(attr) or inspect.isfunction(attr)):
                continue
            if getattr(attr, "__module__", "").startswith("repro"):
                if not (attr.__doc__ or "").strip():
                    missing.append(f"{name}.{attr_name}")
    assert missing == [], f"missing docstrings: {missing}"
