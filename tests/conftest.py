"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.acta.history import HistoryRecorder
from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.runtime.threaded import ThreadedRuntime

try:  # pragma: no cover - presence depends on the environment
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

# Per-test wall-clock ceiling.  CI installs pytest-timeout and passes
# --timeout on the command line; environments without the plugin get a
# SIGALRM-based fallback so a hung test still dies instead of wedging
# the whole run.  REPRO_TEST_TIMEOUT=0 disables the fallback.
_TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        if (
            _TEST_TIMEOUT <= 0
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {_TEST_TIMEOUT}s per-test ceiling"
                f" (REPRO_TEST_TIMEOUT)"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.alarm(_TEST_TIMEOUT)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def manager():
    """A fresh transaction manager over in-memory storage."""
    return TransactionManager()


@pytest.fixture
def rt():
    """A deterministic cooperative runtime (round-robin)."""
    return CooperativeRuntime()


@pytest.fixture
def seeded_rt():
    """A deterministic cooperative runtime with a fixed random seed."""
    return CooperativeRuntime(seed=1234)


@pytest.fixture
def threaded_rt():
    """A threaded runtime; closed after the test."""
    runtime = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=0.005)
    yield runtime
    runtime.close()


@pytest.fixture
def recorder(rt):
    """A history recorder attached to the cooperative runtime's manager."""
    return HistoryRecorder(rt.manager)


# -- plain helpers (imported via conftest namespace in tests) ------------


def make_counters(runtime, count, initial=0):
    """Create ``count`` integer objects via a setup transaction."""

    def setup(tx):
        oids = []
        for index in range(count):
            oid = yield tx.create(encode_int(initial), name=f"c{index}")
            oids.append(oid)
        return oids

    result = runtime.run(setup)
    assert result.committed
    return result.value


def read_counter(runtime, oid):
    """Read one integer object via a fresh transaction."""

    def body(tx):
        return decode_int((yield tx.read(oid)))

    result = runtime.run(body)
    assert result.committed
    return result.value


def incrementer(oid, delta=1, fail=False):
    """A body that increments ``oid`` by ``delta`` (optionally aborting)."""

    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + delta))
        if fail:
            yield tx.abort()
        return value + delta

    return body
