"""Metric instruments and registry behaviour."""

import json

from repro.common.clock import LogicalClock
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, ScopedMetrics


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_set_wins(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_bucket_placement(self):
        hist = Histogram(buckets=(1, 2, 4))
        for value in (0, 1, 2, 3, 100):
            hist.observe(value)
        # bounds are inclusive upper bounds; 100 overflows.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.total == 106
        assert hist.min == 0
        assert hist.max == 100

    def test_histogram_summary_shape(self):
        hist = Histogram(buckets=(1, 2))
        hist.observe(2)
        shape = hist.to_dict()
        assert shape["count"] == 1
        assert list(shape["buckets"]) == ["le=1", "le=2", "le=+inf"]
        assert shape["mean"] == 2.0

    def test_empty_histogram_mean(self):
        assert Histogram().mean() == 0.0


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        first = registry.counter("msgs", site="alpha", kind="vote")
        second = registry.counter("msgs", kind="vote", site="alpha")
        assert first is second

    def test_histogram_shape_fixed_by_first_registration(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat", buckets=(1, 2))
        second = registry.histogram("lat", buckets=(5, 6, 7))
        assert second is first
        assert second.buckets == (1, 2)

    def test_push_conveniences(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 9)
        registry.observe("h", 3)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_renders_labels_and_tick(self):
        clock = LogicalClock()
        clock.tick(5)
        registry = MetricsRegistry(clock=clock)
        registry.inc("fabric.sent", site="alpha")
        snap = registry.snapshot()
        assert snap["tick"] == 5
        assert snap["counters"]["fabric.sent{site=alpha}"] == 1

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        pulls = []

        @registry.add_collector
        def collect(reg):
            pulls.append(1)
            reg.set_gauge("pulled", len(pulls))

        assert registry.snapshot()["gauges"]["pulled"] == 1
        assert registry.snapshot()["gauges"]["pulled"] == 2

    def test_to_json_and_render_text(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("h", 2)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a"] == 1
        text = registry.render_text()
        assert "a 1" in text
        assert "h count=1" in text


class TestScopedMetrics:
    def test_scope_labels_stamped_on_updates(self):
        registry = MetricsRegistry()
        scoped = ScopedMetrics(registry, site="beta")
        scoped.inc("txn.committed")
        scoped.set_gauge("depth", 4)
        scoped.observe("lat", 1)
        snap = registry.snapshot()
        assert snap["counters"]["txn.committed{site=beta}"] == 1
        assert snap["gauges"]["depth{site=beta}"] == 4
        assert snap["histograms"]["lat{site=beta}"]["count"] == 1

    def test_instrument_passthrough_merges_labels(self):
        # Pre-binding through the scope must land on the same instrument
        # a direct registry access with the merged labels reaches.
        registry = MetricsRegistry()
        scoped = ScopedMetrics(registry, site="beta")
        assert scoped.counter("m", kind="vote") is registry.counter(
            "m", kind="vote", site="beta"
        )
        assert scoped.histogram("h") is registry.histogram("h", site="beta")
        assert scoped.gauge("g") is registry.gauge("g", site="beta")
