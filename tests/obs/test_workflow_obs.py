"""Workflow observability: counters, stats gauges, per-execution spans."""

from repro.common.codec import encode_int
from repro.core.manager import TransactionManager
from repro.obs import ObservabilityKit
from repro.runtime.coop import CooperativeRuntime
from repro.workflow.definition import DefinitionRegistry, WorkflowDefinition
from repro.workflow.durable import DurableWorkflowEngine
from repro.workflow.spec import WorkflowSpec


def _set_value(tx, oid, value):
    yield tx.write(oid, encode_int(value))
    return value


def _attached_engine():
    rt = CooperativeRuntime(TransactionManager(), seed=3)

    def setup(tx):
        return {
            "order": (yield tx.create(encode_int(0), name="order")),
            "audit": (yield tx.create(encode_int(0), name="audit")),
        }

    oids = rt.run(setup).value
    spec = WorkflowSpec(name="approval_spec")
    place = spec.task("place")
    place.alternative(_set_value, args=(oids["order"], 1), label="place")
    place.compensate_with(_set_value, args=(oids["order"], 0))
    confirm = spec.task("confirm", depends_on=("place",))
    confirm.alternative(_set_value, args=(oids["audit"], 1), label="confirm")
    definition = WorkflowDefinition("approval", spec).wait_for(
        "confirm", "approve", timeout=30
    )
    registry = DefinitionRegistry()
    registry.register(definition)
    engine = DurableWorkflowEngine(rt, registry)
    kit = ObservabilityKit()
    kit.attach_manager(rt.manager)
    kit.attach_workflow(engine)
    return engine, kit


class TestCountersAndGauges:
    def test_live_counters_and_stats_gauges(self):
        engine, kit = _attached_engine()
        wid = engine.start("approval")
        engine.signal(wid, "approve")
        snap = kit.snapshot()
        assert snap["counters"]["workflow.started"] == 1
        assert snap["counters"]["workflow.completed"] == 1
        assert snap["counters"]["workflow.steps_committed"] == 2
        assert snap["counters"]["workflow.signals"] == 1
        assert snap["gauges"]["workflow.stats.completed"] == 1

    def test_compensation_counted(self):
        engine, kit = _attached_engine()
        wid = engine.start("approval")
        engine.expire_wait(wid)
        snap = kit.snapshot()
        assert snap["counters"]["workflow.timeouts"] == 1
        assert snap["counters"]["workflow.compensations"] == 1
        assert snap["gauges"]["workflow.stats.compensated"] == 1


class TestExecutionSpans:
    def test_span_opens_annotates_and_closes(self):
        engine, kit = _attached_engine()
        wid = engine.start("approval")
        engine.signal(wid, "approve", "qa")
        spans = [
            span for span in kit.spans.export()
            if span["trace"] == "workflow"
        ]
        assert len(spans) == 1
        span = spans[0]
        assert span["tid"] == wid
        assert span["status"] == "completed"
        assert span["end"] is not None
        kinds = [link["type"] for link in span["links"]]
        assert kinds[0] == "started"
        assert "step_attempt" in kinds
        assert "signal_wait" in kinds
        assert "signal" in kinds
        assert kinds[-1] == "finished"
        # Step attempts carry enough to join against transaction spans.
        attempt = next(
            link for link in span["links"] if link["type"] == "step_attempt"
        )
        assert attempt["step"] == "place"
        assert attempt["tid"] > 0

    def test_attach_is_idempotent(self):
        engine, kit = _attached_engine()
        kit.attach_workflow(engine)  # second attach: no double wiring
        wid = engine.start("approval")
        engine.signal(wid, "approve")
        snap = kit.snapshot()
        assert snap["counters"]["workflow.started"] == 1
        spans = [
            span for span in kit.spans.export()
            if span["trace"] == "workflow"
        ]
        assert len(spans) == 1
