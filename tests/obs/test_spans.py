"""Span folding: event streams in, one record per transaction out."""

import io
import json

from repro.common.clock import LogicalClock
from repro.common.events import EventBus, EventKind
from repro.common.ids import ObjectId, Tid
from repro.obs import SpanBuilder


def _bus():
    return EventBus(LogicalClock())


class TestSpanLifecycle:
    def test_initiate_to_commit(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        start = bus.emit(EventKind.INITIATE, Tid(1)).tick
        bus.emit(EventKind.BEGIN, Tid(1))
        end = bus.emit(EventKind.COMMITTED, Tid(1)).tick
        (span,) = builder.export()
        assert span["trace"] == "local"
        assert span["tid"] == 1
        assert span["start"] == start
        assert span["end"] == end
        assert span["status"] == "committed"
        assert {"type": "begin", "tick": start + 1} in span["links"]

    def test_abort_records_reason(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(2))
        bus.emit(EventKind.ABORTED, Tid(2), reason="deadlock victim")
        (span,) = builder.export()
        assert span["status"] == "aborted"
        assert span["reason"] == "deadlock victim"

    def test_primitive_links(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(1))
        bus.emit(
            EventKind.DELEGATE, Tid(1), to=Tid(2), oids=(ObjectId(7),)
        )
        bus.emit(EventKind.PERMIT, Tid(1), receiver=Tid(3), oid=ObjectId(7))
        bus.emit(
            EventKind.FORM_DEPENDENCY, Tid(1), other=Tid(2), dep_type="CD"
        )
        (span,) = builder.export()
        types = [link["type"] for link in span["links"]]
        assert types == ["delegate", "permit", "dependency"]
        delegate, permit, dependency = span["links"]
        assert delegate["peer"] == 2 and delegate["oids"] == [7]
        assert permit["peer"] == 3 and permit["oid"] == 7
        assert dependency["peer"] == 2 and dependency["dep_type"] == "CD"

    def test_prepared_carries_gid(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(1))
        tick = bus.emit(EventKind.PREPARED, Tid(1), gid="g-42").tick
        bus.emit(EventKind.COMMITTED, Tid(1))
        (span,) = builder.export()
        assert span["prepared"] == tick
        assert span["gid"] == "g-42"

    def test_open_span_without_terminal(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(9))
        (span,) = builder.export()
        assert span["status"] == "open"
        assert span["end"] is None


class TestCorrelation:
    def test_default_correlation_is_trace_and_tid(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus, trace="alpha")
        bus.emit(EventKind.INITIATE, Tid(4))
        (span,) = builder.export()
        assert span["correlation"] == "alpha:4"

    def test_correlate_resolves_at_export_time(self):
        # A proxy's owner is learned after its INITIATE fires; only a
        # late (export-time) resolution can see it.
        bus = _bus()
        builder = SpanBuilder()
        owners = {}
        builder.subscribe_to(
            bus, trace="alpha", correlate=lambda tid: owners.get(tid)
        )
        bus.emit(EventKind.INITIATE, Tid(5))
        owners[Tid(5)] = "beta:1"
        (span,) = builder.export()
        assert span["correlation"] == "beta:1"

    def test_origin_msg_stamped_from_current_message(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus, trace="alpha")
        builder.current_message = ("alpha", 17, "beta", "delegate")
        bus.emit(EventKind.INITIATE, Tid(6))
        builder.current_message = None
        (span,) = builder.export()
        assert span["origin_msg"] == 17

    def test_origin_msg_ignores_other_sites_context(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus, trace="alpha")
        builder.current_message = ("beta", 17, "gamma", "delegate")
        bus.emit(EventKind.INITIATE, Tid(6))
        (span,) = builder.export()
        assert span["origin_msg"] is None

    def test_two_traces_one_builder(self):
        clock = LogicalClock()
        alpha, beta = EventBus(clock), EventBus(clock)
        builder = SpanBuilder()
        builder.subscribe_to(alpha, trace="alpha")
        builder.subscribe_to(beta, trace="beta")
        alpha.emit(EventKind.INITIATE, Tid(1))
        beta.emit(EventKind.INITIATE, Tid(1))
        spans = builder.export()
        assert [(s["trace"], s["tid"]) for s in spans] == [
            ("alpha", 1),
            ("beta", 1),
        ]
        # Shared clock: the export interleaves on one total order.
        assert spans[0]["start"] < spans[1]["start"]


class TestExport:
    def test_export_is_start_tick_ordered(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(2))
        bus.emit(EventKind.INITIATE, Tid(1))
        starts = [span["start"] for span in builder.export()]
        assert starts == sorted(starts)

    def test_export_jsonl_parses(self):
        bus = _bus()
        builder = SpanBuilder()
        builder.subscribe_to(bus)
        bus.emit(EventKind.INITIATE, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        handle = io.StringIO()
        assert builder.export_jsonl(handle) == 1
        lines = handle.getvalue().strip().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["status"] == "committed"
