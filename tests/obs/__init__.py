"""Tests for the observability layer (metrics, spans, wiring)."""
