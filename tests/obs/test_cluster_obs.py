"""Acceptance: a replayed cluster's spans match the ACTA history oracle.

One ``cluster_group_commit`` run carries three correlated witnesses —
the per-site ACTA history recorders, the span table, and the shared
logical clock.  The spans must tell the same story the histories do:
same start/terminal ticks per transaction, and the presumed-abort
group-commit ordering (every COMMITTED strictly after every PREPARED of
its group) visible across sites on the one clock.
"""

from repro.acta.history import HistoryRecorder
from repro.chaos.faults import FaultPlan
from repro.cluster import scenarios
from repro.cluster.sweep import run_cluster_plan
from repro.common.events import EventKind
from repro.obs import ObservabilityKit


def _observed_run(name):
    kit = ObservabilityKit()
    histories = {}

    def instrument(cluster):
        kit.attach_cluster(cluster)
        for site_name, site in cluster.sites.items():
            histories[site_name] = HistoryRecorder(site.manager)

    result = run_cluster_plan(
        scenarios.get(name), FaultPlan(), instrument=instrument
    )
    assert result.ok, result.describe()
    return kit, histories


class TestSpansMatchHistory:
    def test_group_commit_spans_agree_with_the_oracle(self):
        kit, histories = _observed_run("cluster_group_commit")
        spans = {(s["trace"], s["tid"]): s for s in kit.spans.export()}
        assert spans

        checked = 0
        for site, history in histories.items():
            initiated = {
                e.tid.value: e.tick
                for e in history.of_kind(EventKind.INITIATE)
            }
            terminals = {}
            for kind, status in (
                (EventKind.COMMITTED, "committed"),
                (EventKind.ABORTED, "aborted"),
            ):
                for event in history.of_kind(kind):
                    terminals[event.tid.value] = (event.tick, status)
            for tid_value, tick in initiated.items():
                span = spans[(site, tid_value)]
                assert span["start"] == tick
                if tid_value in terminals:
                    end_tick, status = terminals[tid_value]
                    assert span["end"] == end_tick
                    assert span["status"] == status
                    checked += 1
        assert checked >= 3

    def test_cross_site_group_ordering_on_the_shared_clock(self):
        kit, __ = _observed_run("cluster_group_commit")
        groups = {}
        for span in kit.spans.export():
            if span["gid"] is not None:
                groups.setdefault(span["gid"], []).append(span)
        assert groups, "the 2PC run must prepare at least one group"
        for gid, members in groups.items():
            committed = [s for s in members if s["status"] == "committed"]
            prepares = [s["prepared"] for s in members]
            assert committed, f"group {gid} never committed"
            # Presumed abort: no member's commit precedes any member's
            # prepare — across sites, on the one shared clock.
            assert min(s["end"] for s in committed) > max(prepares)
            # Group members span more than one site.
            assert len({s["trace"] for s in members}) >= 2

    def test_remote_driven_spans_carry_correlation_and_origin(self):
        kit, __ = _observed_run("cluster_group_commit")
        spans = kit.spans.export()
        # Proxies resolve to their owner's identity: some span's
        # correlation names a *different* site than its trace.
        foreign = [
            s
            for s in spans
            if not s["correlation"].startswith(s["trace"] + ":")
        ]
        assert foreign, "expected proxy spans correlated to their owners"
        assert any(s["origin_msg"] is not None for s in foreign)
        # All spans of one logical transaction share its correlation id.
        by_correlation = {}
        for span in spans:
            by_correlation.setdefault(span["correlation"], []).append(span)
        assert any(len(group) >= 2 for group in by_correlation.values())
