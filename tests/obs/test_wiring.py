"""Kit wiring: hooks, narrow subscriptions, and the grant watcher."""

import json

from repro.common.clock import LogicalClock
from repro.common.codec import decode_int, encode_int
from repro.common.events import EventBus, EventKind
from repro.common.ids import ObjectId, Tid
from repro.core.manager import TransactionManager
from repro.obs import (
    EventMetrics,
    MetricsRegistry,
    ObservabilityKit,
    install_observability,
)
from repro.runtime.coop import CooperativeRuntime


def _committed_batch(kit_wanted):
    """Run a tiny disjoint-increment batch; return (kit, commits)."""
    rt = CooperativeRuntime(TransactionManager(), seed=11)
    kit = install_observability(manager=rt.manager) if kit_wanted else None

    def setup(tx):
        created = []
        for i in range(4):
            created.append((yield tx.create(encode_int(0), name=f"o{i}")))
        return created

    oids = rt.run(setup).value

    def body_for(oid):
        def body(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        return body

    tids = [rt.spawn(body_for(oid)) for oid in oids]
    outcomes = rt.commit_all(tids)
    return kit, sum(outcomes.values())


class TestManagerWiring:
    def test_detached_manager_has_no_metrics(self):
        manager = TransactionManager()
        assert manager.metrics is None
        assert manager.storage.log.metrics is None

    def test_attached_manager_folds_the_run(self):
        kit, commits = _committed_batch(kit_wanted=True)
        assert commits == 4
        snap = kit.snapshot()
        # 5 = the 4-transaction batch plus the setup transaction.
        assert snap["counters"]["txn.committed"] == 5
        assert snap["counters"]["primitive.initiate.calls"] == 5
        assert snap["counters"]["wal.appends"] > 0
        assert snap["counters"]["wal.flushes"] > 0
        assert snap["histograms"]["primitive.initiate.ticks"]["count"] == 5
        assert snap["histograms"]["latency.commit_ticks"]["count"] == 5
        assert snap["histograms"]["txn.lifetime_ticks"]["count"] == 5
        assert snap["histograms"]["wal.append_bytes"]["count"] > 0

    def test_spans_cover_the_batch(self):
        kit, __ = _committed_batch(kit_wanted=True)
        spans = kit.spans.export()
        committed = [s for s in spans if s["status"] == "committed"]
        assert len(committed) == 5  # the batch plus the setup transaction
        for span in committed:
            assert span["end"] >= span["start"]
            assert span["correlation"] == f"local:{span['tid']}"

    def test_attach_manager_is_idempotent(self):
        manager = TransactionManager()
        kit = ObservabilityKit()
        kit.attach_manager(manager)
        kit.attach_manager(manager)
        manager.events.emit(EventKind.COMMITTED, Tid(1))
        assert kit.metrics.counter("txn.committed").value == 1

    def test_export_files_parse(self, tmp_path):
        kit, __ = _committed_batch(kit_wanted=True)
        metrics_path = tmp_path / "metrics.json"
        spans_path = tmp_path / "spans.jsonl"
        kit.write_metrics(metrics_path)
        assert kit.write_spans(spans_path) >= 5
        parsed = json.loads(metrics_path.read_text())
        assert parsed["counters"]["txn.committed"] == 5
        for line in spans_path.read_text().strip().splitlines():
            json.loads(line)


class TestGrantWatcher:
    """READ/WRITE grants stay unwatched except while someone is blocked."""

    def _wired(self):
        bus = EventBus(LogicalClock())
        registry = MetricsRegistry()
        fold = EventMetrics(registry, bus=bus)
        bus.subscribe(fold, kinds=EventMetrics.KINDS)
        return bus, registry, fold

    def test_grants_unwatched_at_rest(self):
        bus, __, ___ = self._wired()
        assert EventKind.READ_LOCK not in bus._watched
        assert EventKind.WRITE_LOCK not in bus._watched

    def test_block_grant_cycle_measures_and_unwires(self):
        bus, registry, __ = self._wired()
        bus.emit(EventKind.LOCK_BLOCKED, Tid(1), oid=ObjectId(3))
        assert EventKind.WRITE_LOCK in bus._watched
        bus.emit(EventKind.WRITE_LOCK, Tid(1), oid=ObjectId(3))
        blocked = registry.histogram("lock.blocked_ticks")
        assert blocked.count == 1
        assert blocked.total >= 1
        assert EventKind.WRITE_LOCK not in bus._watched

    def test_unrelated_grant_keeps_watching(self):
        bus, registry, __ = self._wired()
        bus.emit(EventKind.LOCK_BLOCKED, Tid(1), oid=ObjectId(3))
        bus.emit(EventKind.READ_LOCK, Tid(2), oid=ObjectId(9))
        assert registry.histogram("lock.blocked_ticks").count == 0
        assert EventKind.READ_LOCK in bus._watched

    def test_terminal_while_blocked_unwires(self):
        # A blocked transaction that dies (deadlock victim, watchdog
        # abort) never gets its grant; the watcher must not stay pinned.
        bus, registry, __ = self._wired()
        bus.emit(EventKind.LOCK_BLOCKED, Tid(1), oid=ObjectId(3))
        bus.emit(EventKind.ABORTED, Tid(1), reason="deadlock victim")
        assert registry.histogram("lock.blocked_ticks").count == 0
        assert EventKind.READ_LOCK not in bus._watched

    def test_contended_coop_run_measures_blocked_time(self):
        rt = CooperativeRuntime(TransactionManager(), seed=5)
        kit = install_observability(manager=rt.manager)

        def setup(tx):
            return (yield tx.create(encode_int(0), name="hot"))

        oid = rt.run(setup).value

        def body(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        tids = [rt.spawn(body) for __ in range(3)]
        outcomes = rt.commit_all(tids)
        assert sum(outcomes.values()) >= 1
        snap = kit.snapshot()
        assert snap["counters"].get("lock.blocked", 0) >= 1
        # The cycle completed: grants are unwatched again at rest.
        assert EventKind.READ_LOCK not in rt.manager.events._watched


class TestFabricAndCollectors:
    def test_fabric_counters_and_stats_gauges(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(sites=("alpha", "beta"))
        kit = ObservabilityKit()
        kit.attach_cluster(cluster)
        # A kind no handler claims: delivery happens, nothing replies.
        cluster.fabric.send("alpha", "beta", "obs_test_ping", {})
        cluster.fabric.pump_round()
        snap = kit.snapshot()
        assert snap["counters"]["fabric.sent{site=alpha}"] >= 1
        assert snap["counters"]["fabric.msg{kind=obs_test_ping}"] >= 1
        assert snap["counters"]["fabric.delivered{site=beta}"] >= 1
        assert snap["gauges"]["fabric.sent"] >= 1

    def test_attach_cluster_scopes_site_metrics(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(sites=("alpha", "beta"))
        kit = ObservabilityKit()
        kit.attach_cluster(cluster)
        for site in cluster.sites.values():
            assert site.obs is kit
            assert site.manager.metrics is not None
        cluster.sites["alpha"].manager.events.emit(
            EventKind.COMMITTED, Tid(1)
        )
        snap = kit.snapshot()
        assert snap["counters"]["txn.committed{site=alpha}"] == 1


class TestShardedWiring:
    def test_per_shard_wal_metrics_and_census_gauges(self):
        from repro.runtime.sharded import ShardedRuntime

        rt = ShardedRuntime(n_shards=4, seed=11)
        kit = install_observability(manager=rt.manager)

        def setup(tx):
            for index in range(8):
                yield tx.create(encode_int(index), name=f"sh{index}")

        assert rt.run(setup).committed

        # Every segment carries its own scoped view...
        for index, segment in enumerate(rt.manager.storage.log.segments):
            assert segment.metrics is not None
            assert segment.metrics.labels == {"shard": index}

        snap = kit.snapshot()
        shard_append_keys = [
            key
            for key in snap["counters"]
            if key.startswith("wal.appends{shard=")
        ]
        # ...and more than one shard actually appended (objects spread).
        assert len(shard_append_keys) > 1
        # The census collector mirrors per-segment rows as gauges.
        assert any(
            key.startswith("segment.appends{shard=")
            for key in snap["gauges"]
        )
        assert any(
            key.startswith("segment.objects{shard=")
            for key in snap["gauges"]
        )

    def test_manager_events_still_fold_for_sharded_runtime(self):
        from repro.runtime.sharded import ShardedRuntime

        rt = ShardedRuntime(n_shards=2, seed=7)
        kit = install_observability(manager=rt.manager)

        def body(tx):
            oid = yield tx.create(encode_int(0), name="c")
            yield tx.write(oid, encode_int(1))

        assert rt.run(body).committed
        snap = kit.snapshot()
        assert snap["counters"]["txn.committed"] >= 1
