"""The simulated fabric: deterministic delivery, per-step faults,
partitions, and site power cuts."""

import pytest

from repro.chaos.faults import NET_MSG, FaultInjector, FaultPlan
from repro.net import Message, NetworkFabric


def make_fabric(plan=None):
    injector = FaultInjector(plan=plan if plan is not None else FaultPlan())
    return NetworkFabric(injector=injector)


def wire(fabric, *names):
    logs = {}
    for name in names:
        log = logs[name] = []
        fabric.register(name, log.append)
    return logs


class TestDelivery:
    def test_send_enqueues_pump_delivers(self):
        fabric = make_fabric()
        logs = wire(fabric, "a", "b")
        msg = fabric.send("a", "b", "ping", {"n": 1})
        assert isinstance(msg, Message)
        assert logs["b"] == []  # send never delivers synchronously
        assert fabric.pump_round() == 1
        assert [m.kind for m in logs["b"]] == ["ping"]
        assert logs["b"][0].payload == {"n": 1}

    def test_handler_sends_land_next_round(self):
        fabric = make_fabric()
        received = []

        def ponger(msg):
            received.append(msg.kind)
            if msg.kind == "ping":
                fabric.send("b", "a", "pong")

        fabric.register("b", ponger)
        logs = wire(fabric, "a")
        fabric.send("a", "b", "ping")
        fabric.pump_round()
        assert received == ["ping"]
        assert logs["a"] == []  # the pong is queued, not delivered
        fabric.pump_round()
        assert [m.kind for m in logs["a"]] == ["pong"]

    def test_rounds_deliver_in_sorted_site_order(self):
        fabric = make_fabric()
        order = []
        for name in ("zeta", "alpha"):
            fabric.register(name, lambda m, n=name: order.append(n))
        fabric.send("zeta", "alpha", "x")
        fabric.send("alpha", "zeta", "y")
        fabric.pump_round()
        assert order == ["alpha", "zeta"]

    def test_pump_runs_until_quiescent(self):
        fabric = make_fabric()
        wire(fabric, "a")

        hops = []

        def relay(msg):
            hops.append(msg.payload["n"])
            if msg.payload["n"] < 3:
                fabric.send("b", "b", "hop", {"n": msg.payload["n"] + 1})

        fabric.register("b", relay)
        fabric.send("a", "b", "hop", {"n": 0})
        fabric.pump()
        assert hops == [0, 1, 2, 3]
        assert fabric.pending() == 0

    def test_unregistered_destination_is_a_drop(self):
        fabric = make_fabric()
        wire(fabric, "a")
        fabric.send("a", "ghost", "ping")
        assert fabric.pending() == 0
        assert fabric.stats["dropped"] == 1


class TestPlannedFaults:
    def test_drop_at_step(self):
        plan = FaultPlan(drop_msg_at={1})
        fabric = make_fabric(plan)
        logs = wire(fabric, "a", "b")
        fabric.send("a", "b", "first")  # step 1: dropped
        fabric.send("a", "b", "second")  # step 2: delivered
        fabric.pump()
        assert [m.kind for m in logs["b"]] == ["second"]
        assert fabric.stats["dropped"] == 1

    def test_duplicate_at_step(self):
        fabric = make_fabric(FaultPlan(dup_msg_at={1}))
        logs = wire(fabric, "a", "b")
        fabric.send("a", "b", "once")
        fabric.pump()
        assert [m.kind for m in logs["b"]] == ["once", "once"]
        assert fabric.stats["duplicated"] == 1

    def test_delay_slips_one_round(self):
        fabric = make_fabric(FaultPlan(delay_msg_at={1}))
        logs = wire(fabric, "a", "b")
        fabric.send("a", "b", "late")
        fabric.send("a", "b", "ontime")
        fabric.pump_round()
        assert [m.kind for m in logs["b"]] == ["ontime"]
        fabric.pump_round()
        assert [m.kind for m in logs["b"]] == ["ontime", "late"]

    def test_message_steps_are_recorded_for_sweeps(self):
        fabric = make_fabric()
        wire(fabric, "a", "b")
        fabric.send("a", "b", "ping")
        fabric.send("b", "a", "pong")
        steps = [
            step for step in fabric.injector.trace if step.kind == NET_MSG
        ]
        assert [step.detail for step in steps] == ["a->b:ping", "b->a:pong"]
        assert [step.number for step in steps] == [1, 2]


class TestPartitions:
    def test_partition_severs_cross_group_links(self):
        fabric = make_fabric()
        logs = wire(fabric, "a", "b", "c")
        fabric.partition((("a",), ("b", "c")))
        fabric.send("a", "b", "cross")  # severed
        fabric.send("b", "c", "within")  # same group
        fabric.pump()
        assert logs["b"] == []
        assert [m.kind for m in logs["c"]] == ["within"]
        assert fabric.stats["partition_drops"] == 1

    def test_outsiders_reach_everyone(self):
        # The console ("client") is in no group: it models the driver,
        # not a network participant.
        fabric = make_fabric()
        logs = wire(fabric, "a", "b", "client")
        fabric.partition((("a",), ("b",)))
        fabric.send("client", "a", "rpc")
        fabric.send("b", "client", "reply")
        fabric.pump()
        assert [m.kind for m in logs["a"]] == ["rpc"]
        assert [m.kind for m in logs["client"]] == ["reply"]

    def test_heal_restores_links(self):
        fabric = make_fabric()
        logs = wire(fabric, "a", "b")
        fabric.partition((("a",), ("b",)))
        fabric.send("a", "b", "lost")
        fabric.heal()
        fabric.send("a", "b", "found")
        fabric.pump()
        assert [m.kind for m in logs["b"]] == ["found"]

    def test_planned_partition_installs_and_heals_by_step(self):
        plan = FaultPlan(
            partition_at=2, heal_at=4, partition_groups=(("a",), ("b",))
        )
        fabric = make_fabric(plan)
        logs = wire(fabric, "a", "b")
        fabric.send("a", "b", "before")  # step 1: clean
        fabric.send("a", "b", "during")  # step 2: partition installs
        fabric.send("a", "b", "still")  # step 3: still severed
        fabric.send("a", "b", "after")  # step 4: heals
        fabric.pump()
        assert [m.kind for m in logs["b"]] == ["before", "after"]
        assert fabric.stats["partition_drops"] == 2


class TestSiteCrash:
    def test_down_site_loses_inbox_and_traffic(self):
        fabric = make_fabric()
        logs = wire(fabric, "a", "b")
        fabric.send("a", "b", "queued")
        fabric.mark_down("b")  # the queued message was in kernel buffers
        fabric.send("a", "b", "while_down")
        fabric.pump()
        assert logs["b"] == []
        assert fabric.stats["dropped"] == 2
        fabric.mark_up("b")
        fabric.send("a", "b", "after")
        fabric.pump()
        assert [m.kind for m in logs["b"]] == ["after"]

    def test_planned_site_crash_fires_hook_once(self):
        plan = FaultPlan(site_crash_at=("b", 2))
        fabric = make_fabric(plan)
        wire(fabric, "a", "b")
        crashed = []
        fabric.crash_hook = crashed.append
        fabric.send("a", "b", "one")
        fabric.send("a", "b", "two")  # step 2: power cut
        fabric.send("a", "b", "three")
        assert crashed == ["b"]


class TestDeterminism:
    def test_identical_runs_identical_logs(self):
        def run():
            fabric = make_fabric(FaultPlan(drop_msg_at={2}, dup_msg_at={4}))
            wire(fabric, "a", "b")
            for n in range(6):
                fabric.send("a", "b", f"m{n}")
            fabric.pump()
            return fabric.delivery_log, fabric.stats

    # Two fresh fabrics under the same plan must behave identically —
    # that is what makes a fault plan a reproduction recipe.
        first, second = run(), run()
        assert first == second


@pytest.mark.parametrize("bad", ["drop", "duplicate", "delay"])
def test_link_state_overrides_injector_verdict(bad):
    field = {
        "drop": "drop_msg_at",
        "duplicate": "dup_msg_at",
        "delay": "delay_msg_at",
    }[bad]
    fabric = make_fabric(FaultPlan(**{field: {1}}))
    wire(fabric, "a", "b")
    fabric.mark_down("b")
    fabric.send("a", "b", "x")
    # A down destination wins over whatever the plan wanted.
    assert fabric.delivery_log[-1][4] == "drop"
