"""EX9: the appendix X_conference program, literal and declarative."""

import pytest

from repro.runtime.coop import CooperativeRuntime
from repro.runtime.threaded import ThreadedRuntime
from repro.workflow.engine import TaskStatus, WorkflowEngine
from repro.workflow.travel import (
    AIRLINES,
    TravelAgency,
    build_x_conference_spec,
    x_conference,
)


def fresh(availability=None, seed=11):
    rt = CooperativeRuntime(seed=seed)
    return rt, TravelAgency(rt, availability=availability)


class TestLiteralProgram:
    def test_happy_path_books_delta(self):
        rt, agency = fresh()
        assert x_conference(rt, agency) == 1
        assert agency.availability("Delta") == 4
        assert agency.availability("United") == 5  # untouched
        assert agency.availability("Equator") == 4

    def test_airline_preference_order(self):
        rt, agency = fresh({"Delta": 0})
        assert x_conference(rt, agency) == 1
        assert agency.availability("United") == 4

        rt, agency = fresh({"Delta": 0, "United": 0})
        assert x_conference(rt, agency) == 1
        assert agency.availability("American") == 4

    def test_no_flight_fails_activity(self):
        rt, agency = fresh({a: 0 for a in AIRLINES})
        assert x_conference(rt, agency) == 0
        assert agency.availability("Equator") == 5  # hotel never tried

    def test_no_hotel_compensates_flight(self):
        rt, agency = fresh({"Equator": 0})
        assert x_conference(rt, agency) == 0
        assert agency.availability("Delta") == 5  # cancelled
        assert agency.bookings("Delta") == []

    def test_exactly_one_car_wins_race(self):
        rt, agency = fresh()
        assert x_conference(rt, agency) == 1
        booked = (5 - agency.availability("National")) + (
            5 - agency.availability("Avis")
        )
        assert booked == 1

    def test_no_cars_still_succeeds(self):
        """'If a car cannot be rented, the trip can still proceed.'"""
        rt, agency = fresh({"National": 0, "Avis": 0})
        assert x_conference(rt, agency) == 1

    def test_inventory_exhaustion_over_repeated_trips(self):
        rt, agency = fresh({"Delta": 1, "United": 1, "American": 1})
        assert x_conference(rt, agency) == 1
        assert x_conference(rt, agency) == 1
        assert x_conference(rt, agency) == 1
        assert x_conference(rt, agency) == 0  # all airlines sold out

    def test_booking_records_dates(self):
        rt, agency = fresh()
        x_conference(rt, agency, d1="7/1/1994", d2="7/4/1994")
        assert agency.bookings("Delta") == [["7/1/1994", "7/4/1994"]]


class TestDeclarativeSpec:
    def test_engine_matches_literal_semantics(self):
        rt, agency = fresh({"Delta": 0})
        result = WorkflowEngine(rt).execute(build_x_conference_spec(agency))
        assert result.success
        assert result.outcomes["flight"].label == "United"
        assert result.outcomes["hotel"].status is TaskStatus.COMMITTED
        assert result.outcomes["car"].status is TaskStatus.COMMITTED

    def test_engine_compensates_flight_on_hotel_failure(self):
        rt, agency = fresh({"Equator": 0})
        result = WorkflowEngine(rt).execute(build_x_conference_spec(agency))
        assert not result.success
        assert result.status_of("flight") is TaskStatus.COMPENSATED
        assert agency.availability("Delta") == 5

    def test_engine_car_failure_is_optional(self):
        rt, agency = fresh({"National": 0, "Avis": 0})
        result = WorkflowEngine(rt).execute(build_x_conference_spec(agency))
        assert result.success
        assert result.status_of("car") is TaskStatus.FAILED


class TestOnThreadedRuntime:
    def test_literal_program_runs_on_threads(self):
        rt = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=0.005)
        try:
            agency = TravelAgency(rt, availability={"Delta": 1})
            assert x_conference(rt, agency) == 1
            assert agency.availability("Delta") == 0
        finally:
            rt.close()
