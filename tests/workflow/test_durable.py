"""The durable workflow engine: protocol, persistence, recovery.

Unit-level companion to the chaos sweeps in
``tests/chaos/test_workflow_crash.py``: no fault injection here, just
the start/resume/cancel/signal/status protocol, the durable record
stream it leaves behind, and engine hand-over — a second engine built
over the same storage must ``recover()`` the first one's in-flight
executions and finish them.
"""

import pytest

from repro.chaos.oracles import analyze_log
from repro.common.codec import decode_int, encode_int
from repro.common.errors import AssetError
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime
from repro.workflow.definition import DefinitionRegistry, WorkflowDefinition
from repro.workflow.durable import (
    DurableWorkflowEngine,
    ExecutionLeaseBoard,
    _WaitToken,
)
from repro.workflow.engine import TaskStatus
from repro.workflow.execution import ExecutionStatus, fold_all
from repro.workflow.records import (
    FINISHED,
    STARTED,
    STEP_ATTEMPT,
    workflow_records,
)
from repro.workflow.spec import WorkflowSpec


def _set_value(tx, oid, value):
    yield tx.write(oid, encode_int(value))
    return value


def _make_oids(runtime, names):
    def setup(tx):
        oids = {}
        for name in names:
            oids[name] = yield tx.create(encode_int(0), name=name)
        return oids

    result = runtime.run(setup)
    assert result.committed
    return result.value


def _value(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    return runtime.run(body).value


def _approval_definition(name, oids, timeout=None, on_timeout="fail"):
    """place → (wait "approve") → confirm; place is compensable."""
    spec = WorkflowSpec(name=f"{name}_spec")
    place = spec.task("place")
    place.alternative(_set_value, args=(oids["order"], 1), label="place")
    place.compensate_with(_set_value, args=(oids["order"], 0))
    confirm = spec.task("confirm", depends_on=("place",))
    confirm.alternative(_set_value, args=(oids["audit"], 1), label="confirm")
    return WorkflowDefinition(name, spec).wait_for(
        "confirm", "approve", timeout=timeout, on_timeout=on_timeout
    )


def _engine(runtime, *definitions):
    registry = DefinitionRegistry()
    for definition in definitions:
        registry.register(definition)
    return DurableWorkflowEngine(runtime, registry)


def _handover(engine):
    """A fresh manager/runtime/engine over the same storage, recovered."""
    storage = engine.runtime.manager.storage
    runtime = CooperativeRuntime(TransactionManager(storage=storage))
    successor = DurableWorkflowEngine(runtime, engine.registry)
    return successor, successor.recover()


class TestProtocol:
    def test_straight_line_completes(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        spec = WorkflowSpec(name="line")
        spec.task("a").alternative(_set_value, args=(oids["order"], 1))
        spec.task("b", depends_on=("a",)).alternative(
            _set_value, args=(oids["audit"], 2)
        )
        engine = _engine(rt, WorkflowDefinition("line", spec))
        wid = engine.start("line")
        assert engine.status(wid) is ExecutionStatus.COMPLETED
        assert _value(rt, oids["order"]) == 1
        assert _value(rt, oids["audit"]) == 2
        assert engine.stats["started"] == 1
        assert engine.stats["completed"] == 1
        assert engine.stats["steps_committed"] == 2

    def test_record_stream(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        spec = WorkflowSpec(name="line")
        spec.task("a").alternative(_set_value, args=(oids["order"], 1))
        engine = _engine(rt, WorkflowDefinition("line", spec))
        wid = engine.start("line")
        kinds = [
            record.kind
            for record in workflow_records(
                engine.storage.log.records(), wid=wid
            )
        ]
        assert kinds == [STARTED, STEP_ATTEMPT, FINISHED]

    def test_unknown_definition_rejected(self, rt):
        engine = _engine(rt)
        with pytest.raises(AssetError):
            engine.start("ghost")

    def test_duplicate_wid_rejected(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        spec = WorkflowSpec(name="line")
        spec.task("a").alternative(_set_value, args=(oids["order"], 1))
        engine = _engine(rt, WorkflowDefinition("line", spec))
        wid = engine.start("line", wid=7)
        with pytest.raises(AssetError, match="already exists"):
            engine.start("line", wid=wid)

    def test_unknown_wid_rejected(self, rt):
        engine = _engine(rt)
        with pytest.raises(AssetError, match="unknown"):
            engine.status(99)


class TestSignals:
    def test_park_then_deliver(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        assert engine.status(wid) is ExecutionStatus.WAITING_SIGNAL
        assert engine.execution(wid).waiting_signal == "approve"
        assert _value(rt, oids["order"]) == 1  # place committed
        assert _value(rt, oids["audit"]) == 0  # confirm parked
        assert engine.signal(wid, "approve", "qa") is (
            ExecutionStatus.COMPLETED
        )
        assert _value(rt, oids["audit"]) == 1
        assert engine.execution(wid).signals["approve"] == "qa"

    def test_signal_without_resume(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        status = engine.signal(wid, "approve", resume=False)
        assert status is ExecutionStatus.RUNNING
        assert engine.resume(wid) is ExecutionStatus.COMPLETED

    def test_unrelated_signal_keeps_waiting(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        assert engine.signal(wid, "noise") is ExecutionStatus.WAITING_SIGNAL
        # The noise is still durably remembered for later waits.
        assert "noise" in engine.execution(wid).signals

    def test_pre_delivered_signal_never_parks(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        definition = _approval_definition("approval", oids)
        spec = definition.spec
        engine = _engine(rt, definition)
        # Deliver before the wait is reached: start a wid, signal it
        # while parked is the normal path; instead fold the signal in
        # first by starting, signalling, and checking a *second* run of
        # the same definition still parks (signals are per-execution).
        first = engine.start("approval")
        engine.signal(first, "approve")
        second = engine.start("approval")
        assert engine.status(second) is ExecutionStatus.WAITING_SIGNAL
        assert spec is definition.spec  # definition untouched by runs


class TestTimersAndCancel:
    def test_timeout_fail_compensates(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(
            rt, _approval_definition("approval", oids, timeout=25)
        )
        wid = engine.start("approval")
        assert engine.expire_wait(wid) is ExecutionStatus.COMPENSATED
        assert _value(rt, oids["order"]) == 0  # place compensated
        assert _value(rt, oids["audit"]) == 0
        assert engine.execution(wid).status_of("place") is (
            TaskStatus.COMPENSATED
        )
        assert engine.stats["timeouts"] == 1

    def test_timeout_skip_continues(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(
            rt,
            _approval_definition(
                "approval", oids, timeout=25, on_timeout="skip"
            ),
        )
        wid = engine.start("approval")
        assert engine.expire_wait(wid) is ExecutionStatus.COMPLETED
        assert engine.execution(wid).status_of("confirm") is (
            TaskStatus.SKIPPED
        )
        assert _value(rt, oids["order"]) == 1  # place survives
        assert _value(rt, oids["audit"]) == 0  # confirm never ran

    def test_expire_without_timeout_rejected(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        with pytest.raises(AssetError, match="no"):
            engine.expire_wait(wid)

    def test_cancel_parked_run(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        assert engine.cancel(wid) is ExecutionStatus.CANCELLED
        assert _value(rt, oids["order"]) == 0  # place undone
        # The wait's timer is gone with the execution.
        assert engine.deadlines.deadline_of(_WaitToken(wid)) is None

    def test_cancel_terminal_is_noop(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        engine.signal(wid, "approve")
        assert engine.cancel(wid) is ExecutionStatus.COMPLETED
        assert _value(rt, oids["audit"]) == 1


class TestHandover:
    """A successor engine over the same storage picks up the pieces."""

    def test_recover_parked_and_finish(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        successor, recovered = _handover(engine)
        assert recovered == [wid]
        image = successor.execution(wid)
        assert image.status is ExecutionStatus.WAITING_SIGNAL
        assert image.waiting_signal == "approve"
        assert image.status_of("place") is TaskStatus.COMMITTED
        status = successor.signal(wid, "approve")
        assert status is ExecutionStatus.COMPLETED
        assert _value(successor.runtime, oids["audit"]) == 1

    def test_recover_rearms_timer(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(
            rt, _approval_definition("approval", oids, timeout=30)
        )
        wid = engine.start("approval")
        successor, __ = _handover(engine)
        assert successor.deadlines.deadline_of(_WaitToken(wid)) is not None
        assert successor.expire_wait(wid) is ExecutionStatus.COMPENSATED
        assert _value(successor.runtime, oids["order"]) == 0

    def test_recover_skips_terminal(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        engine.signal(wid, "approve")
        successor, recovered = _handover(engine)
        assert recovered == []
        assert successor.status(wid) is ExecutionStatus.COMPLETED

    def test_recovered_signal_not_redelivered(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        engine.signal(wid, "approve", "qa", resume=False)
        successor, recovered = _handover(engine)
        assert recovered == [wid]
        image = successor.execution(wid)
        assert image.status is ExecutionStatus.RUNNING
        assert image.signals["approve"] == "qa"
        assert successor.resume(wid) is ExecutionStatus.COMPLETED

    def test_wid_allocation_resumes_past_recovered(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        engine.start("approval", wid=5)
        successor, __ = _handover(engine)
        assert successor.start("approval") == 6


class TestFoldOracle:
    def test_fold_agrees_with_live_engine(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(rt, _approval_definition("approval", oids))
        wid = engine.start("approval")
        engine.signal(wid, "approve", "qa")
        log_records = list(engine.storage.log.records())
        winners = {
            getattr(tid, "value", tid)
            for tid in analyze_log(log_records).winners
        }
        folded = fold_all(log_records, winners)[wid]
        live = engine.execution(wid)
        assert folded.status is live.status
        assert folded.signals == live.signals
        for name, state in live.steps.items():
            assert folded.status_of(name) is state.status
            assert folded.step(name).tid_value == state.tid_value

    def test_fold_sees_compensations(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        engine = _engine(
            rt, _approval_definition("approval", oids, timeout=25)
        )
        wid = engine.start("approval")
        engine.expire_wait(wid)
        log_records = list(engine.storage.log.records())
        winners = {
            getattr(tid, "value", tid)
            for tid in analyze_log(log_records).winners
        }
        folded = fold_all(log_records, winners)[wid]
        assert folded.status is ExecutionStatus.COMPENSATED
        assert folded.status_of("place") is TaskStatus.COMPENSATED


class TestExecutionLeases:
    """Workflow-level ownership leases: the coordinator-lease analogue.

    Two engine instances over one storage stack share an
    ``ExecutionLeaseBoard``; whoever drives an execution heartbeats its
    lease through durable progress, a rival may claim it only after the
    lease lapses, and a takeover re-reads the durable log so the new
    owner never drives a stale image.
    """

    def _pair(self, rt, oids, lease=16):
        board = ExecutionLeaseBoard(rt.manager.clock)
        registry = DefinitionRegistry()
        registry.register(_approval_definition("approval", oids))
        first = DurableWorkflowEngine(
            rt, registry, owner="first", leases=board,
            execution_lease=lease,
        )
        # Same storage, same clock: a rival engine on the same site.
        runtime = CooperativeRuntime(
            TransactionManager(
                storage=rt.manager.storage, clock=rt.manager.clock
            )
        )
        second = DurableWorkflowEngine(
            runtime, registry, owner="second", leases=board,
            execution_lease=lease,
        )
        return board, first, second

    def test_live_lease_blocks_double_resume(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        board, first, second = self._pair(rt, oids)
        wid = first.start("approval")
        assert first.status(wid) is ExecutionStatus.WAITING_SIGNAL
        assert board.owner_of(wid) == "first"
        assert board.live(wid)
        recovered = second.recover()
        assert recovered == [wid]
        # The double-resume regression: while the owner's lease is
        # live, a rival recovery must be refused, not raced.
        with pytest.raises(AssetError, match="live lease"):
            second.signal(wid, "approve")
        with pytest.raises(AssetError, match="live lease"):
            second.cancel(wid)
        # resume() on a parked run is a no-op before it ever claims.
        assert second.resume(wid) is ExecutionStatus.WAITING_SIGNAL
        assert board.owner_of(wid) == "first"
        assert second.status(wid) is ExecutionStatus.WAITING_SIGNAL
        # The refused rival wrote nothing durable: the owner still
        # drives its execution to completion untroubled.
        assert first.signal(wid, "approve") is ExecutionStatus.COMPLETED

    def test_lapsed_lease_is_taken_over(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        board, first, second = self._pair(rt, oids, lease=16)
        wid = first.start("approval")
        second.recover()
        # The first engine goes quiet; its lease runs out.
        rt.manager.clock.tick(17)
        assert not board.live(wid)
        status = second.signal(wid, "approve")
        assert status is ExecutionStatus.COMPLETED
        assert board.owner_of(wid) == "second"
        assert _value(second.runtime, oids["audit"]) == 1
        # Exactly one confirm attempt across both engines: the takeover
        # resumed the run, it did not re-execute it.
        attempts = [
            record
            for record in workflow_records(
                second.storage.log.records(), wid=wid
            )
            if record.kind == STEP_ATTEMPT
        ]
        assert len(attempts) == 2  # place (first) + confirm (second)

    def test_stale_owner_adopts_durable_truth(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        board, first, second = self._pair(rt, oids, lease=16)
        wid = first.start("approval")
        second.recover()
        rt.manager.clock.tick(17)
        assert second.signal(wid, "approve") is ExecutionStatus.COMPLETED
        # A terminal run's lease is released, so the original owner's
        # late signal is not refused — but its claim notices the board
        # changed hands and re-folds the durable log first: the stale
        # parked image is replaced by the finished one, and the signal
        # lands on a terminal run and changes nothing.
        assert first.status(wid) is ExecutionStatus.WAITING_SIGNAL  # stale
        assert first.signal(wid, "approve") is ExecutionStatus.COMPLETED
        assert first.status(wid) is ExecutionStatus.COMPLETED
        finishes = [
            record
            for record in workflow_records(
                first.storage.log.records(), wid=wid
            )
            if record.kind == FINISHED
        ]
        assert len(finishes) == 1

    def test_owner_heartbeat_keeps_rivals_out(self, rt):
        oids = _make_oids(rt, ("order", "audit"))
        board, first, second = self._pair(rt, oids, lease=16)
        wid = first.start("approval")
        second.recover()
        for _ in range(4):
            rt.manager.clock.tick(10)
            # Durable progress (here: a non-resuming signal delivery)
            # doubles as the heartbeat, so the lease never lapses even
            # though far more than one budget of ticks has passed.
            first.signal(wid, "noise", resume=False)
            assert board.live(wid)
            with pytest.raises(AssetError, match="live lease"):
                second.cancel(wid)
        assert first.signal(wid, "approve") is ExecutionStatus.COMPLETED
