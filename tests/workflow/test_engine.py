"""The workflow engine: alternatives, races, compensation, dependencies."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.workflow.engine import TaskStatus, WorkflowEngine
from repro.workflow.spec import WorkflowSpec


@pytest.fixture
def engine(rt):
    return WorkflowEngine(rt)


class TestSequentialAlternatives:
    def test_preference_order(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec("prefs")
        task = spec.task("choice")
        task.alternative(incrementer(oids[0], fail=True), label="first")
        task.alternative(incrementer(oids[1]), label="second")
        result = engine.execute(spec)
        assert result.success
        assert result.outcomes["choice"].label == "second"
        assert read_counter(rt, oids[1]) == 1

    def test_value_captured(self, rt, engine):
        [oid] = make_counters(rt, 1)
        spec = WorkflowSpec()
        spec.task("inc").alternative(incrementer(oid, delta=7))
        result = engine.execute(spec)
        assert result.outcomes["inc"].value == 7


class TestOptionalAndDependencies:
    def _spec(self, rt, first_fails, optional_second):
        oids = make_counters(rt, 3)
        spec = WorkflowSpec()
        spec.task("first").alternative(
            incrementer(oids[0], fail=first_fails)
        )
        spec.task(
            "second", optional=optional_second, depends_on=("first",)
        ).alternative(incrementer(oids[1]))
        spec.task("third", depends_on=("first",)).alternative(
            incrementer(oids[2])
        )
        return spec, oids

    def test_required_failure_fails_workflow(self, rt, engine):
        spec, oids = self._spec(rt, first_fails=True, optional_second=False)
        result = engine.execute(spec)
        assert not result.success
        assert result.status_of("first") is TaskStatus.FAILED

    def test_dependent_of_failed_task_skipped(self, rt, engine):
        spec, oids = self._spec(rt, first_fails=True, optional_second=True)
        result = engine.execute(spec)
        assert not result.success  # "third" is required and skipped
        assert result.status_of("second") is TaskStatus.SKIPPED
        assert read_counter(rt, oids[1]) == 0

    def test_optional_failure_does_not_fail_workflow(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec()
        spec.task("maybe", optional=True).alternative(
            incrementer(oids[0], fail=True)
        )
        spec.task("must").alternative(incrementer(oids[1]))
        result = engine.execute(spec)
        assert result.success
        assert result.status_of("maybe") is TaskStatus.FAILED
        assert result.status_of("must") is TaskStatus.COMMITTED


class TestCompensation:
    def test_reverse_order_compensation(self, rt, engine):
        oids = make_counters(rt, 3)
        spec = WorkflowSpec()
        spec.task("a").alternative(incrementer(oids[0])).compensate_with(
            incrementer(oids[0], delta=-1)
        )
        spec.task("b").alternative(incrementer(oids[1])).compensate_with(
            incrementer(oids[1], delta=-1)
        )
        spec.task("c").alternative(incrementer(oids[2], fail=True))
        result = engine.execute(spec)
        assert not result.success
        assert result.compensation_order == ["b", "a"]
        assert result.status_of("a") is TaskStatus.COMPENSATED
        assert result.status_of("b") is TaskStatus.COMPENSATED
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_task_without_compensation_left_committed(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec()
        spec.task("keep").alternative(incrementer(oids[0]))  # no comp
        spec.task("fail").alternative(incrementer(oids[1], fail=True))
        result = engine.execute(spec)
        assert not result.success
        assert result.status_of("keep") is TaskStatus.COMMITTED
        assert read_counter(rt, oids[0]) == 1


class TestRace:
    def test_winner_commits_losers_abort(self, rt, engine):
        oids = make_counters(rt, 3)
        spec = WorkflowSpec()
        task = spec.task("race", race=True)
        for index, oid in enumerate(oids):
            task.alternative(incrementer(oid), label=f"r{index}")
        result = engine.execute(spec)
        assert result.success
        total = sum(read_counter(rt, oid) for oid in oids)
        assert total == 1  # exactly one racer's effect persists

    def test_race_with_failing_entrants(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec()
        task = spec.task("race", race=True)
        task.alternative(incrementer(oids[0], fail=True), label="bad")
        task.alternative(incrementer(oids[1]), label="good")
        result = engine.execute(spec)
        assert result.success
        assert result.outcomes["race"].label == "good"

    def test_race_all_fail(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec()
        task = spec.task("race", race=True)
        for oid in oids:
            task.alternative(incrementer(oid, fail=True))
        result = engine.execute(spec)
        assert not result.success
        assert result.status_of("race") is TaskStatus.FAILED


class TestRaceLoserLeak:
    """Regression: a loser whose abort keeps failing must not leak.

    The engine used to call ``runtime.abort(loser)`` bare; a transient
    device fault left the loser holding its locks forever.  Now the
    abort runs under the engine's retry policy and an exhausted budget
    hands the loser to the watchdog as an already-expired orphan.
    """

    def _race_spec(self, rt):
        oids = make_counters(rt, 3)
        spec = WorkflowSpec()
        task = spec.task("race", race=True)
        for index, oid in enumerate(oids):
            task.alternative(incrementer(oid), label=f"r{index}")
        return spec

    def test_failing_abort_records_orphan(self, rt, monkeypatch):
        from repro.common.errors import TransientIOError

        engine = WorkflowEngine(rt)
        spec = self._race_spec(rt)

        def failing_abort(tid):
            raise TransientIOError("abort device glitch")

        monkeypatch.setattr(rt, "abort", failing_abort)
        result = engine.execute(spec)
        assert result.success  # the winner still commits
        assert engine.orphaned  # ... and the losers are accounted for

    def test_orphans_handed_to_watchdog(self, rt, monkeypatch):
        from repro.common.errors import TransientIOError
        from repro.resilience.deadlines import DeadlineTable
        from repro.resilience.watchdog import Watchdog

        table = DeadlineTable(rt.manager.clock)
        watchdog = Watchdog(rt.manager, table)
        engine = WorkflowEngine(rt, watchdog=watchdog)
        spec = self._race_spec(rt)

        def failing_abort(tid):
            raise TransientIOError("abort device glitch")

        monkeypatch.setattr(rt, "abort", failing_abort)
        result = engine.execute(spec)
        assert result.success
        assert engine.orphaned
        # Every orphan sits in the watchdog's table, already expired,
        # so the next scan reaps it instead of leaking its locks.
        for tid in engine.orphaned:
            deadline = table.deadline_of(tid)
            assert deadline is not None
            assert deadline <= rt.manager.clock.peek()

    def test_retry_rescues_a_flaky_abort(self, rt):
        from repro.common.errors import TransientIOError
        from repro.resilience import RetryPolicy

        engine = WorkflowEngine(
            rt, retry=RetryPolicy(max_attempts=3, clock=rt.manager.clock)
        )
        spec = self._race_spec(rt)
        real_abort = rt.abort
        calls = {"n": 0}

        def flaky_abort(tid):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientIOError("first abort attempt glitches")
            return real_abort(tid)

        rt.abort = flaky_abort
        result = engine.execute(spec)
        assert result.success
        assert not engine.orphaned  # the retry absorbed the glitch
