"""The parallel workflow engine: overlapping independent tasks."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.acta.history import HistoryRecorder
from repro.common.codec import decode_int, encode_int
from repro.common.events import EventKind
from repro.workflow.engine import TaskStatus, WorkflowEngine
from repro.workflow.spec import WorkflowSpec
from repro.workflow.travel import TravelAgency, build_x_conference_spec


@pytest.fixture
def engine(rt):
    return WorkflowEngine(rt, parallel=True)


class TestEquivalence:
    def test_same_outcomes_as_sequential(self, rt):
        oids = make_counters(rt, 4)

        def build():
            spec = WorkflowSpec("par")
            spec.task("a").alternative(incrementer(oids[0]), label="a0")
            spec.task("b").alternative(incrementer(oids[1], fail=True))
            spec.task("b2", depends_on=("a",)).alternative(
                incrementer(oids[2])
            )
            return spec

        # "b" is required and fails: both engines must fail the workflow.
        sequential = WorkflowEngine(rt).execute(build())
        parallel = WorkflowEngine(rt, parallel=True).execute(build())
        assert not sequential.success and not parallel.success

    def test_travel_spec_runs_in_parallel_mode(self):
        from repro.runtime.coop import CooperativeRuntime

        rt = CooperativeRuntime(seed=10)
        agency = TravelAgency(rt, availability={"Delta": 1})
        result = WorkflowEngine(rt, parallel=True).execute(
            build_x_conference_spec(agency)
        )
        assert result.success
        assert agency.availability("Delta") == 0
        cars = (5 - agency.availability("National")) + (
            5 - agency.availability("Avis")
        )
        assert cars == 1


class TestOverlap:
    def test_independent_tasks_interleave(self, rt):
        """With parallel=True, two independent tasks' transactions are
        both live before either commits (verified from the history)."""
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 2)

        def slow(oid):
            def body(tx):
                for __ in range(3):
                    value = decode_int((yield tx.read(oid)))
                    yield tx.write(oid, encode_int(value + 1))

            return body

        spec = WorkflowSpec("overlap")
        spec.task("left").alternative(slow(oids[0]))
        spec.task("right").alternative(slow(oids[1]))
        result = WorkflowEngine(rt, parallel=True).execute(spec)
        assert result.success

        begins = {}
        commits = {}
        for event in recorder.events:
            if event.kind is EventKind.BEGIN:
                begins[event.tid] = event.tick
            elif event.kind is EventKind.COMMITTED:
                commits[event.tid] = event.tick
        left = result.outcomes["left"].tid
        right = result.outcomes["right"].tid
        # Both began before either committed: genuine overlap.
        assert begins[left] < commits[right]
        assert begins[right] < commits[left]

    def test_sequential_engine_does_not_overlap(self, rt):
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 2)
        spec = WorkflowSpec("seq")
        spec.task("left").alternative(incrementer(oids[0]))
        spec.task("right").alternative(incrementer(oids[1]))
        result = WorkflowEngine(rt).execute(spec)
        assert result.success
        begins = {}
        commits = {}
        for event in recorder.events:
            if event.kind is EventKind.BEGIN:
                begins[event.tid] = event.tick
            elif event.kind is EventKind.COMMITTED:
                commits[event.tid] = event.tick
        left = result.outcomes["left"].tid
        right = result.outcomes["right"].tid
        assert commits[left] < begins[right]


class TestParallelSemantics:
    def test_dependencies_still_ordered(self, rt, engine):
        order = []
        oids = make_counters(rt, 2)

        def tracer(name, oid):
            def body(tx):
                order.append(name)
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))

            return body

        spec = WorkflowSpec("dep")
        spec.task("first").alternative(tracer("first", oids[0]))
        spec.task("second", depends_on=("first",)).alternative(
            tracer("second", oids[1])
        )
        result = engine.execute(spec)
        assert result.success
        assert order == ["first", "second"]

    def test_alternatives_fall_back(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec("alts")
        task = spec.task("choice")
        task.alternative(incrementer(oids[0], fail=True), label="bad")
        task.alternative(incrementer(oids[1]), label="good")
        result = engine.execute(spec)
        assert result.success
        assert result.outcomes["choice"].label == "good"

    def test_race_one_winner(self, rt, engine):
        oids = make_counters(rt, 3)
        spec = WorkflowSpec("race")
        task = spec.task("r", race=True)
        for index, oid in enumerate(oids):
            task.alternative(incrementer(oid), label=f"alt{index}")
        result = engine.execute(spec)
        assert result.success
        assert sum(read_counter(rt, oid) for oid in oids) == 1

    def test_required_failure_compensates(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec("comp")
        spec.task("keep").alternative(incrementer(oids[0])).compensate_with(
            incrementer(oids[0], delta=-1)
        )
        spec.task("die", depends_on=("keep",)).alternative(
            incrementer(oids[1], fail=True)
        )
        result = engine.execute(spec)
        assert not result.success
        assert result.status_of("keep") is TaskStatus.COMPENSATED
        assert read_counter(rt, oids[0]) == 0

    def test_optional_failure_tolerated(self, rt, engine):
        oids = make_counters(rt, 2)
        spec = WorkflowSpec("opt")
        spec.task("maybe", optional=True).alternative(
            incrementer(oids[0], fail=True)
        )
        spec.task("must").alternative(incrementer(oids[1]))
        result = engine.execute(spec)
        assert result.success
        assert result.status_of("maybe") is TaskStatus.FAILED
