"""Workflow specifications: construction and validation."""

import pytest

from repro.common.errors import AssetError
from repro.workflow.spec import TaskSpec, WorkflowSpec


def noop(tx):
    if False:  # pragma: no cover
        yield None


class TestTaskSpec:
    def test_fluent_alternatives(self):
        task = TaskSpec(name="t").alternative(noop, label="a").alternative(
            noop, label="b"
        )
        assert [alt.label for alt in task.alternatives] == ["a", "b"]

    def test_compensation_binding(self):
        task = TaskSpec(name="t").compensate_with(noop, args=(1,))
        assert task.compensation is noop
        assert task.compensation_args == (1,)


class TestWorkflowSpec:
    def test_order_preserved(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("b").alternative(noop)
        assert [task.name for task in spec] == ["a", "b"]
        assert len(spec) == 2

    def test_duplicate_names_rejected(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("a").alternative(noop)
        with pytest.raises(AssetError, match="duplicate"):
            spec.validate()

    def test_empty_task_rejected(self):
        spec = WorkflowSpec()
        spec.task("a")
        with pytest.raises(AssetError, match="no alternatives"):
            spec.validate()

    def test_forward_dependency_rejected(self):
        spec = WorkflowSpec()
        spec.task("a", depends_on=("b",)).alternative(noop)
        spec.task("b").alternative(noop)
        with pytest.raises(AssetError, match="not an earlier task"):
            spec.validate()

    def test_unknown_dependency_rejected(self):
        spec = WorkflowSpec()
        spec.task("a", depends_on=("ghost",)).alternative(noop)
        with pytest.raises(AssetError):
            spec.validate()

    def test_valid_spec_returns_self(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("b", depends_on=("a",)).alternative(noop)
        assert spec.validate() is spec
