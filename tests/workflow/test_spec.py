"""Workflow specifications: construction and validation."""

import pytest

from repro.common.errors import AssetError
from repro.workflow.spec import TaskSpec, WorkflowSpec


def noop(tx):
    if False:  # pragma: no cover
        yield None


class TestTaskSpec:
    def test_fluent_alternatives(self):
        task = TaskSpec(name="t").alternative(noop, label="a").alternative(
            noop, label="b"
        )
        assert [alt.label for alt in task.alternatives] == ["a", "b"]

    def test_compensation_binding(self):
        task = TaskSpec(name="t").compensate_with(noop, args=(1,))
        assert task.compensation is noop
        assert task.compensation_args == (1,)


class TestWorkflowSpec:
    def test_order_preserved(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("b").alternative(noop)
        assert [task.name for task in spec] == ["a", "b"]
        assert len(spec) == 2

    def test_duplicate_names_rejected(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("a").alternative(noop)
        with pytest.raises(AssetError, match="duplicate"):
            spec.validate()

    def test_empty_task_rejected(self):
        spec = WorkflowSpec()
        spec.task("a")
        with pytest.raises(AssetError, match="no alternatives"):
            spec.validate()

    def test_forward_dependency_allowed_and_ordered(self):
        # Dependencies may name later tasks; ordered() resolves them.
        spec = WorkflowSpec()
        spec.task("a", depends_on=("b",)).alternative(noop)
        spec.task("b").alternative(noop)
        assert spec.validate() is spec
        assert [task.name for task in spec.ordered()] == ["b", "a"]

    def test_ordered_is_stable_on_declaration_order(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("b").alternative(noop)
        spec.task("c", depends_on=("a", "b")).alternative(noop)
        assert [task.name for task in spec.ordered()] == ["a", "b", "c"]

    def test_dependency_cycle_rejected(self):
        spec = WorkflowSpec()
        spec.task("a", depends_on=("b",)).alternative(noop)
        spec.task("b", depends_on=("a",)).alternative(noop)
        with pytest.raises(AssetError, match="cycle"):
            spec.validate()

    def test_self_dependency_rejected(self):
        spec = WorkflowSpec()
        spec.task("a", depends_on=("a",)).alternative(noop)
        with pytest.raises(AssetError, match="itself"):
            spec.validate()

    def test_unknown_dependency_rejected(self):
        spec = WorkflowSpec()
        spec.task("a", depends_on=("ghost",)).alternative(noop)
        with pytest.raises(AssetError):
            spec.validate()

    def test_pacer_outside_race_rejected(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop, label="p", pacer=True)
        with pytest.raises(AssetError, match="outside a race"):
            spec.validate()

    def test_pacer_with_compensation_rejected(self):
        spec = WorkflowSpec()
        task = spec.task("a", race=True)
        task.alternative(noop, label="real")
        task.alternative(noop, label="p", pacer=True, compensation=noop)
        with pytest.raises(AssetError, match="never commits"):
            spec.validate()

    def test_all_pacer_race_rejected(self):
        spec = WorkflowSpec()
        task = spec.task("a", race=True)
        task.alternative(noop, label="p1", pacer=True)
        task.alternative(noop, label="p2", pacer=True)
        with pytest.raises(AssetError, match="never commit"):
            spec.validate()

    def test_alternative_compensation_preferred(self):
        def alt_comp(tx):
            if False:  # pragma: no cover
                yield None

        task = TaskSpec(name="t").alternative(
            noop, label="a", compensation=alt_comp, compensation_args=(2,)
        ).alternative(noop, label="b")
        task.compensate_with(noop, args=(1,))
        assert task.compensation_for("a") == (alt_comp, (2,))
        assert task.compensation_for("b") == (noop, (1,))
        assert task.compensation_for("ghost") == (noop, (1,))

    def test_valid_spec_returns_self(self):
        spec = WorkflowSpec()
        spec.task("a").alternative(noop)
        spec.task("b", depends_on=("a",)).alternative(noop)
        assert spec.validate() is spec
