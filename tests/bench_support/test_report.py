"""Table rendering."""

from repro.bench.report import format_table


class TestFormatTable:
    def test_contains_everything(self):
        table = format_table(
            "My Table",
            ["col_a", "col_b"],
            [[1, 2.5], ["long value", 3]],
        )
        assert "My Table" in table
        assert "col_a" in table and "col_b" in table
        assert "2.50" in table  # floats get two decimals
        assert "long value" in table

    def test_column_alignment(self):
        table = format_table("T", ["x"], [[1], [22], [333]])
        lines = table.splitlines()
        data = lines[-3:]
        assert len({len(line) for line in data}) == 1  # equal widths

    def test_empty_rows(self):
        table = format_table("Empty", ["a"], [])
        assert "Empty" in table
