"""Table rendering and the machine-readable bench recorder."""

import json

from repro.bench.report import BenchRecorder, RECORDER, format_table, print_table


class TestFormatTable:
    def test_contains_everything(self):
        table = format_table(
            "My Table",
            ["col_a", "col_b"],
            [[1, 2.5], ["long value", 3]],
        )
        assert "My Table" in table
        assert "col_a" in table and "col_b" in table
        assert "2.50" in table  # floats get two decimals
        assert "long value" in table

    def test_column_alignment(self):
        table = format_table("T", ["x"], [[1], [22], [333]])
        lines = table.splitlines()
        data = lines[-3:]
        assert len({len(line) for line in data}) == 1  # equal widths

    def test_empty_rows(self):
        table = format_table("Empty", ["a"], [])
        assert "Empty" in table


class TestBenchRecorder:
    def test_series_and_timings_flatten_to_rows(self):
        recorder = BenchRecorder()
        recorder.add_series("S1", ["a"], [[1], [2]])
        recorder.add_timing("bench_x", 0.25, ops_per_sec=4000.0)
        recorder.add_timing("bench_y", 1.5)
        rows = recorder.rows()
        assert [row["kind"] for row in rows] == ["series", "timing", "timing"]
        assert rows[0]["series"] == "S1"
        assert rows[0]["rows"] == [[1], [2]]
        assert rows[1]["ops_per_sec"] == 4000.0
        assert rows[2]["ops_per_sec"] is None

    def test_write_json_round_trips(self, tmp_path):
        recorder = BenchRecorder()
        recorder.add_series("S", ["n", "us"], [[8, 1.25]])
        recorder.add_timing("bench_z", 0.125, ops_per_sec=8.0)
        path = tmp_path / "bench.json"
        recorder.write_json(path)
        rows = json.loads(path.read_text())
        assert len(rows) == 2
        assert rows[0]["headers"] == ["n", "us"]
        assert rows[1]["bench"] == "bench_z"

    def test_clear_empties_everything(self):
        recorder = BenchRecorder()
        recorder.add_series("S", ["a"], [])
        recorder.add_timing("b", 1.0)
        recorder.clear()
        assert recorder.rows() == []

    def test_print_table_records_into_global_recorder(self, capsys):
        before = len(RECORDER.series)
        print_table("Recorded", ["col"], [[1]])
        assert "Recorded" in capsys.readouterr().out
        assert len(RECORDER.series) == before + 1
        assert RECORDER.series[-1]["series"] == "Recorded"
