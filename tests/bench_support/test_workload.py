"""Workload generation: determinism, skew, body behaviour."""

import pytest

from tests.conftest import read_counter

from repro.bench.workload import (
    WorkloadSpec,
    bodies_for,
    body_for,
    populate_objects,
)
from repro.core.semantics import READ, WRITE


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        spec = WorkloadSpec(transactions=5, ops_per_txn=3, seed=42)
        assert spec.generate() == spec.generate()

    def test_different_seeds_differ(self):
        a = WorkloadSpec(transactions=10, ops_per_txn=5, seed=1).generate()
        b = WorkloadSpec(transactions=10, ops_per_txn=5, seed=2).generate()
        assert a != b

    def test_shape(self):
        spec = WorkloadSpec(transactions=7, ops_per_txn=4, n_objects=3)
        workload = spec.generate()
        assert len(workload) == 7
        for ops in workload:
            assert len(ops) == 4
            for op, index in ops:
                assert op in (READ, WRITE)
                assert 0 <= index < 3

    def test_write_ratio_extremes(self):
        all_reads = WorkloadSpec(write_ratio=0.0, seed=3).generate()
        assert all(op == READ for ops in all_reads for op, __ in ops)
        all_writes = WorkloadSpec(write_ratio=1.0, seed=3).generate()
        assert all(op == WRITE for ops in all_writes for op, __ in ops)

    def test_zipf_skews_to_low_indexes(self):
        spec = WorkloadSpec(
            transactions=200, ops_per_txn=5, n_objects=20,
            zipf_theta=1.5, seed=5,
        )
        counts = [0] * 20
        for ops in spec.generate():
            for __, index in ops:
                counts[index] += 1
        assert counts[0] > counts[10]
        assert sum(counts[:5]) > sum(counts[15:])

    def test_uniform_weights(self):
        spec = WorkloadSpec(n_objects=4, zipf_theta=0.0)
        assert spec.access_weights() == [1.0] * 4


class TestBodies:
    def test_populate_objects(self, rt):
        oids = populate_objects(rt, 5, initial=3)
        assert len(oids) == 5
        assert all(read_counter(rt, oid) == 3 for oid in oids)

    def test_body_executes_ops(self, rt):
        oids = populate_objects(rt, 2, initial=10)
        body = body_for([(READ, 0), (WRITE, 1), (READ, 1)], oids)
        result = rt.run(body)
        assert result.committed
        assert read_counter(rt, oids[1]) == 11
        # total = read(10) + read-for-write(10) is internal + read(11)
        assert result.value == 21

    def test_bodies_for_count(self, rt):
        spec = WorkloadSpec(transactions=4)
        oids = populate_objects(rt, spec.n_objects)
        assert len(bodies_for(spec, oids)) == 4
