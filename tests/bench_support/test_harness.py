"""The experiment harness: metrics collection over deterministic runs."""

import pytest

from repro.acta.history import HistoryRecorder
from repro.bench.harness import (
    Metrics,
    latency_stats,
    run_interleaved,
    run_sequential,
)
from repro.bench.workload import WorkloadSpec, bodies_for, populate_objects
from repro.runtime.coop import CooperativeRuntime


class TestMetrics:
    def test_throughput(self):
        metrics = Metrics(committed=10, steps=500)
        assert metrics.throughput == 20.0

    def test_zero_steps_throughput(self):
        assert Metrics().throughput == 0.0

    def test_latency_stats(self):
        metrics = Metrics(latencies=[2, 4, 6])
        assert metrics.mean_latency == 4.0
        assert metrics.max_latency == 6

    def test_empty_latencies(self):
        assert Metrics().mean_latency == 0.0
        assert Metrics().max_latency == 0


class TestRuns:
    def _setup(self, seed=5, **spec_kwargs):
        rt = CooperativeRuntime(seed=seed)
        spec = WorkloadSpec(seed=seed, **spec_kwargs)
        oids = populate_objects(rt, spec.n_objects)
        return rt, bodies_for(spec, oids)

    def test_sequential_all_commit(self):
        rt, bodies = self._setup(transactions=6, n_objects=8)
        metrics = run_sequential(rt, bodies)
        assert metrics.committed == 6
        assert metrics.aborted == 0

    def test_interleaved_accounts_everything(self):
        rt, bodies = self._setup(
            transactions=6, n_objects=2, write_ratio=1.0
        )
        metrics = run_interleaved(rt, bodies)
        assert metrics.committed + metrics.aborted == 6
        assert metrics.steps > 0

    def test_interleaved_with_recorder_collects_latency(self):
        rt, bodies = self._setup(transactions=4, n_objects=8)
        recorder = HistoryRecorder(rt.manager)
        metrics = run_interleaved(rt, bodies, recorder=recorder)
        assert len(metrics.latencies) == metrics.committed
        assert all(lat > 0 for lat in metrics.latencies)

    def test_contention_raises_aborts(self):
        """All writers on one object deadlock far more than spread-out
        writers (lock_blocks counts per-round retries, so the abort count
        is the cleaner contention signal)."""
        quiet_rt, quiet = self._setup(
            transactions=8, n_objects=64, write_ratio=1.0
        )
        hot_rt, hot = self._setup(
            transactions=8, n_objects=1, write_ratio=1.0
        )
        quiet_metrics = run_interleaved(quiet_rt, quiet)
        hot_metrics = run_interleaved(hot_rt, hot)
        assert hot_metrics.aborted > quiet_metrics.aborted
        assert hot_metrics.committed < quiet_metrics.committed

    def test_determinism_of_metrics(self):
        first_rt, first = self._setup(transactions=5, n_objects=2)
        second_rt, second = self._setup(transactions=5, n_objects=2)
        a = run_interleaved(first_rt, first)
        b = run_interleaved(second_rt, second)
        assert (a.committed, a.aborted, a.steps) == (
            b.committed, b.aborted, b.steps,
        )


class TestLatencyStats:
    def test_only_requested_tids(self):
        rt = CooperativeRuntime()
        recorder = HistoryRecorder(rt.manager)
        oids = populate_objects(rt, 2)
        spec = WorkloadSpec(transactions=2, n_objects=2)
        bodies = bodies_for(spec, oids)
        first = rt.spawn(bodies[0])
        rt.commit(first)
        second = rt.spawn(bodies[1])
        rt.commit(second)
        assert len(latency_stats(recorder, tids=[first])) == 1
        assert len(latency_stats(recorder)) >= 2
