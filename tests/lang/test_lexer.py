"""The mini-language tokenizer."""

import pytest

from repro.lang.lexer import LangSyntaxError, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source) if token.kind != "eof"]


class TestTokenKinds:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("trans foo saga bar")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "ident",
        ]

    def test_numbers(self):
        [token, __] = tokenize("12345")
        assert token.kind == "number" and token.text == "12345"

    def test_strings(self):
        [token, __] = tokenize('"hello world"')
        assert token.kind == "string"

    def test_operators(self):
        assert texts("|| == != <= >= { } ( ) ; , = + - * < >") == [
            "||", "==", "!=", "<=", ">=", "{", "}", "(", ")", ";", ",",
            "=", "+", "-", "*", "<", ">",
        ]

    def test_comments_skipped(self):
        assert texts("trans // a comment\n foo") == ["trans", "foo"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("trans\n  foo")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_error_carries_position(self):
        with pytest.raises(LangSyntaxError) as exc:
            tokenize("trans\n  @")
        assert exc.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(LangSyntaxError, match="unexpected character"):
            tokenize("$")
