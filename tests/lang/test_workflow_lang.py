"""The workflow unit of the mini-language.

Section 3.2.3: "it is possible to design a language to specify workflows.
These would then be translated into the code given here."  This is that
language: ``workflow { task ... }`` compiles onto the workflow engine,
which drives the same primitives the appendix program calls by hand.
"""

import pytest

from repro.common.codec import decode_json, encode_json
from repro.lang import compile_source
from repro.lang.lexer import LangSyntaxError
from repro.lang.parser import parse
from repro.lang import ast_nodes as ast
from repro.workflow.engine import TaskStatus

X_CONFERENCE = """
workflow {
  task flight {
    trans { if (read(delta) == 0) { abort; } write(delta, read(delta) - 1); }
    else trans { if (read(united) == 0) { abort; } write(united, read(united) - 1); }
    else trans { if (read(american) == 0) { abort; } write(american, read(american) - 1); }
  }
  compensating trans {
    if (read(delta) < 5) { write(delta, read(delta) + 1); }
    else { if (read(united) < 5) { write(united, read(united) + 1); }
           else { write(american, read(american) + 1); } }
  }
  task hotel requires flight {
    trans { if (read(equator) == 0) { abort; } write(equator, read(equator) - 1); }
  }
  optional race task car requires hotel {
    trans { if (read(national) == 0) { abort; } write(national, read(national) - 1); }
    else trans { if (read(avis) == 0) { abort; } write(avis, read(avis) - 1); }
  }
}
"""


class TestParsing:
    def test_task_structure(self):
        unit = parse(X_CONFERENCE)
        assert isinstance(unit, ast.WorkflowUnit)
        flight, hotel, car = unit.tasks
        assert flight.name == "flight"
        assert len(flight.alternatives) == 3
        assert flight.compensation is not None
        assert hotel.requires == ("flight",)
        assert hotel.compensation is None
        assert car.optional and car.race
        assert car.requires == ("hotel",)

    def test_modifier_order_flexible(self):
        first = parse("workflow { optional race task t { trans { abort; } } }")
        second = parse("workflow { race optional task t { trans { abort; } } }")
        assert first.tasks[0].optional and first.tasks[0].race
        assert second.tasks[0].optional and second.tasks[0].race

    def test_empty_workflow_rejected(self):
        with pytest.raises(LangSyntaxError, match="empty workflow"):
            parse("workflow { }")

    def test_model_name(self):
        assert compile_source(
            "workflow { task t { trans { abort; } } }"
        ).model == "workflow"


@pytest.fixture
def inventory(rt):
    def setup(tx):
        objects = {}
        for name, value in [
            ("delta", 5), ("united", 5), ("american", 5),
            ("equator", 5), ("national", 5), ("avis", 5),
        ]:
            objects[name] = yield tx.create(encode_json(value), name=name)
        return objects

    return rt.run(setup).value


def value_of(rt, inventory, name):
    def body(tx):
        return decode_json((yield tx.read(inventory[name])))

    return rt.run(body).value


class TestExecution:
    def test_happy_path(self, rt, inventory):
        result = compile_source(X_CONFERENCE).execute(rt, objects=inventory)
        assert result.success
        assert result.outcomes["flight"].status is TaskStatus.COMMITTED
        assert value_of(rt, inventory, "delta") == 4
        assert value_of(rt, inventory, "equator") == 4
        cars = value_of(rt, inventory, "national") + value_of(
            rt, inventory, "avis"
        )
        assert cars == 9  # exactly one car booked

    def test_contingent_fallback(self, rt, inventory):
        def drain(tx):
            yield tx.write(inventory["delta"], encode_json(0))

        rt.run(drain)
        result = compile_source(X_CONFERENCE).execute(rt, objects=inventory)
        assert result.success
        assert value_of(rt, inventory, "united") == 4

    def test_compensation_on_hotel_failure(self, rt, inventory):
        def drain(tx):
            yield tx.write(inventory["equator"], encode_json(0))

        rt.run(drain)
        result = compile_source(X_CONFERENCE).execute(rt, objects=inventory)
        assert not result.success
        assert result.status_of("hotel") is TaskStatus.FAILED
        assert result.status_of("flight") is TaskStatus.COMPENSATED
        assert value_of(rt, inventory, "delta") == 5  # seat returned

    def test_optional_car_failure(self, rt, inventory):
        def drain(tx):
            yield tx.write(inventory["national"], encode_json(0))
            yield tx.write(inventory["avis"], encode_json(0))

        rt.run(drain)
        result = compile_source(X_CONFERENCE).execute(rt, objects=inventory)
        assert result.success
        assert result.status_of("car") is TaskStatus.FAILED

    def test_dependency_skipping(self, rt, inventory):
        def drain(tx):
            for name in ("delta", "united", "american"):
                yield tx.write(inventory[name], encode_json(0))

        rt.run(drain)
        result = compile_source(X_CONFERENCE).execute(rt, objects=inventory)
        assert not result.success
        assert result.status_of("flight") is TaskStatus.FAILED
        assert result.status_of("hotel") is TaskStatus.SKIPPED
        assert result.status_of("car") is TaskStatus.SKIPPED
