"""The compiler: compiled programs behave like hand-written models."""

import pytest

from repro.common.codec import decode_json, encode_json
from repro.lang import compile_source


@pytest.fixture
def env(rt):
    def setup(tx):
        objects = {}
        for name, value in [("x", 10), ("y", 0), ("z", 100)]:
            objects[name] = yield tx.create(encode_json(value), name=name)
        return objects

    return rt.run(setup).value


def value_of(rt, env, name):
    def body(tx):
        return decode_json((yield tx.read(env[name])))

    return rt.run(body).value


class TestAtomicPrograms:
    def test_arithmetic_write(self, rt, env):
        result = compile_source(
            "trans { write(x, read(x) * 2 + 1); return read(x); }"
        ).execute(rt, objects=env)
        assert result.committed and result.value == 21
        assert value_of(rt, env, "x") == 21

    def test_variables_and_if(self, rt, env):
        result = compile_source(
            """
            trans {
              v = read(x);
              if (v >= 10) { write(y, 1); } else { write(y, 2); }
              return read(y);
            }
            """
        ).execute(rt, objects=env)
        assert result.value == 1

    def test_abort_rolls_back(self, rt, env):
        result = compile_source(
            "trans { write(x, 999); abort; }"
        ).execute(rt, objects=env)
        assert not result.committed
        assert value_of(rt, env, "x") == 10

    def test_seeded_variables(self, rt, env):
        result = compile_source(
            "trans { write(y, price * 2); return read(y); }"
        ).execute(rt, objects=env, variables={"price": 21})
        assert result.value == 42

    def test_strings(self, rt, env):
        result = compile_source(
            'trans { write(y, "hello"); return read(y); }'
        ).execute(rt, objects=env)
        assert result.value == "hello"

    def test_logic_operators(self, rt, env):
        result = compile_source(
            "trans { return (read(x) == 10 and 1) or 99; }"
        ).execute(rt, objects=env)
        assert result.value == 1

    def test_unknown_object_raises(self, rt, env):
        program = compile_source("trans { write(ghost, 1); }")
        result = program.execute(rt, objects=env)
        # The body raised inside the transaction: it aborted.
        assert not result.committed

    def test_undefined_variable_aborts(self, rt, env):
        result = compile_source("trans { write(y, ghost_var); }").execute(
            rt, objects=env
        )
        assert not result.committed


class TestComposedPrograms:
    def test_distributed_commits_together(self, rt, env):
        result = compile_source(
            "trans { write(x, 1); } || trans { write(y, 2); }"
        ).execute(rt, objects=env)
        assert result.committed
        assert value_of(rt, env, "x") == 1
        assert value_of(rt, env, "y") == 2

    def test_distributed_aborts_together(self, rt, env):
        result = compile_source(
            "trans { write(x, 1); } || trans { write(y, 2); abort; }"
        ).execute(rt, objects=env)
        assert not result.committed
        assert value_of(rt, env, "x") == 10
        assert value_of(rt, env, "y") == 0

    def test_contingent_falls_through(self, rt, env):
        result = compile_source(
            "trans { abort; } else trans { write(y, 5); return 5; }"
        ).execute(rt, objects=env)
        assert result.committed and result.chosen_index == 1

    def test_saga_compensates(self, rt, env):
        result = compile_source(
            """
            saga {
              trans { write(x, read(x) + 1); }
              compensating trans { write(x, read(x) - 1); }
              trans { abort; }
            }
            """
        ).execute(rt, objects=env)
        assert not result.committed
        assert result.execution_order == ["t1", "ct1"]
        assert value_of(rt, env, "x") == 10

    def test_nested_required_failure(self, rt, env):
        result = compile_source(
            "trans { write(x, 50); trans { abort; } }"
        ).execute(rt, objects=env)
        assert not result.committed
        assert value_of(rt, env, "x") == 10

    def test_nested_try_binding(self, rt, env):
        result = compile_source(
            """
            trans {
              ok = try trans { write(y, 1); abort; };
              good = try trans { write(z, 7); };
              return ok * 10 + good;
            }
            """
        ).execute(rt, objects=env)
        assert result.committed
        assert result.value == 1  # ok=0, good=1
        assert value_of(rt, env, "z") == 7
        assert value_of(rt, env, "y") == 0

    def test_model_introspection(self):
        assert compile_source("trans { abort; }").model == "atomic"
        assert (
            compile_source("trans { abort; } || trans { abort; }").model
            == "distributed"
        )
        assert (
            compile_source("trans { abort; } else trans { abort; }").model
            == "contingent"
        )
        assert (
            compile_source("saga { trans { abort; } }").model == "saga"
        )
