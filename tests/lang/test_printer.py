"""The pretty-printer, including the parse∘print round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.printer import to_source

# -- hypothesis AST generators ------------------------------------------------

identifiers = st.sampled_from(["x", "y", "stock", "paid", "v1"])

expressions = st.recursive(
    st.one_of(
        st.builds(ast.Number, value=st.integers(0, 999)),
        st.builds(
            ast.String,
            value=st.text(
                alphabet=st.characters(
                    blacklist_characters='"\\',
                    min_codepoint=32,
                    max_codepoint=126,
                ),
                max_size=8,
            ),
        ),
        st.builds(ast.Var, name=identifiers),
        st.builds(ast.ReadExpr, obj=identifiers),
    ),
    lambda children: st.one_of(
        st.builds(ast.Neg, operand=children),
        st.builds(
            ast.BinOp,
            op=st.sampled_from(
                ["+", "-", "*", "==", "!=", "<", ">", "<=", ">=",
                 "and", "or"]
            ),
            left=children,
            right=children,
        ),
    ),
    max_leaves=8,
)


def statements(depth=2):
    base = st.one_of(
        st.builds(ast.WriteStmt, obj=identifiers, value=expressions),
        st.builds(ast.AssignStmt, name=identifiers, value=expressions),
        st.just(ast.AbortStmt()),
        st.builds(ast.ReturnStmt, value=expressions),
    )
    if depth <= 0:
        return base
    inner = statements(depth - 1)
    blocks = st.lists(inner, min_size=1, max_size=3).map(tuple)
    return st.one_of(
        base,
        st.builds(
            ast.IfStmt,
            condition=expressions,
            then_block=blocks,
            else_block=st.one_of(st.just(()), blocks),
        ),
        st.builds(
            ast.SubTransStmt,
            body=blocks,
            required=st.booleans(),
            bound_to=st.just(""),
        ),
    )


blocks = st.lists(statements(), min_size=1, max_size=4).map(tuple)

units = st.one_of(
    st.builds(ast.TransUnit, body=blocks),
    st.builds(
        ast.ParallelUnit,
        components=st.lists(
            st.builds(ast.TransUnit, body=blocks), min_size=2, max_size=3
        ).map(tuple),
    ),
    st.builds(
        ast.ContingentUnit,
        alternatives=st.lists(
            st.builds(ast.TransUnit, body=blocks), min_size=2, max_size=3
        ).map(tuple),
    ),
    st.builds(
        ast.SagaUnit,
        steps=st.lists(
            st.builds(
                ast.SagaStepNode,
                body=blocks,
                compensation=st.one_of(st.none(), blocks),
            ),
            min_size=1,
            max_size=3,
        ).map(tuple),
    ),
)


class TestRoundTrip:
    @given(unit=units)
    @settings(max_examples=150, deadline=None)
    def test_parse_print_round_trip(self, unit):
        """parse(to_source(ast)) == ast, for generated programs."""
        assert parse(to_source(unit)) == unit

    def test_hand_written_examples_round_trip(self):
        sources = [
            "trans { write(x, read(x) + 1); }",
            "trans { abort; } else trans { return 1; }",
            "trans { v1 = 2 * (3 + 4); } || trans { abort; }",
            """saga {
                trans { write(stock, read(stock) - 1); }
                compensating trans { write(stock, read(stock) + 1); }
                trans { abort; }
            }""",
            """workflow {
                task flight { trans { abort; } else trans { return 1; } }
                compensating trans { write(x, 0); }
                optional race task car requires flight {
                    trans { abort; }
                    else trans { return 2; }
                }
            }""",
        ]
        for source in sources:
            unit = parse(source)
            assert parse(to_source(unit)) == unit

    def test_precedence_preserved(self):
        unit = parse("trans { v1 = (1 + 2) * 3; }")
        printed = to_source(unit)
        assert "(1 + 2) * 3" in printed
        assert parse(printed) == unit

    def test_bound_try_round_trip(self):
        unit = parse("trans { y = try trans { abort; }; }")
        assert parse(to_source(unit)) == unit

    def test_nested_if_round_trip(self):
        unit = parse(
            "trans { if (x > 1) { if (y) { abort; } } else { return 0; } }"
        )
        assert parse(to_source(unit)) == unit
