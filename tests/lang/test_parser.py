"""The mini-language parser: units, statements, expressions."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.lexer import LangSyntaxError
from repro.lang.parser import parse


class TestUnits:
    def test_single_trans(self):
        unit = parse("trans { abort; }")
        assert isinstance(unit, ast.TransUnit)
        assert isinstance(unit.body[0], ast.AbortStmt)

    def test_parallel_unit(self):
        unit = parse("trans { abort; } || trans { abort; } || trans { abort; }")
        assert isinstance(unit, ast.ParallelUnit)
        assert len(unit.components) == 3

    def test_contingent_unit(self):
        unit = parse("trans { abort; } else trans { abort; }")
        assert isinstance(unit, ast.ContingentUnit)
        assert len(unit.alternatives) == 2

    def test_saga_unit(self):
        unit = parse(
            "saga { trans { abort; } compensating trans { abort; }"
            " trans { abort; } }"
        )
        assert isinstance(unit, ast.SagaUnit)
        assert len(unit.steps) == 2
        assert unit.steps[0].compensation is not None
        assert unit.steps[1].compensation is None

    def test_empty_saga_rejected(self):
        with pytest.raises(LangSyntaxError, match="empty saga"):
            parse("saga { }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LangSyntaxError):
            parse("trans { abort; } extra")


class TestStatements:
    def test_write_statement(self):
        unit = parse("trans { write(x, 5); }")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.WriteStmt)
        assert stmt.obj == "x"
        assert stmt.value == ast.Number(value=5)

    def test_assignment(self):
        unit = parse("trans { v = read(x); }")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.AssignStmt)
        assert stmt.name == "v"
        assert isinstance(stmt.value, ast.ReadExpr)

    def test_return_statement(self):
        unit = parse("trans { return 1 + 2; }")
        assert isinstance(unit.body[0], ast.ReturnStmt)

    def test_if_else(self):
        unit = parse("trans { if (read(x) > 0) { abort; } else { return 1; } }")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.then_block[0], ast.AbortStmt)
        assert isinstance(stmt.else_block[0], ast.ReturnStmt)

    def test_nested_trans(self):
        unit = parse("trans { trans { abort; } }")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.SubTransStmt)
        assert stmt.required

    def test_try_trans(self):
        unit = parse("trans { try trans { abort; } }")
        assert not unit.body[0].required

    def test_bound_try_trans(self):
        unit = parse("trans { ok = try trans { abort; }; }")
        stmt = unit.body[0]
        assert isinstance(stmt, ast.SubTransStmt)
        assert stmt.bound_to == "ok"

    def test_missing_semicolon(self):
        with pytest.raises(LangSyntaxError):
            parse("trans { abort }")

    def test_bad_statement_start(self):
        with pytest.raises(LangSyntaxError, match="statement start"):
            parse("trans { 5; }")


class TestExpressions:
    def _expr(self, text):
        return parse(f"trans {{ v = {text}; }}").body[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison(self):
        expr = self._expr("read(x) >= 10")
        assert expr.op == ">="

    def test_logical_and_or(self):
        expr = self._expr("1 and 2 or 3")
        assert expr.op == "or"
        assert expr.left.op == "and"

    def test_unary_minus(self):
        expr = self._expr("-5")
        assert isinstance(expr, ast.Neg)

    def test_string_literal(self):
        expr = self._expr('"Delta"')
        assert expr == ast.String(value="Delta")

    def test_variables(self):
        expr = self._expr("price")
        assert expr == ast.Var(name="price")
