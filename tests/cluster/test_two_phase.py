"""Presumed-abort two-phase group commit across sites."""

from repro.cluster import Cluster
from repro.core.status import TransactionStatus
from repro.storage.log import CommitRecord, DecisionRecord


def _account(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def spawn_group(cluster, sites=None):
    sites = sites if sites is not None else sorted(cluster.sites)
    refs = [
        cluster.spawn_at(site, _account(site.encode())) for site in sites
    ]
    for ref in refs:
        cluster.wait(ref)
    return cluster.link_group(refs)


def committed_values(site):
    return [
        record.tid.value
        for record in site.durable_records()
        if isinstance(record, CommitRecord)
    ]


class TestHappyPath:
    def test_three_site_group_commit(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        outcome = cluster.group_commit(refs)
        assert outcome and outcome.resolved and outcome.committed
        cluster.converge()
        for ref in refs:
            assert ref.tid.value in committed_values(cluster.sites[ref.site])
        report, __ = cluster.evaluate(label="happy")
        assert report.ok

    def test_coordinator_logs_decision_before_release(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        outcome = cluster.group_commit(refs, coordinator="beta")
        assert outcome
        decisions = [
            record
            for record in cluster.sites["beta"].durable_records()
            if isinstance(record, DecisionRecord)
        ]
        assert len(decisions) == 1
        assert decisions[0].verdict == "commit"
        assert decisions[0].gid == outcome.gid
        assert set(decisions[0].participants) == {"alpha", "gamma"}

    def test_message_count_is_bounded(self):
        # 3 sites: the full exchange (console RPCs included) stays small
        # and, critically, deterministic — the bound doubles as a
        # regression tripwire for protocol chattiness.
        cluster = Cluster()
        refs = spawn_group(cluster)
        before = cluster.fabric.stats["sent"]
        assert cluster.group_commit(refs)
        cluster.converge()
        exchanged = cluster.fabric.stats["sent"] - before
        assert exchanged <= 16

    def test_group_commit_is_idempotent_under_duplicate_decision(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        outcome = cluster.group_commit(refs)
        assert outcome
        coordinator = cluster.sites[refs[0].site]
        # Replay the decision to every participant by hand.
        entry = coordinator.coordinating[outcome.gid]
        for site in sorted(entry["members"]):
            if site != coordinator.name:
                coordinator._send(
                    site,
                    "decision",
                    {
                        "gid": outcome.gid,
                        "verdict": "commit",
                        "tid": entry["members"][site],
                    },
                )
        cluster.converge()
        report, __ = cluster.evaluate(label="duplicate decision")
        assert report.ok
        for ref in refs:
            assert committed_values(cluster.sites[ref.site]).count(
                ref.tid.value
            ) == 1

    def test_representative_validation(self):
        cluster = Cluster(sites=("alpha", "beta"))
        a1 = cluster.spawn_at("alpha", _account(b"x"))
        a2 = cluster.spawn_at("alpha", _account(b"y"))
        try:
            cluster.group_commit([a1, a2])
            raise AssertionError("two representatives on one site accepted")
        except ValueError:
            pass

    def test_memberless_coordinator_degrades_to_abort(self):
        # A coordinator hosting no member is a configuration the caller
        # can reach mid-churn (the intended host just left); it must not
        # blow up the console — the group degrades to a recorded abort.
        cluster = Cluster(sites=("alpha", "beta"))
        a1 = cluster.spawn_at("alpha", _account(b"x"))
        outcome = cluster.group_commit([a1], coordinator="beta")
        assert not outcome.committed
        assert outcome.resolved
        assert "beta" in outcome.abort_reason
        cluster.converge()
        assert a1.tid.value not in committed_values(cluster.sites["alpha"])
        report, __ = cluster.evaluate(label="memberless coordinator")
        assert report.ok


class TestAbortPaths:
    def test_aborted_member_vetoes_the_group(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        cluster.abort(refs[1], reason="veto")
        cluster.settle(4)
        outcome = cluster.group_commit(refs)
        assert not outcome.committed and outcome.resolved
        cluster.converge()
        for ref in refs:
            assert ref.tid.value not in committed_values(
                cluster.sites[ref.site]
            )
        report, __ = cluster.evaluate(label="veto")
        assert report.ok

    def test_abort_decision_is_never_logged(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        cluster.abort(refs[0], reason="veto")
        cluster.settle(4)
        cluster.group_commit(refs)
        cluster.converge()
        for site in cluster.sites.values():
            assert not any(
                isinstance(record, DecisionRecord)
                for record in site.durable_records()
            )


class TestCrashRecovery:
    def test_participant_crash_after_vote_resolves_commit(self):
        cluster = Cluster()
        refs = spawn_group(cluster)
        outcome = cluster.group_commit(refs)
        assert outcome
        victim = refs[1].site
        cluster.crash_site(victim)
        cluster.restart_site(victim)
        assert cluster.converge()
        report, __ = cluster.evaluate(label="participant restart")
        assert report.ok
        assert refs[1].tid.value in committed_values(cluster.sites[victim])

    def test_coordinator_crash_before_decision_presumes_abort(self):
        # Crash the coordinator the instant it is asked to run the
        # group: participants may prepare and go in doubt, but with no
        # durable decision anywhere the presumption must settle every
        # member as aborted.
        cluster = Cluster()
        refs = spawn_group(cluster)
        coordinator = refs[0].site
        cluster.crash_site(coordinator)
        outcome = cluster.group_commit(refs)
        assert not outcome.resolved  # console never heard a verdict
        cluster.restart_site(coordinator)
        assert cluster.converge()
        report, __ = cluster.evaluate(label="coordinator crash")
        assert report.ok
        for ref in refs:
            assert ref.tid.value not in committed_values(
                cluster.sites[ref.site]
            )

    def test_coordinator_crash_after_decision_resolves_commit(self):
        # Witness-confirmed release: the decision reaches disk only
        # once one participant acknowledged it.  Let beta's ack seal
        # the commit while gamma never hears the release; then kill
        # the coordinator.  Restart re-reads the DecisionRecord and
        # the still-prepared participant learns "commit" from the
        # reborn coordinator's re-announce (or its own inquiry).
        cluster = Cluster()
        refs = spawn_group(cluster)
        coordinator = cluster.sites["alpha"]

        original = coordinator._send

        def send_muting_gamma_decisions(dst, kind, payload, reply_to=None):
            if kind == "decision" and dst == "gamma":
                return None
            return original(dst, kind, payload, reply_to=reply_to)

        coordinator._send = send_muting_gamma_decisions
        outcome = cluster.group_commit(refs, timeout=8)
        assert outcome  # beta witnessed, so the commit sealed
        assert cluster.sites["gamma"].prepared  # still awaiting release
        decisions = [
            record
            for record in coordinator.durable_records()
            if isinstance(record, DecisionRecord)
        ]
        assert [record.verdict for record in decisions] == ["commit"]
        coordinator._send = original
        cluster.crash_site("alpha")
        cluster.restart_site("alpha")
        assert cluster.converge()
        report, __ = cluster.evaluate(label="decided then crashed")
        assert report.ok
        for ref in refs:
            assert ref.tid.value in committed_values(cluster.sites[ref.site])

    def test_commit_is_not_logged_until_a_witness_acks(self):
        # Mute *every* DECISION: the coordinator must park in the
        # releasing state — no DecisionRecord, no client verdict, no
        # locally committed member — because a logged commit with no
        # witness is the one state takeover cannot re-derive.  Unmuting
        # lets a heartbeat-paced resend through; the first ack seals.
        cluster = Cluster()
        refs = spawn_group(cluster)
        coordinator = cluster.sites["alpha"]

        original = coordinator._send

        def send_muting_decisions(dst, kind, payload, reply_to=None):
            if kind == "decision":
                return None
            return original(dst, kind, payload, reply_to=reply_to)

        coordinator._send = send_muting_decisions
        outcome = cluster.group_commit(refs, timeout=8)
        assert not outcome.resolved  # console heard nothing
        assert not any(
            isinstance(record, DecisionRecord)
            for record in coordinator.durable_records()
        )
        entry = coordinator.coordinating[outcome.gid]
        assert entry["state"] == "releasing"
        assert committed_values(coordinator) == []
        coordinator._send = original
        assert cluster.converge()
        report, __ = cluster.evaluate(label="blackout then heal")
        assert report.ok
        for ref in refs:
            assert ref.tid.value in committed_values(cluster.sites[ref.site])

    def test_prepared_participant_survives_own_crash_in_doubt(self):
        # Participant force-logs its vote, crashes, restarts: recovery
        # reports the group in doubt and the inquiry loop resolves it
        # from the coordinator's durable state.
        cluster = Cluster(sites=("alpha", "beta"))
        refs = spawn_group(cluster)
        outcome = cluster.group_commit(refs)
        assert outcome
        cluster.crash_site("beta")
        report = cluster.restart_site("beta")
        # (The decision may already have landed before the crash; only
        # assert the machinery converges to the committed truth.)
        assert cluster.converge()
        verdict, __ = cluster.evaluate(label="participant in doubt")
        assert verdict.ok
        assert refs[1].tid.value in committed_values(cluster.sites["beta"])
        assert report is not None
