"""Injected faults must escape the RPC handlers.

Regression for a fault-swallowing bug: the four RPC handlers that wrap
``manager`` calls in ``except Exception`` (form_dep, form_remote_dep,
delegate, permit) converted *injected* faults into ordinary
``{"ok": False}`` error replies.  A site that answers RPCs while its
simulated I/O is failing defeats the sweep oracles — the fault the plan
planted simply disappears.  The contract (``chaos/faults.py``):
``CrashPoint`` and ``TransientIOError`` propagate; only genuine
application errors (cycles, unknown tids) become error replies.
"""

import pytest

from repro.chaos.faults import CrashPoint
from repro.cluster.cluster import Cluster
from repro.common.errors import TransientIOError


def _two_sites():
    return Cluster(sites=("alpha", "beta"))


def _raiser(exc):
    def boom(*args, **kwargs):
        raise exc

    return boom


class TestInjectedFaultsPropagate:
    """Each handler, driven through the real fabric dispatch path."""

    def _pump_raises(self, cluster, exc_type):
        with pytest.raises(exc_type):
            cluster.fabric.pump_round()

    def test_delegate_handler_reraises_transient_io(self):
        cluster = _two_sites()
        site = cluster.sites["alpha"]
        site.manager.delegate = _raiser(TransientIOError("flush", "injected"))
        cluster.fabric.send(
            "client", "alpha", "delegate", {"tid": 1, "receiver_tid": 2}
        )
        self._pump_raises(cluster, TransientIOError)

    def test_permit_handler_reraises_transient_io(self):
        cluster = _two_sites()
        site = cluster.sites["alpha"]
        site.manager.permit = _raiser(TransientIOError("flush", "injected"))
        cluster.fabric.send("client", "alpha", "permit", {"tid": 1})
        self._pump_raises(cluster, TransientIOError)

    def test_form_dep_handler_reraises_transient_io(self):
        cluster = _two_sites()
        site = cluster.sites["alpha"]
        site.manager.form_dependency = _raiser(
            TransientIOError("flush", "injected")
        )
        cluster.fabric.send(
            "client", "alpha", "form_dep",
            {"dep_type": "CD", "ti": 1, "tj": 2},
        )
        self._pump_raises(cluster, TransientIOError)

    def test_form_remote_dep_handler_reraises_transient_io(self):
        cluster = _two_sites()
        site = cluster.sites["alpha"]
        site.manager.form_dependency = _raiser(
            TransientIOError("flush", "injected")
        )
        cluster.fabric.send(
            "client", "alpha", "form_remote_dep",
            {
                "dep_type": "CD",
                "local": 1,
                "peer_site": "beta",
                "peer_tid": 1,
                "role": "dependee",
            },
        )
        self._pump_raises(cluster, TransientIOError)

    def test_crash_point_escapes_every_handler(self):
        # CrashPoint derives from BaseException precisely so except
        # Exception cannot eat it; guard against anyone "fixing" that.
        cluster = _two_sites()
        site = cluster.sites["alpha"]
        site.manager.delegate = _raiser(CrashPoint("alpha", "log_append"))
        cluster.fabric.send(
            "client", "alpha", "delegate", {"tid": 1, "receiver_tid": 2}
        )
        self._pump_raises(cluster, CrashPoint)


class TestApplicationErrorsStillReply:
    def test_unknown_tid_becomes_an_error_reply(self):
        # The "report, not die" half of the contract is unchanged:
        # genuine application errors answer the RPC instead of killing
        # the site.
        cluster = _two_sites()
        replies = []
        cluster.fabric.handlers["client"] = lambda msg: replies.append(msg)
        cluster.fabric.send(
            "client", "alpha", "form_dep",
            {"dep_type": "CD", "ti": 971, "tj": 972},
        )
        for __ in range(4):
            cluster.fabric.pump_round()
        assert replies
        assert replies[-1].payload["ok"] is False
        assert replies[-1].payload["error"]
