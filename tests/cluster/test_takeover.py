"""Coordinator failover: leases, fencing epochs, in-doubt takeover.

Unit-level companions to the ``coordinator_death_sweep`` /
``takeover_death_sweep`` acceptance runs in ``test_sweeps.py``: pinned
kill points with named expectations, rather than every step with the
generic oracles.
"""

from repro.chaos.faults import FaultPlan
from repro.cluster import Cluster
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import probe_message_steps, run_failover_plan
from repro.storage.log import CommitRecord, DecisionRecord, TakeoverRecord


def _step(steps, kind, index=0):
    """The ``index``-th message step whose detail ends with ``:kind``."""
    matches = [n for n, d in steps if d.endswith(f":{kind}")]
    return matches[index]


def _takeover_records(cluster):
    return [
        record
        for site in cluster.sites.values()
        for record in site.durable_records()
        if isinstance(record, TakeoverRecord)
    ]


def _merged_verdicts(analyses):
    """gid -> set of verdicts across every site's durable log."""
    merged = {}
    for analysis in analyses.values():
        for gid, verdicts in analysis.group_verdicts.items():
            merged.setdefault(gid, set()).update(verdicts)
    return merged


class TestTakeover:
    def test_death_before_decision_presumes_abort(self):
        # Kill the coordinator the moment the first vote is sent: the
        # participants are prepared, no decision exists anywhere, and
        # the coordinator never answers another inquiry.  The survivors'
        # lease-paced takeover must re-derive presumed abort and settle
        # every live member without the operator's help.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "vote"))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        takeovers = _takeover_records(result.cluster)
        assert takeovers, "a takeover claim must be force-logged"
        assert {t.verdict for t in takeovers} == {"abort"}
        assert all(t.epoch >= 1 for t in takeovers)
        # Every claim names the same fenced-out old coordinator, and
        # the collected evidence is snapshotted for audit.
        assert len({t.old_coordinator for t in takeovers}) == 1
        assert all(t.votes for t in takeovers)
        assert {"abort"} in _merged_verdicts(result.analyses).values()

    def test_death_after_decision_preserves_commit(self):
        # Kill the coordinator at the first participant ack: by then the
        # commit decision is durable and released.  A permanently dead
        # coordinator must not undo it — the group stays committed with
        # a single verdict across every log.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "ack"))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        verdicts = _merged_verdicts(result.analyses)
        assert {"commit"} in verdicts.values()
        assert {"abort", "commit"} not in verdicts.values()

    def test_partial_release_takeover_derives_commit(self):
        # Kill the coordinator at the *second* decision send: at least
        # one participant holds the commit verdict, another may still be
        # prepared.  Whatever takeover runs must find the durable
        # "committed" evidence and conclude commit — never presume abort
        # over a witness.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "decision", 1))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        for gid, verdicts in _merged_verdicts(result.analyses).items():
            assert len(verdicts) == 1, f"gid {gid} split: {verdicts}"
        takeovers = _takeover_records(result.cluster)
        assert all(t.verdict == "commit" for t in takeovers)
        commits = [
            record.tid.value
            for site in result.cluster.sites.values()
            for record in site.durable_records()
            if isinstance(record, CommitRecord)
        ]
        assert commits, "the released commit must survive the death"

    def test_reborn_coordinator_is_fenced_not_split(self):
        # The old coordinator restarts after a takeover settled the
        # group.  Its log and the survivors' logs must agree on a single
        # verdict per gid (the no-dual-decision oracle), and the usurper
        # epoch must outrank the original epoch 0.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "vote", 1))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        takeovers = _takeover_records(result.cluster)
        assert takeovers
        old = takeovers[0].old_coordinator
        reborn = result.cluster.sites[old]
        assert reborn.up
        merged = _merged_verdicts(result.analyses)
        for gid, verdicts in merged.items():
            assert len(verdicts) == 1
        # The reborn site carries no conflicting decision of its own.
        for record in reborn.durable_records():
            if isinstance(record, DecisionRecord):
                assert {record.verdict} <= merged.get(
                    record.gid, {record.verdict}
                )


class TestFencing:
    def test_lower_epochs_are_rejected_and_counted(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        assert site._fence(7, 0) is True  # epoch 0 is the default
        assert site._fence(7, 2) is True  # higher: adopted on the spot
        assert site.group_epochs[7] == 2
        before = site.stats["stale_epoch_rejects"]
        assert site._fence(7, 1) is False  # stale: fenced out
        assert site.stats["stale_epoch_rejects"] == before + 1
        assert site.group_epochs[7] == 2  # rejection never regresses

    def test_equal_epochs_pass(self):
        # Same-epoch duplicates are legal: dueling takers at one epoch
        # derive the same verdict from the same durable evidence.
        cluster = Cluster()
        site = cluster.sites["alpha"]
        site._fence(7, 3)
        assert site._fence(7, 3) is True
        assert site.group_epochs[7] == 3

    def test_epochs_are_per_group(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        site._fence(7, 5)
        assert site._fence(8, 1) is True  # other gid: independent fence
        assert site.group_epochs == {7: 5, 8: 1}
