"""Coordinator failover: leases, fencing epochs, in-doubt takeover.

Unit-level companions to the ``coordinator_death_sweep`` /
``takeover_death_sweep`` acceptance runs in ``test_sweeps.py``: pinned
kill points with named expectations, rather than every step with the
generic oracles.
"""

from repro.chaos.faults import FaultPlan
from repro.cluster import Cluster
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import (
    probe_message_steps,
    probe_plan_steps,
    run_cluster_plan,
    run_failover_plan,
)
from repro.storage.log import CommitRecord, DecisionRecord, TakeoverRecord


def _account(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def _spawn_group(cluster):
    refs = [
        cluster.spawn_at(site, _account(site.encode()))
        for site in sorted(cluster.sites)
    ]
    for ref in refs:
        cluster.wait(ref)
    return cluster.link_group(refs)


def _step(steps, kind, index=0):
    """The ``index``-th message step whose detail ends with ``:kind``."""
    matches = [n for n, d in steps if d.endswith(f":{kind}")]
    return matches[index]


def _takeover_records(cluster):
    return [
        record
        for site in cluster.sites.values()
        for record in site.durable_records()
        if isinstance(record, TakeoverRecord)
    ]


def _merged_verdicts(analyses):
    """gid -> set of verdicts across every site's durable log."""
    merged = {}
    for analysis in analyses.values():
        for gid, verdicts in analysis.group_verdicts.items():
            merged.setdefault(gid, set()).update(verdicts)
    return merged


class TestTakeover:
    def test_death_before_decision_presumes_abort(self):
        # Kill the coordinator the moment the first vote is sent: the
        # participants are prepared, no decision exists anywhere, and
        # the coordinator never answers another inquiry.  The survivors'
        # lease-paced takeover must re-derive presumed abort and settle
        # every live member without the operator's help.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "vote"))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        takeovers = _takeover_records(result.cluster)
        assert takeovers, "a takeover claim must be force-logged"
        assert {t.verdict for t in takeovers} == {"abort"}
        assert all(t.epoch >= 1 for t in takeovers)
        # Every claim names the same fenced-out old coordinator, and
        # the collected evidence is snapshotted for audit.
        assert len({t.old_coordinator for t in takeovers}) == 1
        assert all(t.votes for t in takeovers)
        assert {"abort"} in _merged_verdicts(result.analyses).values()

    def test_death_after_decision_preserves_commit(self):
        # Kill the coordinator at the first participant ack: by then the
        # commit decision is durable and released.  A permanently dead
        # coordinator must not undo it — the group stays committed with
        # a single verdict across every log.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "ack"))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        verdicts = _merged_verdicts(result.analyses)
        assert {"commit"} in verdicts.values()
        assert {"abort", "commit"} not in verdicts.values()

    def test_partial_release_takeover_derives_commit(self):
        # Kill the coordinator at the *second* decision send: at least
        # one participant holds the commit verdict, another may still be
        # prepared.  Whatever takeover runs must find the durable
        # "committed" evidence and conclude commit — never presume abort
        # over a witness.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "decision", 1))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        for gid, verdicts in _merged_verdicts(result.analyses).items():
            assert len(verdicts) == 1, f"gid {gid} split: {verdicts}"
        takeovers = _takeover_records(result.cluster)
        assert all(t.verdict == "commit" for t in takeovers)
        commits = [
            record.tid.value
            for site in result.cluster.sites.values()
            for record in site.durable_records()
            if isinstance(record, CommitRecord)
        ]
        assert commits, "the released commit must survive the death"

    def test_reborn_coordinator_is_fenced_not_split(self):
        # The old coordinator restarts after a takeover settled the
        # group.  Its log and the survivors' logs must agree on a single
        # verdict per gid (the no-dual-decision oracle), and the usurper
        # epoch must outrank the original epoch 0.
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "vote", 1))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        takeovers = _takeover_records(result.cluster)
        assert takeovers
        old = takeovers[0].old_coordinator
        reborn = result.cluster.sites[old]
        assert reborn.up
        merged = _merged_verdicts(result.analyses)
        for gid, verdicts in merged.items():
            assert len(verdicts) == 1
        # The reborn site carries no conflicting decision of its own.
        for record in reborn.durable_records():
            if isinstance(record, DecisionRecord):
                assert {record.verdict} <= merged.get(
                    record.gid, {record.verdict}
                )


class TestWitnessReconstruction:
    def test_restarted_commit_witness_still_testifies(self):
        # A participant applies the commit, then power-cycles.  Its
        # settled map is volatile; only the log survives — and the log
        # holds a PrepareRecord whose tids are recovery winners.  The
        # restart must reconstruct "this group committed", or a taker
        # polling it would read silence as presumed abort and split the
        # group against this site's durable commit.
        cluster = Cluster()
        refs = _spawn_group(cluster)
        outcome = cluster.group_commit(refs)
        assert outcome and outcome.committed
        cluster.converge()
        cluster.crash_site("beta")
        cluster.restart_site("beta")
        beta = cluster.sites["beta"]
        assert beta.settled_gids.get(outcome.gid) == "commit"
        assert beta._takeover_evidence(outcome.gid) == ("committed", None)

    def test_restarted_abort_participant_still_testifies(self):
        # Same reconstruction, abort side: a participant that voted
        # commit and then resolved abort (its coordinator died before
        # deciding; the takeover presumed abort) must, after its own
        # power-cycle, still answer "aborted" — not "no trace".
        spec = cluster_scenarios.get("cluster_group_commit")
        steps = probe_message_steps(spec)
        plan = FaultPlan(kill_coordinator_at=_step(steps, "vote"))
        result = run_failover_plan(spec, plan)
        assert result.ok, result.describe()
        cluster = result.cluster
        old = _takeover_records(cluster)[0].old_coordinator
        witness = next(
            name
            for name, site in sorted(cluster.sites.items())
            if name != old and site.voted_gids
        )
        site = cluster.sites[witness]
        (gid,) = site.voted_gids
        assert site.settled_gids.get(gid) == "abort"
        cluster.crash_site(witness)
        cluster.restart_site(witness)
        site = cluster.sites[witness]
        assert site.settled_gids.get(gid) == "abort"
        assert site._takeover_evidence(gid) == ("aborted", None)


class TestEvidenceStates:
    def test_never_prepared_vs_resolved_unknown(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        assert site._takeover_evidence(99) == ("never_prepared", None)
        # A voted gid whose resolution is in no map must never read as
        # "no trace" — that is the one unsafe guess a taker could make.
        site.voted_gids.add(99)
        assert site._takeover_evidence(99) == ("resolved_unknown", None)

    def _taking_over_entry(self, site, gid, evidence):
        site.taking_over[gid] = {
            "epoch": 1,
            "old": "beta",
            "sites": ("alpha", "beta", "gamma"),
            "tid": None,
            "evidence": dict(evidence),
            "tids": {},
            "next_poll": 0,
            "claimed": False,
        }

    def test_abort_is_presumed_over_never_prepared(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        self._taking_over_entry(site, 7, {"gamma": "never_prepared"})
        site._maybe_conclude_takeover(7)
        assert 7 not in site.taking_over
        decisions = [
            record
            for record in site.durable_records()
            if isinstance(record, DecisionRecord)
        ]
        assert [record.verdict for record in decisions] == ["abort"]

    def test_resolved_unknown_blocks_the_conclusion(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        self._taking_over_entry(site, 7, {"gamma": "resolved_unknown"})
        site._maybe_conclude_takeover(7)
        assert 7 in site.taking_over  # blocked: never guess a verdict
        assert not any(
            isinstance(record, DecisionRecord)
            for record in site.durable_records()
        )


class TestReleaseBlackout:
    def test_blackout_with_permanent_death_presumes_abort(self):
        # Every DECISION vanishes (fan-out and resends) and the
        # coordinator dies at its first release attempt.  With the
        # commit gated on a witness ACK, no commit record exists
        # anywhere, so the survivors' presumed-abort takeover and the
        # reborn coordinator's log agree: abort, everywhere.
        spec = cluster_scenarios.get("cluster_group_commit")
        blackout = FaultPlan(drop_msg_kinds=frozenset({"decision"}))
        steps = probe_plan_steps(spec, blackout)
        kill = next(n for n, d in steps if d.endswith(":decision"))
        result = run_failover_plan(
            spec, blackout.with_(kill_coordinator_at=kill)
        )
        assert result.ok, result.describe()
        verdicts = _merged_verdicts(result.analyses)
        assert verdicts
        for gid, seen in verdicts.items():
            assert seen == {"abort"}, f"gid {gid} split: {seen}"

    def test_blackout_without_death_heals_to_commit(self):
        # Liveness side of the same gate: while the blackout holds the
        # coordinator parks in "releasing"; once the fabric heals, a
        # heartbeat-paced resend gets through, a witness acks, and the
        # commit seals — the gate defers the decision, never loses it.
        spec = cluster_scenarios.get("cluster_group_commit")
        plan = FaultPlan(drop_msg_kinds=frozenset({"decision"}))
        result = run_cluster_plan(spec, plan)
        assert result.ok, result.describe()
        verdicts = _merged_verdicts(result.analyses)
        assert {"commit"} in verdicts.values()


class TestFencing:
    def test_lower_epochs_are_rejected_and_counted(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        assert site._fence(7, 0) is True  # epoch 0 is the default
        assert site._fence(7, 2) is True  # higher: adopted on the spot
        assert site.group_epochs[7] == 2
        before = site.stats["stale_epoch_rejects"]
        assert site._fence(7, 1) is False  # stale: fenced out
        assert site.stats["stale_epoch_rejects"] == before + 1
        assert site.group_epochs[7] == 2  # rejection never regresses

    def test_equal_epochs_pass(self):
        # Same-epoch duplicates are legal: dueling takers at one epoch
        # derive the same verdict from the same durable evidence.
        cluster = Cluster()
        site = cluster.sites["alpha"]
        site._fence(7, 3)
        assert site._fence(7, 3) is True
        assert site.group_epochs[7] == 3

    def test_epochs_are_per_group(self):
        cluster = Cluster()
        site = cluster.sites["alpha"]
        site._fence(7, 5)
        assert site._fence(8, 1) is True  # other gid: independent fence
        assert site.group_epochs == {7: 5, 8: 1}
