"""Cross-site primitives: proxies, dependencies, delegation, permits."""

from repro.cluster import Cluster
from repro.core.dependency import DependencyType
from repro.core.status import TransactionStatus


def _account(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def make_cluster(**kw):
    kw.setdefault("sites", ("alpha", "beta"))
    return Cluster(**kw)


class TestConsole:
    def test_spawn_wait_result(self):
        cluster = make_cluster()
        ref = cluster.spawn_at("alpha", _account(b"a"))
        assert ref.site == "alpha"
        assert cluster.wait(ref) == "completed"
        oid = cluster.result_of(ref)
        assert oid is not None

    def test_initiate_then_begin(self):
        cluster = make_cluster()
        ref = cluster.initiate_at("beta", _account(b"b"))
        assert ref is not None
        assert cluster.begin(ref)
        assert cluster.wait(ref) == "completed"

    def test_initiate_refused_returns_none(self):
        cluster = make_cluster()
        cluster.sites["beta"].manager.max_transactions = 0
        assert cluster.initiate_at("beta", _account(b"b")) is None

    def test_console_abort(self):
        cluster = make_cluster()
        ref = cluster.spawn_at("alpha", _account(b"a"))
        cluster.wait(ref)
        assert cluster.abort(ref, reason="console says no")
        td = cluster.sites["alpha"].manager.table.maybe_get(ref.tid)
        assert td.status is TransactionStatus.ABORTED
        assert td.abort_reason == "console says no"


class TestProxies:
    def test_cross_site_gc_creates_proxy_web(self):
        cluster = make_cluster()
        a = cluster.spawn_at("alpha", _account(b"a"))
        b = cluster.spawn_at("beta", _account(b"b"))
        assert cluster.form_dependency(DependencyType.GC, a, b)
        alpha, beta = cluster.sites["alpha"], cluster.sites["beta"]
        # Each side holds a proxy for the other, GC-linked to its member.
        assert ("beta", b.tid.value) in alpha.proxies
        assert ("alpha", a.tid.value) in beta.proxies
        proxy_b = alpha.proxies[("beta", b.tid.value)]
        assert alpha.manager.dependencies.gc_group(a.tid) == {a.tid, proxy_b}

    def test_owner_learns_its_holders(self):
        cluster = make_cluster()
        a = cluster.spawn_at("alpha", _account(b"a"))
        b = cluster.spawn_at("beta", _account(b"b"))
        cluster.form_dependency(DependencyType.GC, a, b)
        cluster.settle(4)
        assert "beta" in cluster.sites["alpha"].remote_holders[a.tid.value]

    def test_abort_propagates_over_gc_web(self):
        cluster = make_cluster()
        a = cluster.spawn_at("alpha", _account(b"a"))
        b = cluster.spawn_at("beta", _account(b"b"))
        cluster.wait(a)
        cluster.wait(b)
        cluster.form_dependency(DependencyType.GC, a, b)
        cluster.abort(a, reason="console abort")
        cluster.settle(8)
        td = cluster.sites["beta"].manager.table.maybe_get(b.tid)
        assert td.status is TransactionStatus.ABORTED

    def test_ad_dependency_aborts_remote_dependent(self):
        cluster = make_cluster()
        a = cluster.spawn_at("alpha", _account(b"a"))
        b = cluster.spawn_at("beta", _account(b"b"))
        cluster.wait(a)
        cluster.wait(b)
        cluster.form_dependency(DependencyType.AD, a, b)
        cluster.abort(a, reason="dependee dies")
        cluster.settle(8)
        td = cluster.sites["beta"].manager.table.maybe_get(b.tid)
        assert td.status is TransactionStatus.ABORTED
        # ...but not the other way around: AD is directional.
        cluster2 = make_cluster()
        a2 = cluster2.spawn_at("alpha", _account(b"a"))
        b2 = cluster2.spawn_at("beta", _account(b"b"))
        cluster2.wait(a2)
        cluster2.wait(b2)
        cluster2.form_dependency(DependencyType.AD, a2, b2)
        cluster2.abort(b2, reason="dependent dies alone")
        cluster2.settle(8)
        td_a = cluster2.sites["alpha"].manager.table.maybe_get(a2.tid)
        assert not td_a.status.is_abort_bound


class TestDelegationAndPermit:
    def test_remote_delegate_attributes_to_proxy(self):
        cluster = make_cluster()
        giver = cluster.spawn_at("alpha", _account(b"g"))
        receiver = cluster.spawn_at("beta", _account(b"r"))
        cluster.wait(giver)
        cluster.wait(receiver)
        oid = cluster.result_of(giver)
        reply = cluster.delegate(giver, receiver, oids=[oid])
        assert reply["ok"] and reply["moved"]
        alpha = cluster.sites["alpha"]
        proxy = alpha.proxies[("beta", receiver.tid.value)]
        # The proxy now holds responsibility at the giver's site.
        proxy_td = alpha.manager.table.maybe_get(proxy)
        assert proxy_td.lock_on(oid) is not None

    def test_remote_write_under_permit(self):
        cluster = make_cluster()
        giver = cluster.spawn_at("alpha", _account(b"g"))
        receiver = cluster.spawn_at("beta", _account(b"r"))
        cluster.wait(giver)
        cluster.wait(receiver)
        oid = cluster.result_of(giver)
        assert cluster.permit(giver, receiver)["ok"]
        assert cluster.write_as(receiver, "alpha", oid, b"g2")
        got = cluster.read_as(receiver, "alpha", oid)
        assert got["granted"] and got["value"] == b"g2"

    def test_delegated_update_follows_receiver_abort(self):
        cluster = make_cluster()
        giver = cluster.spawn_at("alpha", _account(b"g"))
        receiver = cluster.spawn_at("beta", _account(b"r"))
        cluster.wait(giver)
        cluster.wait(receiver)
        oid = cluster.result_of(giver)
        cluster.delegate(giver, receiver, oids=[oid])
        cluster.abort(receiver, reason="receiver aborts")
        cluster.settle(8)
        # The proxy aborted with its owner, undoing the delegated
        # update (a created object: undo deletes it); the giver lives.
        alpha = cluster.sites["alpha"]
        assert not alpha.storage.objects.exists(oid)
        td = alpha.manager.table.maybe_get(giver.tid)
        assert not td.status.is_abort_bound
