"""Membership churn: site join/leave, epoch-fenced routing, handoff.

Direct tests for the membership console — the sweep-level coverage
(churn landing at every message step) lives in ``test_sweeps.py``.
"""

import pytest

from repro.cluster import Cluster


def _account(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def _key_routed_to(cluster, site):
    for i in range(64):
        key = f"k{i}"
        if cluster.route(key) == site:
            return key
    raise AssertionError(f"no probe key routed to {site}")


class TestJoin:
    def test_join_bumps_epoch_and_rebalances(self):
        cluster = Cluster()
        before = cluster.membership_epoch
        cluster.join_site("delta")
        assert cluster.membership_epoch == before + 1
        assert "delta" in cluster.membership
        assert cluster.sites["delta"].membership_epoch == cluster.membership_epoch
        # The balanced placement spreads shards over the new membership;
        # the joiner owns real ranges immediately.
        assert set(cluster.placement.values()) <= cluster.membership
        assert "delta" in set(cluster.placement.values())

    def test_joiner_serves_placed_spawns(self):
        cluster = Cluster()
        cluster.join_site("delta")
        key = _key_routed_to(cluster, "delta")
        ref = cluster.spawn_placed(key, _account(b"d"))
        assert ref is not None and ref.site == "delta"
        cluster.wait(ref)

    def test_duplicate_join_is_rejected(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            cluster.join_site("alpha")


class TestStaleRoutes:
    def test_stale_epoch_is_rejected_then_adopted(self):
        # A console that routed under a superseded epoch must be told
        # so — the site rejects, reports its newer epoch, and the
        # console's retry loop adopts it and re-resolves.
        cluster = Cluster()
        cluster.join_site("delta")
        current = cluster.membership_epoch
        cluster.membership_epoch = current - 1  # simulate a stale console
        key = _key_routed_to(cluster, "alpha")
        before = cluster.sites["alpha"].stats["stale_route_rejects"]
        ref = cluster.spawn_placed(key, _account(b"s"))
        assert ref is not None
        assert cluster.membership_epoch == current  # adopted from the reject
        assert cluster.sites["alpha"].stats["stale_route_rejects"] == before + 1

    def test_left_site_rejects_new_placements(self):
        cluster = Cluster()
        cluster.leave_site("beta", "gamma")
        assert cluster.sites["beta"].left
        # Every shard beta owned now routes to the successor.
        assert "beta" not in set(cluster.placement.values())
        for i in range(16):
            assert cluster.route(f"k{i}") != "beta"


class TestLeave:
    def test_leave_hands_in_flight_transactions_over(self):
        # beta's placement keys (the crc32-deterministic acct-2/acct-3)
        # hold in-flight transactions when beta leaves: the handoff must
        # delegate each to an adopted receiver at the successor and
        # report the move.
        cluster = Cluster()
        refs = [
            cluster.spawn_placed(key, _account(key.encode()))
            for key in ("acct-2", "acct-3")
        ]
        assert all(ref.site == "beta" for ref in refs)
        for ref in refs:
            cluster.wait(ref)
        before = cluster.membership_epoch
        result = cluster.leave_site("beta", "gamma")
        assert result["ok"] is True
        assert result["moved"] == 2
        assert set(result["adopted"]) == {ref.tid.value for ref in refs}
        assert cluster.membership_epoch == before + 1
        assert "beta" not in cluster.membership
        assert cluster.route("acct-2") == "gamma"
        assert cluster.sites["beta"].stats["handoff_txs_moved"] == 2
        # The adopted receivers are live at the successor.
        gamma = cluster.sites["gamma"]
        for receiver_value in result["adopted"].values():
            assert any(
                td.tid.value == receiver_value for td in gamma.manager.table
            )

    def test_leave_with_nothing_in_flight_is_trivial(self):
        cluster = Cluster()
        result = cluster.leave_site("beta", "alpha")
        assert result == {"ok": True, "moved": 0, "adopted": {}}
        assert cluster.sites["beta"].left

    def test_leave_validation(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            cluster.leave_site("nobody", "alpha")
        with pytest.raises(ValueError):
            cluster.leave_site("beta", "beta")
        with pytest.raises(ValueError):
            cluster.leave_site("beta", "nobody")

    def test_planned_leave_with_absent_successor_is_skipped(self):
        # A churn plan naming a successor that is not (yet) a member —
        # a typo, or a join that fires at a later step — must be
        # skipped at the tick boundary, not explode out of the tick
        # loop as a ValueError and abort the whole faulted run.
        cluster = Cluster()
        cluster.fabric._churn_requests.append(("leave", ("beta", "nobody")))
        cluster.fabric._churn_requests.append(("leave", ("beta", "beta")))
        cluster.tick()
        assert "beta" in cluster.membership
        assert not cluster.sites["beta"].left

    def test_group_commit_across_churned_membership(self):
        # After a join and a leave, one member per surviving site still
        # group-commits atomically and the oracles hold.
        cluster = Cluster()
        cluster.join_site("delta")
        cluster.leave_site("beta", "delta")
        refs = [
            cluster.spawn_at(name, _account(name.encode()))
            for name in sorted(cluster.membership)
        ]
        for ref in refs:
            cluster.wait(ref)
        cluster.link_group(refs)
        outcome = cluster.group_commit(refs)
        assert outcome and outcome.committed
        assert cluster.converge()
        report, __ = cluster.evaluate(label="churned group")
        assert report.ok
