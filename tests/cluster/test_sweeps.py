"""Message-step fault sweeps: every protocol message, every fault shape.

These are the acceptance sweeps of EX18: drop/duplicate/delay each
numbered message, crash each site at each step, partition at each step
and heal later — then demand the cross-site atomicity and convergence
oracles hold on the durable logs.  ``CHAOS_BUDGET=long`` (the nightly
job) sweeps every step of every scenario; the default keeps PR latency
sane by capping the step universe per scenario.
"""

import os

import pytest

from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import (
    coordinator_death_sweep,
    join_sweep,
    leave_sweep,
    message_fault_sweep,
    partition_sweep,
    probe_message_steps,
    release_blackout_sweep,
    site_crash_sweep,
    takeover_death_sweep,
)

LONG = os.environ.get("CHAOS_BUDGET") == "long"
STEP_LIMIT = None if LONG else 12

ALL_SCENARIOS = cluster_scenarios.names()


def _failures(results):
    return [result.describe() for result in results if not result.ok]


def test_probe_finds_message_steps():
    spec = cluster_scenarios.get("cluster_group_commit")
    steps = probe_message_steps(spec)
    assert steps, "the probe run must number fabric messages"
    kinds = {detail.split(":")[-1] for __, detail in steps}
    # The 2PC core must appear in the happy-path exchange.
    assert {"gc_begin", "prepare", "vote", "decision"} <= kinds


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_drop_duplicate_delay_every_message(name):
    spec = cluster_scenarios.get(name)
    results = message_fault_sweep(
        spec, faults=("drop", "duplicate", "delay"), limit=STEP_LIMIT
    )
    assert results
    assert not _failures(results)


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_crash_every_site_at_every_message(name):
    spec = cluster_scenarios.get(name)
    results = site_crash_sweep(spec, limit=STEP_LIMIT)
    assert results
    assert not _failures(results)


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_partition_at_every_message_then_heal(name):
    spec = cluster_scenarios.get(name)
    results = partition_sweep(spec, limit=STEP_LIMIT)
    assert results
    assert not _failures(results)


@pytest.mark.parametrize(
    "name", ("cluster_group_commit", "cluster_membership_churn")
)
def test_kill_coordinator_at_every_message(name):
    # Permanent coordinator death at every step: the survivors' takeover
    # must settle every live member *before* the dead site restarts
    # (the two-phase failover judgment), and the full oracles — no dual
    # decision included — must hold after it does.
    spec = cluster_scenarios.get(name)
    results = coordinator_death_sweep(spec, limit=STEP_LIMIT)
    assert results
    assert not _failures(results)


def test_takeover_traffic_survives_a_second_death():
    # Wedge a takeover (kill the coordinator at the first vote), then
    # kill each site at every later step — including the takeover's own
    # queries, evidence, and usurper decision.  The second victim
    # restarts while the coordinator stays dead: force-logged claims
    # must resume, and a reborn-coordinator victim must self-takeover.
    spec = cluster_scenarios.get("cluster_group_commit")
    steps = probe_message_steps(spec)
    wedge = next(n for n, d in steps if d.endswith(":vote"))
    results = takeover_death_sweep(
        spec, wedge, limit=None if LONG else 4
    )
    assert results
    assert not _failures(results)


def test_decision_blackout_then_coordinator_death():
    # The drops-compose-with-kills window: every DECISION (fan-out and
    # heartbeat resends) vanishes while the coordinator dies
    # permanently at each step from its first release attempt onward.
    # Witness-confirmed release means no commit is ever force-logged
    # without an acknowledged witness, so the takeover's presumed abort
    # can never contradict the dead coordinator's log.
    spec = cluster_scenarios.get("cluster_group_commit")
    results = release_blackout_sweep(spec, limit=None if LONG else 6)
    assert results
    assert not _failures(results)


def test_join_at_every_message():
    spec = cluster_scenarios.get("cluster_group_commit")
    results = join_sweep(spec, "delta", limit=STEP_LIMIT)
    assert results
    assert not _failures(results)


def test_leave_at_every_message():
    spec = cluster_scenarios.get("cluster_group_commit")
    results = leave_sweep(spec, "beta", "gamma", limit=STEP_LIMIT)
    assert results
    assert not _failures(results)


def test_failing_result_carries_reproduction_plan():
    # Any red verdict must describe a replayable plan — the contract the
    # replay CLI depends on.
    spec = cluster_scenarios.get("cluster_group_commit")
    results = message_fault_sweep(spec, faults=("drop",), limit=1)
    (result,) = results
    assert result.plan.to_dict()
    assert str(result.step) in result.plan.describe()
