"""Unit tests for the fault plan and the injector's step accounting."""

import pytest

from repro.chaos.faults import (
    GC_ENROLL,
    LOG_APPEND,
    LOG_FLUSH,
    PAGE_SYNC,
    PAGE_WRITE,
    POOL_FLUSH,
    TORN_PREFIX,
    CrashPoint,
    FaultInjector,
    FaultPlan,
)


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert plan.describe() == "no faults"

    def test_any_fault_makes_it_not_noop(self):
        assert not FaultPlan(crash_at=3).is_noop
        assert not FaultPlan(torn_page_at=3).is_noop
        assert not FaultPlan(lose_fsync_at={3}).is_noop
        assert not FaultPlan(crash_at_failpoint=("commit.log", 1)).is_noop
        # keep_tail alone only changes crash aftermath, not injection.
        assert FaultPlan(keep_tail=True).is_noop

    def test_dict_round_trip_preserves_every_field(self):
        plan = FaultPlan(
            crash_at=7,
            torn_page_at=9,
            lose_fsync_at=frozenset({2, 5}),
            crash_at_failpoint=("abort.undo", 2),
            keep_tail=True,
            label="kitchen sink",
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_tolerates_missing_fields(self):
        assert FaultPlan.from_dict({}) == FaultPlan()
        assert FaultPlan.from_dict({"crash_at": 4}) == FaultPlan(crash_at=4)

    def test_with_overrides_single_fields(self):
        plan = FaultPlan(crash_at=3, label="base")
        patched = plan.with_(keep_tail=True)
        assert patched.crash_at == 3
        assert patched.keep_tail
        assert not plan.keep_tail  # original untouched (frozen)

    def test_crash_point_escapes_except_exception(self):
        """The simulated death must not be swallowed by broad handlers."""
        assert not issubclass(CrashPoint, Exception)
        with pytest.raises(CrashPoint):
            try:
                raise CrashPoint(1, PAGE_WRITE)
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("CrashPoint was caught by `except Exception`")


def drive_all_sites(injector, sink):
    """Exercise one step of every instrumented kind, in a fixed order."""
    injector.log_append(10, lambda: sink.append("append"))
    injector.log_flush(lambda: sink.append("flush"))
    injector.pool_flush(2)
    injector.page_write(1, b"x" * 1024, lambda img: sink.append(img))
    injector.page_sync(lambda: sink.append("sync"))
    injector.gc_enroll(3)


class TestFaultInjector:
    def test_steps_are_numbered_in_order_with_kinds(self):
        injector = FaultInjector()
        drive_all_sites(injector, [])
        assert injector.step_count == 6
        assert [s.number for s in injector.trace] == [1, 2, 3, 4, 5, 6]
        assert [s.kind for s in injector.trace] == [
            LOG_APPEND, LOG_FLUSH, POOL_FLUSH, PAGE_WRITE, PAGE_SYNC,
            GC_ENROLL,
        ]
        assert injector.steps_of_kind(PAGE_WRITE) == [4]
        assert injector.steps_of_kind(LOG_APPEND, LOG_FLUSH) == [1, 2]
        assert injector.steps_of_kind() == [1, 2, 3, 4, 5, 6]

    def test_crash_at_step_suppresses_the_effect(self):
        effects = []
        injector = FaultInjector(plan=FaultPlan(crash_at=2))
        with pytest.raises(CrashPoint) as caught:
            drive_all_sites(injector, effects)
        assert effects == ["append"]  # step 2's flush never happened
        assert caught.value.step == 2
        assert caught.value.kind == LOG_FLUSH
        assert injector.fired.number == 2

    def test_disarmed_injector_performs_effects_without_counting(self):
        effects = []
        injector = FaultInjector(plan=FaultPlan(crash_at=1))
        injector.disarm()
        drive_all_sites(injector, effects)
        assert injector.step_count == 0
        assert "append" in effects and "flush" in effects

    def test_torn_page_installs_prefix_then_dies(self):
        installed = []
        injector = FaultInjector(plan=FaultPlan(torn_page_at=1))
        with pytest.raises(CrashPoint) as caught:
            injector.page_write(1, b"n" * 4096, installed.append)
        assert installed == [b"n" * TORN_PREFIX]
        assert caught.value.kind == "torn_" + PAGE_WRITE

    def test_lost_fsync_reports_success_without_flushing(self):
        flushed = []
        injector = FaultInjector(plan=FaultPlan(lose_fsync_at={1}))
        injector.log_flush(lambda: flushed.append(True))  # the lie
        injector.log_flush(lambda: flushed.append(True))  # honest again
        assert flushed == [True]
        assert injector.lied_fsyncs == 1

    def test_failpoints_count_per_name_and_crash_at_nth(self):
        injector = FaultInjector(
            plan=FaultPlan(crash_at_failpoint=("commit.log", 2))
        )
        injector.failpoint("commit.log")
        injector.failpoint("abort.undo")
        with pytest.raises(CrashPoint):
            injector.failpoint("commit.log")
        assert injector.failpoint_counts == {
            "commit.log": 2, "abort.undo": 1,
        }
