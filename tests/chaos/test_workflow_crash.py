"""Workflow crash sweeps: kill the site at every step, resume, judge.

The durability claim of the v2 workflow engine, attacked exhaustively:
for every registered workflow scenario and *every* numbered I/O step, a
power cut at that step followed by restart recovery and
``DurableWorkflowEngine.recover()`` must resume the execution to the
scenario's expected terminal status — with the ACTA/log-replay oracle
battery green at the restart moment, the scenario's final-state checks
green, the fold oracle agreeing with the live engine, and no leaked
transactions.  Both storage engines are swept: the flat WAL and the
sharded segmented WAL; a differential battery then pins the two engines
to the same terminal story under the same fault plan.

The sweeps are exhaustive-by-accounting even at the quick budget (they
are sub-second); ``CHAOS_BUDGET=long`` widens the sharded sweeps to a
second shard count and the differential battery to every crash step.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultPlan
from repro.chaos.workflow import (
    WORKFLOW_SCENARIOS,
    get,
    names,
    probe_workflow,
    run_sharded_workflow_plan,
    run_workflow_plan,
    workflow_crash_sweep,
)

SCENARIOS = names()


class TestRegistry:
    def test_at_least_two_scenarios_registered(self):
        assert len(WORKFLOW_SCENARIOS) >= 2
        assert "workflow_travel_crash" in WORKFLOW_SCENARIOS
        assert "workflow_signal_timeout" in WORKFLOW_SCENARIOS


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestProbes:
    """Clean runs (power cut only at the end) on both engines."""

    def test_flat_probe(self, scenario):
        outcome = probe_workflow(get(scenario))
        assert outcome.ok
        assert outcome.status in get(scenario).expected_terminal

    def test_sharded_probe(self, scenario):
        outcome = probe_workflow(get(scenario), storage="sharded", n_shards=2)
        assert outcome.ok
        assert outcome.status in get(scenario).expected_terminal


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestFlatSweep:
    def test_exhaustive_flat_sweep(self, scenario):
        result = workflow_crash_sweep(get(scenario))
        assert result.ok, result.describe()
        assert result.coverage_complete, result.describe()
        # The sweep must actually exercise resume: mid-workflow crashes
        # leave a started execution behind for recovery to pick up.
        assert result.resumed_runs > 0, result.describe()


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestShardedSweep:
    def test_exhaustive_sharded_sweep(self, scenario, long_budget):
        shard_counts = (2, 4) if long_budget else (2,)
        for n_shards in shard_counts:
            result = workflow_crash_sweep(
                get(scenario), storage="sharded", n_shards=n_shards
            )
            assert result.ok, result.describe()
            assert result.coverage_complete, result.describe()
            assert result.resumed_runs > 0, result.describe()


@pytest.mark.parametrize("scenario", SCENARIOS)
class TestDifferential:
    """Same fault plan, both WALs: the terminal story must match."""

    def test_same_plan_same_terminal(self, scenario, long_budget):
        spec = get(scenario)
        # The step universes differ slightly between engines (the
        # segmented WAL numbers its own flushes), so sweep the shared
        # range; every resumed run on either engine must land on the
        # same expected terminal set, and whenever both engines resumed
        # under the same plan they must agree exactly.
        steps = range(1, 22) if long_budget else range(3, 22, 4)
        for step in steps:
            plan = FaultPlan(crash_at=step, label=f"diff@{step}")
            flat = run_workflow_plan(spec, plan)
            sharded = run_sharded_workflow_plan(spec, plan, n_shards=2)
            assert flat.ok, (step, flat.violations)
            assert sharded.ok, (step, sharded.violations)
            if flat.status is not None and sharded.status is not None:
                assert flat.status is sharded.status, (
                    f"step {step}: flat ended {flat.status},"
                    f" sharded ended {sharded.status}"
                )


class TestReplayObsExport:
    """``--metrics-out``/``--trace-out`` must work for workflow replays:
    the resumed engine is attached through the ``instrument_resume``
    seam, so the artifacts carry the resumed half of the record stream
    on both storage engines."""

    def _replay(self, tmp_path, *argv):
        import json

        from repro.chaos import replay

        metrics = tmp_path / "metrics.json"
        spans = tmp_path / "spans.jsonl"
        code = replay.main([
            *argv,
            "--metrics-out", str(metrics),
            "--trace-out", str(spans),
        ])
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        exported = [
            json.loads(line) for line in spans.read_text().splitlines()
        ]
        return snapshot, exported

    def test_flat_replay_exports_workflow_metrics_and_spans(self, tmp_path):
        snapshot, spans = self._replay(
            tmp_path, "workflow_travel_crash", "--crash-at", "23"
        )
        assert any(
            key.startswith("workflow.") for key in snapshot["counters"]
        ), snapshot["counters"]
        workflow_spans = [s for s in spans if s["trace"] == "workflow"]
        assert workflow_spans, spans
        assert workflow_spans[0]["status"] == "completed"

    def test_sharded_replay_exports_workflow_metrics_and_spans(self, tmp_path):
        snapshot, spans = self._replay(
            tmp_path, "workflow_travel_sellout", "--crash-at", "25",
            "--storage", "sharded", "--shards", "2",
        )
        assert any(
            key.startswith("workflow.") for key in snapshot["counters"]
        ), snapshot["counters"]
        workflow_spans = [s for s in spans if s["trace"] == "workflow"]
        assert workflow_spans, spans
        assert workflow_spans[0]["status"] == "compensated"
