"""Recovery must survive its own crashes (EX13, strengthened).

The original EX13 experiment re-runs recovery twice; these tests crash
recovery *partway through at every one of its own I/O steps*, reboot,
and recover again — as many times as it takes — then require the final
state to be byte-identical to an uninterrupted recovery of the same
crash.  A recovery that is idempotent only at its end, but not at every
internal prefix, fails here.
"""

import pytest

from repro.chaos import scenarios
from repro.chaos.faults import CrashPoint, FaultInjector, FaultPlan
from repro.chaos.oracles import check_idempotent, evaluate_recovery
from repro.chaos.stack import read_state
from repro.chaos.sweep import probe

# A representative mid-run crash per scenario: deep enough that the log
# holds both winners and losers, so recovery has real redo *and* undo
# work whose own I/O can be interrupted.
CASES = [
    ("ex10_commit_abort", None),  # None: picked from the probe, below
    ("checkpoint_window", None),
]


def crash_step_with_undo_work(spec):
    """A crash point right after the scenario's page write-back: the log
    then carries uncommitted effects already on disk — maximal recovery
    work (redo + undo + abort-record writes)."""
    stack = probe(spec)
    pool_flushes = stack.injector.steps_of_kind("pool_flush")
    assert pool_flushes, f"{spec.name} never write-backs dirty pages"
    # Two steps past the flush boundary: the pages went out, then death.
    return min(pool_flushes[-1] + 2, stack.injector.step_count)


def crashed_stack(spec, crash_at):
    stack = spec.build_stack(plan=FaultPlan(crash_at=crash_at))
    with pytest.raises(CrashPoint):
        spec.drive(stack)
    return stack


def recover_uninterrupted(spec, crash_at):
    stack = crashed_stack(spec, crash_at)
    system = stack.restart()
    return stack, system


def count_recovery_steps(spec, crash_at):
    """How many I/O steps does recovery itself perform after this crash?"""
    stack = crashed_stack(spec, crash_at)
    meter = FaultInjector(plan=FaultPlan())  # counts, injects nothing
    stack.restart(recovery_injector=meter)
    return meter.step_count


@pytest.mark.parametrize("name,crash_at", CASES)
class TestRecoveryIdempotence:
    def test_recovery_survives_crashing_at_each_of_its_own_steps(
        self, name, crash_at
    ):
        spec = scenarios.get(name)
        if crash_at is None:
            crash_at = crash_step_with_undo_work(spec)

        reference_stack, reference = recover_uninterrupted(spec, crash_at)
        reference_state = read_state(reference.storage)
        recovery_steps = count_recovery_steps(spec, crash_at)
        assert recovery_steps > 0, "recovery performed no I/O to crash"

        for step in range(1, recovery_steps + 1):
            stack = crashed_stack(spec, crash_at)
            injector = FaultInjector(plan=FaultPlan(crash_at=step))
            # The reboot loop: recovery may die mid-flight repeatedly;
            # each retry runs over whatever the previous attempt left.
            attempts = 0
            while True:
                attempts += 1
                assert attempts <= recovery_steps + 2, (
                    f"recovery of {name} crash@{crash_at} stuck in a"
                    f" reboot loop when crashed at its own step {step}"
                )
                try:
                    system = stack.restart(recovery_injector=injector)
                    break
                except CrashPoint:
                    injector = None  # second attempt runs uninterrupted

            final = read_state(system.storage)
            assert final == reference_state, (
                f"{name}: crashing recovery at its own step {step}"
                f" diverged from uninterrupted recovery"
            )
            report = evaluate_recovery(
                system, stack.intent, stack.durable_acks,
                label=f"{name} recovery-crash@{step}",
            )
            check_idempotent(system, report)
            assert report.ok, report.describe()

    def test_interrupted_then_completed_recovery_passes_oracles(
        self, name, crash_at
    ):
        """Spot-check the whole oracle battery after a double-crash at
        the *last* recovery step — the point where the most healing work
        is at risk of being half-applied."""
        spec = scenarios.get(name)
        if crash_at is None:
            crash_at = crash_step_with_undo_work(spec)
        recovery_steps = count_recovery_steps(spec, crash_at)

        stack = crashed_stack(spec, crash_at)
        injector = FaultInjector(plan=FaultPlan(crash_at=recovery_steps))
        try:
            system = stack.restart(recovery_injector=injector)
        except CrashPoint:
            system = stack.restart()
        report = evaluate_recovery(
            system, stack.intent, stack.durable_acks,
            label=f"{name} recovery-crash@last",
        )
        check_idempotent(system, report)
        assert report.ok, report.describe()
