"""The resilience runtime under injected faults.

Validates the repro.resilience layer with the chaos harness:

* the ``lease_expiry_mid_delegation`` scenario — watchdog time travel,
  lease reaping, orphan-abort of a stranded delegatee — survives a full
  crash sweep;
* ``transient_fault_sweep`` — every log-flush step of ``retry_saga``
  fails transiently once; a live retry budget absorbs all of them, a
  zero-budget policy surfaces :class:`RetryExhausted` at every step,
  and either way the durable state stays correct;
* ``coalescer_degrade`` — planned lying fsyncs trip the FlushHealth
  breaker into synchronous flushing and a healthy window re-promotes,
  with the transition trace verified by the independent degradation
  oracle;
* stall diagnostics vs the watchdog — the tids a
  :class:`SchedulerStalledError` names are exactly the tids the
  watchdog's lease-expiry rescue aborts on the same wedge.
"""

import pytest

from repro.chaos import scenarios
from repro.chaos.faults import FaultPlan, LOG_FLUSH
from repro.chaos.oracles import check_degradation
from repro.chaos.scenarios import live_violations
from repro.chaos.stack import ChaosStack
from repro.chaos.sweep import (
    crash_sweep,
    probe,
    run_plan,
    transient_fault_sweep,
)
from repro.common.errors import RetryExhausted, TransientIOError
from repro.resilience import RetryPolicy
from repro.runtime.coop import SchedulerStalledError


def live_policy(stack):
    return RetryPolicy(max_attempts=3, clock=stack.manager.clock)


def zero_policy(stack):
    return RetryPolicy.zero_budget(clock=stack.manager.clock)


class TestLeaseExpiryMidDelegation:
    def test_clean_run_reaps_delegator_and_orphan(self):
        spec = scenarios.get("lease_expiry_mid_delegation")
        stack = probe(spec)
        watchdog = stack.resilience.watchdog
        kinds = [record.kind for record in watchdog.reaped]
        assert kinds == ["lease", "orphan"]
        assert watchdog.stats["stall_rescues"] == 1
        assert live_violations(stack) == []

    def test_survives_the_full_crash_sweep(self, keep_tail_modes):
        spec = scenarios.get("lease_expiry_mid_delegation")
        result = crash_sweep(spec, keep_tail_modes=keep_tail_modes)
        assert result.coverage_complete
        assert result.ok, result.describe()


class TestTransientFaultSweep:
    def test_retry_budget_absorbs_every_transient_flush_fault(self):
        spec = scenarios.get("retry_saga")
        result = transient_fault_sweep(spec, policy_factory=live_policy)
        assert result.coverage_complete
        assert result.all_absorbed, result.describe()
        assert result.ok, result.describe()

    def test_zero_budget_surfaces_retry_exhausted_at_every_step(self):
        spec = scenarios.get("retry_saga")
        result = transient_fault_sweep(spec, policy_factory=zero_policy)
        assert result.coverage_complete
        assert result.exhausted_steps == set(result.flush_steps)
        # Even with the error surfaced, the durable state stays correct.
        assert result.ok, result.describe()

    def test_zero_budget_error_is_retry_exhausted(self):
        spec = scenarios.get("retry_saga")
        step = probe(spec).injector.steps_of_kind(LOG_FLUSH)[0]
        outcome = run_plan(
            spec,
            FaultPlan(fail_flush_at=frozenset([step])),
            policy_factory=zero_policy,
        )
        assert isinstance(outcome.model_error, RetryExhausted)
        assert isinstance(outcome.model_error.last_error, TransientIOError)

    def test_no_policy_surfaces_the_raw_transient_error(self):
        spec = scenarios.get("retry_saga")
        step = probe(spec).injector.steps_of_kind(LOG_FLUSH)[0]
        outcome = run_plan(spec, FaultPlan(fail_flush_at=frozenset([step])))
        assert isinstance(outcome.model_error, TransientIOError)
        assert outcome.ok, outcome.oracle.describe()

    def test_retry_policy_retries_the_planned_fault_exactly_once(self):
        spec = scenarios.get("retry_saga")
        step = probe(spec).injector.steps_of_kind(LOG_FLUSH)[0]
        outcome = run_plan(
            spec,
            FaultPlan(fail_flush_at=frozenset([step])),
            policy_factory=live_policy,
        )
        assert outcome.model_error is None
        assert outcome.stack.injector.failed_flushes == 1
        assert outcome.stack.retry_policy.stats["retries"] == 1


class TestCoalescerDegrade:
    def test_healthy_run_never_degrades(self):
        spec = scenarios.get("coalescer_degrade")
        stack = probe(spec)
        health = stack.resilience.health
        assert all(kind == "ok" for kind, __ in health.outcomes)
        assert health.transitions == []
        report = check_degradation(health)
        assert report.ok, report.describe()

    def test_lying_fsyncs_degrade_then_healthy_window_repromotes(self):
        spec = scenarios.get("coalescer_degrade")
        flush_steps = probe(spec).injector.steps_of_kind(LOG_FLUSH)
        # Two consecutive flushes lie (detected by the durable-count
        # audit): degrade_after=2 trips the breaker; the later honest
        # flushes re-promote (repromote_after=2).
        plan = FaultPlan(
            lose_fsync_at=frozenset(flush_steps[1:3]), label="degrade-trip"
        )
        outcome = run_plan(spec, plan)
        assert outcome.ok, outcome.oracle.describe()
        health = outcome.stack.resilience.health
        assert [(t["from"], t["to"]) for t in health.transitions] == [
            ("batching", "degraded"),
            ("degraded", "batching"),
        ]
        assert not health.degraded
        report = check_degradation(health)
        assert report.ok, report.describe()

    def test_degraded_mode_flushes_per_commit(self):
        spec = scenarios.get("coalescer_degrade")
        probe_health = probe(spec).resilience.health
        flush_steps = probe(spec).injector.steps_of_kind(LOG_FLUSH)
        plan = FaultPlan(
            lose_fsync_at=frozenset(flush_steps[1:3]), label="degrade-trip"
        )
        outcome = run_plan(spec, plan)
        assert outcome.ok, outcome.oracle.describe()
        health = outcome.stack.resilience.health
        # While degraded, every enrollment demanded an immediate flush, so
        # the breaker saw strictly more flush outcomes than the batching
        # probe run (which coalesced pairs of commits throughout).
        assert len(health.outcomes) > len(probe_health.outcomes)
        report = check_degradation(health)
        assert report.ok, report.describe()

    def test_survives_the_full_crash_sweep(self, long_budget):
        spec = scenarios.get("coalescer_degrade")
        result = crash_sweep(
            spec,
            include_failpoints=long_budget,
            include_torn=long_budget,
        )
        assert result.coverage_complete
        assert result.ok, result.describe()


class TestStallDiagnosticsVsWatchdog:
    """The tids the stall report names are the tids the watchdog reaps."""

    def _wedge(self, stack):
        """Drive deadlock_cascade, then wedge the schedule: t7 is
        lock-blocked behind t8, which completed but never commits."""
        spec = scenarios.get("deadlock_cascade")
        spec.drive(stack)
        assert live_violations(stack) == []
        rt = stack.runtime
        oids = {}

        def setup(tx):
            oids["w"] = yield tx.create(b"w0")

        t_setup = rt.spawn(setup)
        rt.wait(t_setup)
        stack.commit(t_setup)
        w = oids["w"]

        def writer(tx):
            yield tx.write(w, b"w!")

        t8 = rt.spawn(writer)
        rt.wait(t8)  # completed; holds w's write lock; never commits
        t7 = rt.spawn(writer)  # parks on w's lock behind t8
        return t7, t8

    def test_stuck_tids_match_the_watchdog_abort_set(self):
        stack = ChaosStack(resilience={"scan_interval": 4})
        watchdog = stack.resilience.watchdog
        deadlines = stack.resilience.deadlines
        t7, t8 = self._wedge(stack)
        rt = stack.runtime

        # With the watchdog disabled the wedge is a genuine stall: the
        # diagnostics must name the lock-blocked transaction and what it
        # blocks on.
        watchdog.enabled = False
        deadlines.grant_lease(t7, duration=100)
        with pytest.raises(SchedulerStalledError) as info:
            rt.commit(t7)
        stuck = info.value.stalled_tids()
        assert stuck == [t7]
        [row] = info.value.stalled
        assert t8 in row.blocked_on

        # Re-enabled, the same wedge is rescued by lease-expiry time
        # travel — and the reaped set is exactly the named stuck set.
        watchdog.enabled = True
        assert rt.commit(t7) == 0  # aborted by the watchdog, not stalled
        assert watchdog.abort_set() == stuck
        [record] = watchdog.reaped
        assert record.kind == "lease"

        # The innocent lock holder is untouched and free to commit.
        assert stack.commit(t8)
