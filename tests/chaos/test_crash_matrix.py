"""Crash matrix for group commit: every crash point × batch sizes 1..N.

The FlushCoalescer's enrollment window is where group commit earns (or
loses) its durability story: a commit enrolled in a pending batch has
been *promised* but not yet flushed.  The matrix sweeps every numbered
I/O step — including every ``gc_enroll`` step — for every batch size,
and checks the paper's contract directly on each run:

    every acknowledged commit is either durably recovered (a winner whose
    effect survives) XOR cleanly a loser (fate aborted, effect absent) —
    never half of each, and never a durable ack lost.
"""

import pytest

from repro.chaos import scenarios
from repro.chaos.faults import GC_ENROLL, FaultPlan
from repro.chaos.oracles import analyze_log
from repro.chaos.scenarios import GC_BURST_COMMITS
from repro.chaos.stack import read_state
from repro.chaos.sweep import crash_sweep, probe, run_plan

BATCHES = (1, 2, 3, 4)


def committed_xor_loser(outcome):
    """Assert the recovered-XOR-loser contract for one faulted run.

    Returns the number of acknowledged commits that were recovered, for
    callers that want to assert distribution properties too.
    """
    stack = outcome.stack
    analysis = analyze_log(outcome.system.durable_records)
    state = read_state(outcome.system.storage)
    oids = stack.intent.oids
    recovered = 0
    # Writer i (acked or not) wrote b"w{i+1}" over b"w0" on object w{i}.
    for index in range(GC_BURST_COMMITS):
        oid = oids.get(f"w{index}")
        if oid is None:
            return recovered  # crashed before setup finished
        new, old = b"w%d" % (index + 1), b"w0"
        actual = state.get(oid.value)
        if actual == new:
            recovered += 1
        else:
            # Cleanly a loser: the old value, not a torn in-between.
            assert actual in (old, None), (
                f"object w{index} recovered {actual!r}: neither the"
                f" committed value {new!r} nor the clean pre-value {old!r}"
            )
    # Durable acks must be winners with surviving effects (the oracle
    # checks this too; the matrix re-derives it independently).
    for tid in stack.durable_acks:
        assert tid in analysis.winners
    return recovered


class TestGroupCommitCrashMatrix:
    @pytest.mark.parametrize("batch", BATCHES)
    def test_full_sweep_passes_with_complete_coverage(self, batch,
                                                      keep_tail_modes):
        spec = scenarios.make_group_commit_scenario(batch)
        result = crash_sweep(spec, keep_tail_modes=keep_tail_modes)
        assert result.ok, result.describe()
        assert result.coverage_complete

    @pytest.mark.parametrize("batch", BATCHES)
    def test_enrollment_window_is_in_the_step_universe(self, batch):
        """Batching defers flushes, so commits *enroll*; the sweep must
        actually be crashing inside that window."""
        spec = scenarios.make_group_commit_scenario(batch)
        stack = probe(spec)
        enrollments = stack.injector.steps_of_kind(GC_ENROLL)
        # Every burst commit enrolls (the setup commit does too).
        assert len(enrollments) >= GC_BURST_COMMITS
        # Fewer log flushes than commits once batching kicks in: the
        # coalescer is genuinely coalescing, not degenerating to one
        # flush per commit.
        if batch > 1:
            assert stack.injector.steps_of_kind("log_flush")

    @pytest.mark.parametrize("batch", BATCHES)
    def test_crash_at_every_enrollment_recovered_xor_loser(self, batch):
        spec = scenarios.make_group_commit_scenario(batch)
        stack = probe(spec)
        for step in stack.injector.steps_of_kind(GC_ENROLL):
            outcome = run_plan(spec, FaultPlan(
                crash_at=step, label=f"crash@enroll:{step}"
            ))
            assert outcome.ok, outcome.oracle.describe()
            committed_xor_loser(outcome)

    @pytest.mark.parametrize("batch", BATCHES)
    def test_crash_at_every_step_recovered_xor_loser(self, batch):
        """The explicit XOR contract at *every* crash point, not only
        the enrollment window."""
        spec = scenarios.make_group_commit_scenario(batch)
        stack = probe(spec)
        for step in range(1, stack.injector.step_count + 1):
            outcome = run_plan(spec, FaultPlan(crash_at=step))
            assert outcome.ok, outcome.oracle.describe()
            committed_xor_loser(outcome)

    def test_deferral_window_acks_are_hollow(self):
        """With a batch that never fills mid-burst, a commit acked from
        inside the deferral window has no durable commit record yet —
        the stack must classify it hollow, because a crash right there
        loses it."""
        spec = scenarios.make_group_commit_scenario(4)
        stack = probe(spec)
        # The burst's commits were acked; with max_commits=4 at least one
        # ack was issued while its batch was still pending.
        assert len(stack.acks) > len(stack.durable_acks)
