"""Schedule exploration: recording, replay, minimization, coverage."""

from repro.chaos import scenarios
from repro.chaos.explorer import (
    ScheduleController,
    ScheduleExplorer,
    decode_choices,
    encode_choices,
    identity,
)
from repro.chaos.mutations import dependency_dropped
from repro.chaos.scenarios import live_violations
from repro.core.dependency import DependencyType


class TestScheduleController:
    def test_default_is_round_robin_and_records_it(self):
        controller = ScheduleController()
        assert controller.arrange(["a", "b", "c"]) == ["a", "b", "c"]
        assert controller.arrange(["a", "b"]) == ["a", "b"]
        assert controller.recorded == [(0, 1, 2), (0, 1)]

    def test_replay_reproduces_a_recording_exactly(self):
        seeded = ScheduleController(seed=7)
        first = [seeded.arrange(["a", "b", "c"]) for __ in range(4)]
        replay = ScheduleController(choices=seeded.recorded)
        second = [replay.arrange(["a", "b", "c"]) for __ in range(4)]
        assert first == second
        assert replay.recorded == seeded.recorded

    def test_same_seed_same_schedule(self):
        rounds = [["a", "b", "c"], ["a", "b"], ["a", "b", "c", "d"]]
        one = ScheduleController(seed=42)
        two = ScheduleController(seed=42)
        assert [one.arrange(r) for r in rounds] == [
            two.arrange(r) for r in rounds
        ]

    def test_replay_tolerates_arity_drift(self):
        """Minimization splices rounds in and out; a recorded permutation
        wider or narrower than the live round must still apply."""
        controller = ScheduleController(choices=[(2, 0, 1), (1, 0)])
        # Recorded arity 3, live arity 2: out-of-range index dropped.
        assert controller.arrange(["a", "b"]) == ["a", "b"]
        # Recorded arity 2, live arity 3: missing index appended in order.
        assert controller.arrange(["a", "b", "c"]) == ["b", "a", "c"]

    def test_rounds_past_the_recording_fall_back_to_identity(self):
        controller = ScheduleController(choices=[(1, 0)])
        assert controller.arrange(["a", "b"]) == ["b", "a"]
        assert controller.arrange(["a", "b"]) == ["a", "b"]


class TestChoiceEncoding:
    def test_round_trip(self):
        choices = [(1, 0), (0, 1, 2), (2, 1, 0)]
        assert decode_choices(encode_choices(choices)) == choices

    def test_empty(self):
        assert encode_choices([]) == ""
        assert decode_choices("") == []


def explore_deadlock_cascade(**kwargs):
    spec = scenarios.get("deadlock_cascade")

    def run_one(controller):
        stack = spec.build_stack(schedule=controller)
        spec.drive(stack)
        return live_violations(stack)

    kwargs.setdefault("samples", 12)
    return ScheduleExplorer(run_one, **kwargs), run_one


class TestExploration:
    def test_clean_scenario_explores_clean(self, explorer_samples,
                                           explorer_depth):
        explorer, __ = explore_deadlock_cascade(
            samples=explorer_samples, depth=explorer_depth
        )
        result = explorer.explore()
        assert result.ok, "\n".join(
            f.describe() for f in result.failures
        )
        # Coverage accounting: baseline + systematic + sampled all ran.
        assert result.schedules_run == (
            1 + result.systematic_run + result.sampled_run
        )
        assert result.systematic_run > 0
        assert result.sampled_run == explorer_samples

    def test_dropped_dependency_is_surfaced_with_a_replayable_schedule(self):
        """Knock out AD edges: abort no longer cascades, so some schedule
        commits the dependent after its dependee aborted.  The explorer
        must catch it *and* hand back a schedule that replays it."""
        explorer, run_one = explore_deadlock_cascade()
        with dependency_dropped(DependencyType.AD):
            result = explorer.explore(stop_at_first=True)
            assert result.failures
            failure = result.failures[0]
            assert any("abort-dependency" in v for v in failure.violations)
            # The minimized schedule replays to the same class of failure
            # (replayed inside the mutation: it reproduces the run).
            replayed = run_one(
                ScheduleController(choices=decode_choices(failure.replay_arg()))
            )
            assert any("abort-dependency" in v for v in replayed)

    def test_minimization_reverts_inessential_rounds(self):
        """The dropped-AD failure already fails under round-robin, so the
        minimized counterexample must contain no essential deviations:
        every surviving round is the identity permutation."""
        explorer, __ = explore_deadlock_cascade()
        with dependency_dropped(DependencyType.AD):
            result = explorer.explore(stop_at_first=True)
        failure = result.failures[0]
        assert all(
            perm == identity(len(perm)) for perm in failure.choices
        ), failure.describe()

    def test_describe_names_the_deviating_rounds(self):
        explorer, __ = explore_deadlock_cascade()
        with dependency_dropped(DependencyType.AD):
            result = explorer.explore(stop_at_first=True)
        text = result.failures[0].describe()
        assert "schedule:" in text
        assert "rounds deviating" in text
