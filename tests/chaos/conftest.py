"""Budget knobs for the chaos suite.

The tier-1 run keeps every sweep and exploration quick; the nightly
chaos CI job exports ``CHAOS_BUDGET=long`` to widen the same tests —
both crash-tail models, more sampled schedules, deeper systematic
reordering — without a separate test suite to maintain.
"""

from __future__ import annotations

import os

import pytest

LONG = os.environ.get("CHAOS_BUDGET", "quick") == "long"


@pytest.fixture(scope="session")
def long_budget():
    """True when the run should spend the nightly exploration budget."""
    return LONG


@pytest.fixture(scope="session")
def keep_tail_modes():
    """Crash-tail models to sweep: the nightly budget adds ``keep_tail``
    (the OS wrote the volatile log tail back before the power failed)."""
    return (False, True) if LONG else (False,)


@pytest.fixture(scope="session")
def explorer_samples():
    """Seeded-random schedules per exploration."""
    return 120 if LONG else 25


@pytest.fixture(scope="session")
def explorer_depth():
    """Rounds of systematic permutation enumeration near the root."""
    return 4 if LONG else 3
