"""Crash sweep over the sharded engine's parallel group commit.

The dangerous window is *inside* the cross-shard commit barrier: a
multi-shard transaction eagerly flushes every foreign touched segment,
then writes its commit record into the home segment.  A crash between
those flushes (some segments durable, some not, commit record absent or
present) must still recover to an atomic per-transaction outcome once
the segments are merged by LSN.

The sweep is exhaustive by accounting, in the style of the EX10 sweeps:
a probe run counts every numbered I/O step across *all* segments (one
shared injector), then the scenario is re-run crashing at each step,
recovering, and checking the atomicity oracle every time.
"""

from __future__ import annotations

from repro.chaos.faults import CrashPoint, FaultInjector, FaultPlan
from repro.common.codec import decode_int, encode_int
from repro.common.ids import Tid
from repro.storage.log import CommitRecord
from repro.storage.segmented import ShardedStorageManager

N_SHARDS = 4
N_OBJECTS = 8
# Named objects place by name hash; these names cover shards 0..3 in
# order (verified by test_probe_exercises_the_barrier's busy check).
MULTI_INDEXES = (1, 5, 0, 4)
SINGLE_INDEX = 7
SETUP = Tid(100)
T_MULTI = Tid(1)  # writes objects on every shard: pays the barrier
T_SINGLE = Tid(2)  # single-shard: pure per-shard group commit


def _drive(injector, holder):
    """The scenario: one multi-shard and one single-shard commit.

    ``holder`` receives the live stack as it is built, so a mid-scenario
    :class:`CrashPoint` still leaves the caller holding the store, the
    oids created so far, and markers bracketing the barrier window.
    """
    store = ShardedStorageManager(n_shards=N_SHARDS, injector=injector)
    holder["store"] = store
    oids = holder.setdefault("oids", [])
    for index in range(N_OBJECTS):
        oids.append(
            store.create_object(SETUP, encode_int(0), name=f"obj{index}")
        )
    store.log_commit(SETUP)
    store.sync_log()

    # T_MULTI touches every shard.
    for offset, index in enumerate(MULTI_INDEXES):
        store.write_object(T_MULTI, oids[index], encode_int(offset + 10))
    # T_SINGLE stays on one shard, on an object T_MULTI never touches.
    store.write_object(T_SINGLE, oids[SINGLE_INDEX], encode_int(77))

    holder["barrier_start"] = injector.step_count
    store.log_commit(T_MULTI)  # barrier: foreign flushes, then home
    holder["barrier_end"] = injector.step_count
    store.log_commit(T_SINGLE)
    store.sync_log()


def _writes_of(tid, oids):
    if tid == T_MULTI and len(oids) == N_OBJECTS:
        return {
            oids[index].value: offset + 10
            for offset, index in enumerate(MULTI_INDEXES)
        }
    if tid == T_SINGLE and len(oids) == N_OBJECTS:
        return {oids[SINGLE_INDEX].value: 77}
    return {}


def _check_atomic(store, oids):
    """The oracle: merged-log commit records decide; outcomes are
    all-or-nothing per transaction."""
    durable_commits = set()
    for record in store.log.records():
        if isinstance(record, CommitRecord):
            durable_commits |= record.committed_tids()
    state = store.object_state()

    if SETUP not in durable_commits:
        # Crashed during setup: the later transactions never ran.
        assert T_MULTI not in durable_commits
        assert T_SINGLE not in durable_commits
        return durable_commits

    for oid in oids:
        assert oid.value in state, f"setup object {oid} lost"

    for tid in (T_MULTI, T_SINGLE):
        writes = _writes_of(tid, oids)
        if tid in durable_commits:
            for oid_value, value in writes.items():
                assert decode_int(state[oid_value]) == value, (
                    f"{tid} committed but write to oid {oid_value} lost"
                )
        else:
            for oid_value in writes:
                assert decode_int(state[oid_value]) == 0, (
                    f"{tid} not committed but its write to oid "
                    f"{oid_value} survived"
                )
    return durable_commits


def _probe():
    injector = FaultInjector(plan=FaultPlan())
    holder = {}
    _drive(injector, holder)
    return injector, holder


class TestParallelGroupCommitSweep:
    def test_probe_exercises_the_barrier(self):
        """The clean run must actually contain the dangerous window:
        several I/O steps between the last data append and the moment
        T_MULTI's commit record is durable (the foreign barrier flushes)."""
        injector, holder = _probe()
        assert injector.step_count > 0
        window = range(
            holder["barrier_start"] + 1, holder["barrier_end"] + 1
        )
        assert len(window) >= 2, "barrier window collapsed to one step"
        flushes_in_window = [
            step
            for step in injector.trace
            if step.number in window and step.kind == "log_flush"
        ]
        # Every foreign touched segment flushes inside the barrier.
        assert len(flushes_in_window) >= N_SHARDS - 1
        # All segments got traffic (the transaction really is multi-shard).
        store = holder["store"]
        busy = {
            shard for shard, stats in enumerate(store.segment_stats())
            if stats["appends"] > 0
        }
        assert busy == set(range(N_SHARDS))

    def test_every_crash_point_recovers_atomically(self):
        probe_injector, probe_holder = _probe()
        total = probe_injector.step_count
        barrier_window = set(
            range(
                probe_holder["barrier_start"] + 1,
                probe_holder["barrier_end"] + 1,
            )
        )
        assert total > 0 and barrier_window

        covered = set()
        for crash_at in range(1, total + 1):
            injector = FaultInjector(plan=FaultPlan(crash_at=crash_at))
            holder = {}
            try:
                _drive(injector, holder)
            except CrashPoint as crash:
                covered.add(crash.step)
            store = holder["store"]
            oids = holder["oids"]
            store.crash()
            store.recover()
            _check_atomic(store, oids)

            # Recovery is idempotent: crash/recover again, same state.
            before = dict(store.object_state())
            store.crash()
            store.recover()
            assert dict(store.object_state()) == before

        # Exhaustive by accounting — and therefore the sweep crashed at
        # every step of the barrier window in particular.
        assert covered == set(range(1, total + 1))
        assert barrier_window <= covered
