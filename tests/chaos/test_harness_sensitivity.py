"""Self-validation: the harness must *fail* when the system is broken.

A chaos harness that always passes proves nothing.  Each test here
disables exactly one correctness mechanism (in process, reversibly) and
asserts the matching oracle fires — establishing that the sweeps and
explorations in the rest of this suite are sensitive to the bug classes
they claim to cover.  The final test re-runs everything unmutated to
prove the detections above are caused by the mutations, not by flaky
oracles.
"""

import json

import pytest

from repro.chaos import scenarios
from repro.chaos.explorer import ScheduleExplorer
from repro.chaos.mutations import (
    delegation_unlogged,
    dependency_dropped,
    undo_disabled,
    wal_ordering_broken,
)
from repro.chaos.scenarios import live_violations
from repro.chaos.sweep import ScenarioBrokenError, crash_sweep, probe
from repro.core.dependency import DependencyType


class TestCrashSweepSensitivity:
    def test_disabled_undo_is_caught_by_the_state_oracle(self):
        """No undo phase: losers keep their effects after some crash.
        The sweep must find at least one such crash point and emit a
        complete, replayable failure artifact."""
        with undo_disabled():
            result = crash_sweep(
                scenarios.get("ex10_commit_abort"), stop_at_first=True
            )
        assert result.failures, (
            "sweep passed with recovery-undo disabled: the state oracle"
            " is not sensitive to surviving loser effects"
        )
        artifact = result.failures[0]
        assert any("state" in v for v in artifact.violations)
        # The artifact is a complete reproduction recipe.
        assert "repro.chaos.replay ex10_commit_abort" in artifact.replay
        payload = json.loads(artifact.to_json())
        assert payload["plan"]["crash_at"] == artifact.plan["crash_at"]
        assert payload["replay"] == artifact.replay

    def test_broken_wal_ordering_is_caught_in_the_checkpoint_window(self):
        """Pages flushed without forcing the log first: invisible while
        the full log can re-derive everything, fatal once a truncating
        checkpoint has discarded the history.  The checkpoint-window
        sweep must catch the un-attributable on-disk effects."""
        with wal_ordering_broken():
            result = crash_sweep(
                scenarios.get("checkpoint_window"), stop_at_first=True
            )
        assert result.failures, (
            "sweep passed with the write-ahead rule broken: the"
            " checkpoint-window scenario is not exercising it"
        )
        assert any(
            "state" in v or "durability" in v
            for v in result.failures[0].violations
        )

    def test_unlogged_delegation_is_caught_at_the_probe(self):
        """Delegation that never reaches the log mis-attributes updates
        on *every* path that replays it — including the clean run, whose
        delegated update gets undone with its delegator.  The probe's
        declared-state check refuses to sweep a scenario whose clean run
        is already wrong."""
        with delegation_unlogged():
            with pytest.raises(ScenarioBrokenError):
                probe(scenarios.get("ex10_commit_abort"))


class TestExplorerSensitivity:
    @pytest.mark.parametrize("dep_type,expected", [
        (DependencyType.AD, "abort-dependency"),
        (DependencyType.GC, "group-atomicity"),
    ])
    def test_dropped_edges_surface_as_acta_violations(self, dep_type,
                                                      expected):
        spec = scenarios.get("deadlock_cascade")

        def run_one(controller):
            stack = spec.build_stack(schedule=controller)
            spec.drive(stack)
            return live_violations(stack)

        with dependency_dropped(dep_type):
            result = ScheduleExplorer(run_one, samples=10).explore(
                stop_at_first=True
            )
        assert result.failures, (
            f"exploration passed with {dep_type.name} edges silently"
            f" dropped: the ACTA oracle is not consulted"
        )
        assert any(
            expected in v for v in result.failures[0].violations
        ), result.failures[0].describe()


class TestControl:
    """The unmutated system passes the exact runs mutated above."""

    def test_ex10_sweep_clean_without_mutations(self):
        result = crash_sweep(scenarios.get("ex10_commit_abort"),
                             stop_at_first=True)
        assert result.ok, result.describe()

    def test_checkpoint_window_sweep_clean_without_mutations(self):
        result = crash_sweep(scenarios.get("checkpoint_window"),
                             stop_at_first=True)
        assert result.ok, result.describe()

    def test_deadlock_cascade_explores_clean_without_mutations(self):
        spec = scenarios.get("deadlock_cascade")

        def run_one(controller):
            stack = spec.build_stack(schedule=controller)
            spec.drive(stack)
            return live_violations(stack)

        result = ScheduleExplorer(run_one, samples=10).explore()
        assert result.ok, "\n".join(f.describe() for f in result.failures)

    def test_mutations_restore_cleanly(self):
        """Every mutation context manager unwinds its patch."""
        from repro.storage.buffer import BufferPool
        from repro.storage.recovery import RecoveryManager

        undo_before = RecoveryManager._undo
        with undo_disabled():
            assert RecoveryManager._undo is not undo_before
        assert RecoveryManager._undo is undo_before

        with wal_ordering_broken():
            assert isinstance(BufferPool.__dict__["wal_flush"], property)
        assert BufferPool.wal_flush is None
