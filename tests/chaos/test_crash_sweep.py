"""Exhaustive crash-point sweeps over the named scenarios.

These tests are the paper-facing guarantee: for the EX10 commit/abort
scenario and the checkpoint window, *every* numbered I/O step has been
crashed at, every page write torn, every log flush lied about, and every
semantic failpoint cut — and recovery passed the full oracle battery
each time.  Coverage is asserted by accounting, not by sampling: the
covered step set must equal ``{1..N}`` exactly.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import scenarios
from repro.chaos.faults import LOG_FLUSH, PAGE_WRITE, FaultPlan
from repro.chaos.stack import ChaosStack
from repro.chaos.sweep import (
    ScenarioBrokenError,
    crash_sweep,
    probe,
    replay_command,
    run_plan,
)


class TestEx10Sweep:
    def test_every_crash_point_survived(self, keep_tail_modes):
        spec = scenarios.get("ex10_commit_abort")
        result = crash_sweep(spec, keep_tail_modes=keep_tail_modes)
        assert result.ok, result.describe()
        # Exhaustiveness by accounting: all numbered steps crashed at.
        assert result.total_steps > 0
        assert result.coverage_complete
        assert result.crash_steps_covered == set(
            range(1, result.total_steps + 1)
        )

    def test_variant_families_cover_their_whole_universe(self):
        spec = scenarios.get("ex10_commit_abort")
        stack = probe(spec)
        result = crash_sweep(spec)
        assert result.ok, result.describe()
        # Torn writes at every page write, lost fsyncs at every flush.
        assert result.torn_steps_covered == set(
            stack.injector.steps_of_kind(PAGE_WRITE)
        )
        assert result.lost_fsync_steps_covered == set(
            stack.injector.steps_of_kind(LOG_FLUSH)
        )
        # Every occurrence of every semantic failpoint was cut.
        expected_failpoints = {
            (name, nth)
            for name, count in stack.injector.failpoint_counts.items()
            for nth in range(1, count + 1)
        }
        assert expected_failpoints  # the scenario does hit failpoints
        assert result.failpoints_covered == expected_failpoints

    def test_scenario_exercises_the_full_taxonomy(self):
        """EX10's step universe spans the whole fault-point taxonomy
        except group-commit enrollment (covered by the matrix tests)."""
        stack = probe(scenarios.get("ex10_commit_abort"))
        kinds = {step.kind for step in stack.injector.trace}
        assert {"log_append", "log_flush", "pool_flush", "page_write",
                "page_sync"} <= kinds


class TestCheckpointWindowSweep:
    def test_every_crash_point_survived(self, keep_tail_modes):
        spec = scenarios.get("checkpoint_window")
        result = crash_sweep(spec, keep_tail_modes=keep_tail_modes)
        assert result.ok, result.describe()
        assert result.coverage_complete

    def test_window_actually_contains_the_dangerous_flush(self):
        """The scenario must flush uncommitted pages *after* truncation —
        otherwise it would not be testing the write-ahead rule at all."""
        stack = probe(scenarios.get("checkpoint_window"))
        kinds = [step.kind for step in stack.injector.trace]
        last_pool_flush = len(kinds) - 1 - kinds[::-1].index("pool_flush")
        assert "page_write" in kinds[last_pool_flush:]
        # Truncation happened: the durable log is shorter than the work.
        assert stack.intent.baseline


class TestHarnessPlumbing:
    def test_probe_rejects_a_scenario_that_lies_about_its_state(self):
        spec = scenarios.ScenarioSpec(
            name="liar",
            description="declares a state its clean run never reaches",
            drive=_lying_drive,
        )
        with pytest.raises(ScenarioBrokenError):
            probe(spec)

    def test_run_plan_records_the_crash_it_injected(self):
        spec = scenarios.get("ex10_commit_abort")
        outcome = run_plan(spec, FaultPlan(crash_at=5))
        assert outcome.ok, outcome.oracle.describe()
        assert outcome.crash is not None
        assert outcome.crash.step == 5

    def test_completed_runs_still_face_a_power_cut(self):
        """A lost-fsync plan lets the run finish; the harness must still
        cut power afterwards, or the lie would never matter.  Losing the
        *final* flush makes the last commit's ack hollow — and the
        oracle, holding the system only to durable acks, still passes."""
        spec = scenarios.get("ex10_commit_abort")
        stack = probe(spec)
        final_flush = stack.injector.steps_of_kind(LOG_FLUSH)[-1]
        outcome = run_plan(
            spec, FaultPlan(lose_fsync_at=frozenset([final_flush]))
        )
        assert outcome.crash is None  # the run completed
        assert outcome.stack.injector.lied_fsyncs == 1
        assert len(outcome.stack.durable_acks) < len(outcome.stack.acks)
        assert outcome.ok, outcome.oracle.describe()

    def test_universal_fsync_lies_are_catastrophic_and_visible(self):
        """When *every* fsync is a lie, pages flushed under the WAL rule
        reach disk while the log never does — no protocol survives that
        device (the real-world fsyncgate failure).  The harness must
        surface it, not absorb it: the exact-state oracle fires."""
        spec = scenarios.get("ex10_commit_abort")
        stack = probe(spec)
        flush_steps = stack.injector.steps_of_kind(LOG_FLUSH)
        outcome = run_plan(
            spec, FaultPlan(lose_fsync_at=frozenset(flush_steps))
        )
        assert outcome.crash is None
        assert outcome.stack.injector.lied_fsyncs == len(flush_steps)
        assert outcome.stack.durable_acks == []  # every ack was hollow
        assert not outcome.ok
        assert any("state" in v for v in outcome.oracle.violations)

    def test_replay_command_is_a_complete_recipe(self):
        plan = FaultPlan(crash_at=12, keep_tail=True, label="crash@12+tail")
        command = replay_command("ex10_commit_abort", plan)
        assert command.startswith(
            "PYTHONPATH=src python -m repro.chaos.replay ex10_commit_abort"
        )
        assert '"crash_at": 12' in command
        assert '"keep_tail": true' in command


def _run_replay(*args):
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.chaos.replay", *args],
        capture_output=True, text=True, env=env, cwd=repo_root,
    )


class TestReplayCli:
    def test_replay_reruns_a_plan_end_to_end(self):
        completed = _run_replay("ex10_commit_abort", "--crash-at", "5")
        assert completed.returncode == 0, completed.stderr
        assert "oracle OK" in completed.stdout

    def test_replay_lists_known_scenarios(self):
        completed = _run_replay("--list")
        assert completed.returncode == 0, completed.stderr
        assert "ex10_commit_abort" in completed.stdout
        assert "checkpoint_window" in completed.stdout


def _lying_drive(stack):
    rt = stack.runtime
    oids = {}

    def setup(tx):
        oids["a"] = yield tx.create(b"v0")

    rt.run(setup)
    stack.intent.expected_clean = {oids["a"].value: b"not what happened"}


class TestAckTruthfulness:
    def test_ack_with_durable_commit_record_is_durable(self):
        stack = ChaosStack()
        rt = stack.runtime

        def writer(tx):
            yield tx.create(b"v1")

        result = rt.run(writer)
        stack.storage.sync_log()
        stack.note_ack(result.tid)
        assert stack.durable_acks == [result.tid]

    def test_ack_over_lost_fsync_is_hollow(self):
        """If the device lied about the flush, the ack must not be
        classified durable — the oracle holds the system only to promises
        the hardware actually kept."""
        stack = ChaosStack(plan=FaultPlan(lose_fsync_at=frozenset(range(1, 100))))
        rt = stack.runtime

        def writer(tx):
            yield tx.create(b"v1")

        result = rt.run(writer)
        stack.storage.sync_log()  # lied about
        stack.note_ack(result.tid)
        assert stack.acks == [result.tid]
        assert stack.durable_acks == []
