"""Value codecs round-trip correctly."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.codec import (
    decode_int,
    decode_json,
    decode_str,
    encode_int,
    encode_json,
    encode_str,
)


class TestIntCodec:
    def test_round_trip(self):
        for value in (0, 1, -1, 10**30, -(10**30)):
            assert decode_int(encode_int(value)) == value

    @given(st.integers())
    def test_round_trip_property(self, value):
        assert decode_int(encode_int(value)) == value


class TestStrCodec:
    @given(st.text())
    def test_round_trip_property(self, value):
        assert decode_str(encode_str(value)) == value


class TestJsonCodec:
    def test_round_trip_records(self):
        record = {"name": "Delta", "available": 3, "bookings": [["a", "b"]]}
        assert decode_json(encode_json(record)) == record

    def test_deterministic_encoding(self):
        """Sorted keys: equal dicts encode identically (stable images)."""
        a = encode_json({"x": 1, "y": 2})
        b = encode_json({"y": 2, "x": 1})
        assert a == b

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(),
            lambda children: st.lists(children)
            | st.dictionaries(st.text(), children),
            max_leaves=10,
        )
    )
    def test_round_trip_property(self, value):
        assert decode_json(encode_json(value)) == value
