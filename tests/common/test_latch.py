"""The EOS S/X latch: modes, S-counter, X-bit anti-starvation."""

import threading
import time

import pytest

from repro.common.errors import LatchError
from repro.common.latch import Latch, LatchMode


class TestBasicModes:
    def test_shared_acquire_release(self):
        latch = Latch("t")
        assert latch.try_acquire(LatchMode.SHARED)
        assert latch.s_count == 1
        latch.release(LatchMode.SHARED)
        assert latch.s_count == 0

    def test_many_shared_holders(self):
        latch = Latch()
        for __ in range(5):
            assert latch.try_acquire(LatchMode.SHARED)
        assert latch.s_count == 5

    def test_exclusive_excludes_shared(self):
        latch = Latch()
        assert latch.try_acquire(LatchMode.EXCLUSIVE)
        assert latch.x_held
        assert not latch.try_acquire(LatchMode.SHARED)
        assert not latch.try_acquire(LatchMode.EXCLUSIVE)

    def test_shared_excludes_exclusive(self):
        latch = Latch()
        latch.try_acquire(LatchMode.SHARED)
        assert not latch.try_acquire(LatchMode.EXCLUSIVE)

    def test_release_without_hold_raises(self):
        latch = Latch()
        with pytest.raises(LatchError):
            latch.release(LatchMode.SHARED)
        with pytest.raises(LatchError):
            latch.release(LatchMode.EXCLUSIVE)

    def test_context_manager(self):
        latch = Latch()
        with latch.held(LatchMode.EXCLUSIVE):
            assert latch.x_held
        assert not latch.x_held

    def test_context_manager_releases_on_exception(self):
        latch = Latch()
        with pytest.raises(RuntimeError):
            with latch.held(LatchMode.SHARED):
                raise RuntimeError("boom")
        assert latch.s_count == 0


class TestXBitAntiStarvation:
    """The X-bit blocks *new* readers while a writer waits (section 4.1)."""

    def test_waiting_writer_blocks_new_readers(self):
        latch = Latch()
        latch.try_acquire(LatchMode.SHARED)  # an existing reader

        writer_done = threading.Event()

        def writer():
            latch.acquire(LatchMode.EXCLUSIVE)
            writer_done.set()
            latch.release(LatchMode.EXCLUSIVE)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        # Wait until the writer is registered as waiting (X-bit set).
        deadline = time.time() + 2
        while not latch.x_bit and time.time() < deadline:
            time.sleep(0.001)
        assert latch.x_bit
        # A new reader must be refused while the X-bit is up.
        assert not latch.try_acquire(LatchMode.SHARED)
        # The existing reader drains; the writer gets in.
        latch.release(LatchMode.SHARED)
        assert writer_done.wait(timeout=2)
        thread.join(timeout=2)
        # After the writer leaves, readers flow again.
        assert latch.try_acquire(LatchMode.SHARED)

    def test_timeout_expires(self):
        latch = Latch()
        latch.try_acquire(LatchMode.EXCLUSIVE)
        assert latch.acquire(LatchMode.SHARED, timeout=0.01) is False
        assert latch.acquire(LatchMode.EXCLUSIVE, timeout=0.01) is False

    def test_x_bit_cleared_after_timeout(self):
        latch = Latch()
        latch.try_acquire(LatchMode.SHARED)
        assert latch.acquire(LatchMode.EXCLUSIVE, timeout=0.01) is False
        assert not latch.x_bit
        # Readers are admitted again once no writer waits.
        assert latch.try_acquire(LatchMode.SHARED)


class TestConcurrency:
    def test_mutual_exclusion_under_contention(self):
        """No two writers (and no reader+writer) overlap."""
        latch = Latch()
        counters = {"value": 0, "max_seen": 0}
        errors = []

        def writer():
            for __ in range(50):
                latch.acquire(LatchMode.EXCLUSIVE)
                try:
                    counters["value"] += 1
                    if counters["value"] != 1:
                        errors.append("overlapping exclusive holders")
                    counters["value"] -= 1
                finally:
                    latch.release(LatchMode.EXCLUSIVE)

        def reader():
            for __ in range(50):
                if latch.acquire(LatchMode.SHARED, timeout=2):
                    try:
                        if counters["value"] != 0:
                            errors.append("reader overlapped a writer")
                    finally:
                        latch.release(LatchMode.SHARED)

        threads = [threading.Thread(target=writer) for __ in range(3)]
        threads += [threading.Thread(target=reader) for __ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        assert latch.s_count == 0 and not latch.x_held
