"""Logical clock behaviour."""

import threading

import pytest

from repro.common.clock import LogicalClock


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now() == 0

    def test_custom_start(self):
        assert LogicalClock(start=10).now() == 10

    def test_tick_advances_and_returns(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        assert clock.now() == 6

    def test_now_does_not_advance(self):
        clock = LogicalClock()
        clock.now()
        clock.now()
        assert clock.now() == 0

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().tick(-1)

    def test_advance_to_moves_forward_only(self):
        clock = LogicalClock()
        clock.advance_to(10)
        assert clock.now() == 10
        clock.advance_to(5)
        assert clock.now() == 10

    def test_thread_safety_no_lost_ticks(self):
        clock = LogicalClock()

        def spin():
            for __ in range(1000):
                clock.tick()

        threads = [threading.Thread(target=spin) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.now() == 4000
