"""The chained hash table and the double-hash index of section 4.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashtable import ChainedHashTable, DoubleHashIndex
from repro.common.ids import Tid


class TestChainedHashTable:
    def test_put_get(self):
        table = ChainedHashTable()
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("b") is None
        assert table.get("b", 42) == 42

    def test_put_replaces(self):
        table = ChainedHashTable()
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a") == 2
        assert len(table) == 1

    def test_remove(self):
        table = ChainedHashTable()
        table.put("a", 1)
        assert table.remove("a") == 1
        assert table.remove("a") is None
        assert len(table) == 0

    def test_contains_and_iter(self):
        table = ChainedHashTable()
        for key in ("x", "y", "z"):
            table.put(key, key.upper())
        assert "x" in table and "w" not in table
        assert sorted(table) == ["x", "y", "z"]
        assert sorted(table.values()) == ["X", "Y", "Z"]

    def test_resizes_under_load(self):
        table = ChainedHashTable(buckets=8)
        for index in range(1000):
            table.put(index, index)
        assert table.bucket_count > 8
        assert len(table) == 1000
        assert all(table.get(index) == index for index in range(1000))

    def test_longest_chain_reasonable_after_resize(self):
        table = ChainedHashTable(buckets=8)
        for index in range(1000):
            table.put(index, index)
        assert table.longest_chain() <= 16

    def test_bad_bucket_count(self):
        with pytest.raises(ValueError):
            ChainedHashTable(buckets=0)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "remove"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_dict_model(self, commands):
        """Property: the table behaves exactly like a dict."""
        table = ChainedHashTable(buckets=2)
        model = {}
        for action, key in commands:
            if action == "put":
                table.put(key, key * 2)
                model[key] = key * 2
            else:
                assert table.remove(key) == model.pop(key, None)
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.get(key) == value


class TestDoubleHashIndex:
    def test_lookup_by_both_sides(self):
        index = DoubleHashIndex()
        index.add(Tid(1), Tid(2), "a")
        index.add(Tid(1), Tid(3), "b")
        index.add(Tid(4), Tid(2), "c")
        assert sorted(index.by_left(Tid(1))) == ["a", "b"]
        assert sorted(index.by_right(Tid(2))) == ["a", "c"]
        assert index.by_left(Tid(9)) == []

    def test_involving_deduplicates(self):
        index = DoubleHashIndex()
        index.add(Tid(1), Tid(1), "self")
        assert index.involving(Tid(1)) == ["self"]

    def test_same_pair_many_items(self):
        index = DoubleHashIndex()
        index.add(Tid(1), Tid(2), "a")
        index.add(Tid(1), Tid(2), "b")
        assert sorted(index.by_left(Tid(1))) == ["a", "b"]

    def test_remove(self):
        index = DoubleHashIndex()
        index.add(Tid(1), Tid(2), "a")
        index.remove(Tid(1), Tid(2), "a")
        assert index.by_left(Tid(1)) == []
        assert index.by_right(Tid(2)) == []
        assert len(index) == 0

    def test_remove_missing_is_noop(self):
        index = DoubleHashIndex()
        index.remove(Tid(1), Tid(2), "ghost")
        assert len(index) == 0

    def test_none_key_allowed(self):
        """Wildcard-receiver permits index under None."""
        index = DoubleHashIndex()
        index.add(Tid(1), None, "wildcard")
        assert index.by_left(Tid(1)) == ["wildcard"]
        assert index.by_right(None) == ["wildcard"]
