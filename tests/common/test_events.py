"""Event bus and recorder behaviour."""

from repro.common.clock import LogicalClock
from repro.common.events import Event, EventBus, EventKind, EventRecorder
from repro.common.ids import Tid


class TestEventBus:
    def test_emit_without_subscribers_is_cheap(self):
        bus = EventBus()
        assert bus.emit(EventKind.BEGIN, Tid(1)) is None

    def test_delivery_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e.kind)))
        bus.subscribe(lambda e: seen.append(("second", e.kind)))
        bus.emit(EventKind.BEGIN, Tid(1))
        assert seen == [
            ("first", EventKind.BEGIN),
            ("second", EventKind.BEGIN),
        ]

    def test_unsubscribe(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.unsubscribe(recorder)
        bus.emit(EventKind.ABORTED, Tid(1))
        assert recorder.kinds() == [EventKind.BEGIN]

    def test_unsubscribe_unknown_is_noop(self):
        EventBus().unsubscribe(lambda e: None)

    def test_ticks_come_from_the_clock(self):
        clock = LogicalClock()
        bus = EventBus(clock)
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        ticks = [event.tick for event in recorder.events]
        assert ticks == sorted(ticks)
        assert ticks[0] < ticks[1]

    def test_detail_payload(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.DELEGATE, Tid(1), to=Tid(2), oids=(1, 2))
        event = recorder.events[0]
        assert event.detail["to"] == Tid(2)
        assert event.detail["oids"] == (1, 2)

    def test_repr_is_readable(self):
        event = Event(EventKind.READ, Tid(3), tick=7, detail={"oid": 1})
        assert "read" in repr(event)
        assert "t=7" in repr(event)


class TestEventRecorder:
    def test_of_kind_and_clear(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.BEGIN, Tid(2))
        assert len(recorder.of_kind(EventKind.BEGIN)) == 2
        recorder.clear()
        assert recorder.events == []
