"""Event bus and recorder behaviour."""

import threading

from repro.common.clock import LogicalClock
from repro.common.events import Event, EventBus, EventKind, EventRecorder
from repro.common.ids import Tid


class TestEventBus:
    def test_emit_without_subscribers_is_cheap(self):
        bus = EventBus()
        assert bus.emit(EventKind.BEGIN, Tid(1)) is None

    def test_delivery_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e.kind)))
        bus.subscribe(lambda e: seen.append(("second", e.kind)))
        bus.emit(EventKind.BEGIN, Tid(1))
        assert seen == [
            ("first", EventKind.BEGIN),
            ("second", EventKind.BEGIN),
        ]

    def test_unsubscribe(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.unsubscribe(recorder)
        bus.emit(EventKind.ABORTED, Tid(1))
        assert recorder.kinds() == [EventKind.BEGIN]

    def test_unsubscribe_unknown_is_noop(self):
        EventBus().unsubscribe(lambda e: None)

    def test_unsubscribe_matches_by_identity_not_equality(self):
        # A subscriber whose class overrides __eq__ to say "equal to
        # everything" must not be able to detach someone else's
        # registration: removal compares identity, not equality.
        class Promiscuous:
            def __eq__(self, other):
                return True

            def __ne__(self, other):
                return False

            def __hash__(self):
                return 0

            def __call__(self, event):
                pass

        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.subscribe(Promiscuous())
        bus.unsubscribe(Promiscuous())  # never-subscribed instance
        bus.emit(EventKind.BEGIN, Tid(1))
        assert recorder.kinds() == [EventKind.BEGIN]

    def test_unsubscribe_removes_only_first_registration(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        assert recorder.kinds() == [EventKind.BEGIN, EventKind.BEGIN]
        bus.unsubscribe(recorder)
        bus.emit(EventKind.COMMITTED, Tid(1))
        # The duplicate subscription survives: one delivery, not zero.
        assert recorder.kinds()[2:] == [EventKind.COMMITTED]
        bus.unsubscribe(recorder)
        bus.emit(EventKind.ABORTED, Tid(1))
        assert len(recorder.events) == 3

    def test_clockless_bus_still_orders_events(self):
        # Regression: a bus without a clock used to stamp every event
        # tick=0, breaking the documented total-order contract.
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.BEGIN, Tid(2))
        ticks = [event.tick for event in recorder.events]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)
        assert ticks[0] > 0

    def test_kind_filtered_delivery_survives_rewire(self):
        # The per-kind dispatch cache is rebuilt lazily after any
        # (un)subscribe; deliveries must respect every subscriber's
        # filter across that rebuild.
        bus = EventBus()
        begins = EventRecorder()
        both = EventRecorder()
        bus.subscribe(begins, kinds=(EventKind.BEGIN,))
        bus.emit(EventKind.BEGIN, Tid(1))  # populate the dispatch cache
        bus.subscribe(both, kinds=(EventKind.BEGIN, EventKind.COMMITTED))
        bus.emit(EventKind.BEGIN, Tid(2))
        bus.emit(EventKind.COMMITTED, Tid(2))
        assert begins.kinds() == [EventKind.BEGIN, EventKind.BEGIN]
        assert both.kinds() == [EventKind.BEGIN, EventKind.COMMITTED]
        bus.unsubscribe(begins)
        bus.emit(EventKind.BEGIN, Tid(3))
        assert len(begins.of_kind(EventKind.BEGIN)) == 2
        assert len(both.of_kind(EventKind.BEGIN)) == 2

    def test_subscribe_unsubscribe_racing_emit(self):
        # Emitters race churning subscribers; the bus must never drop a
        # stable subscriber's delivery, raise, or leave the dispatch
        # cache pointing at a detached callback.
        clock = LogicalClock()
        bus = EventBus(clock)
        stable = EventRecorder()
        bus.subscribe(stable, kinds=(EventKind.BEGIN,))
        stop = threading.Event()
        errors = []

        def churn():
            def ephemeral(event):
                pass

            try:
                while not stop.is_set():
                    bus.subscribe(ephemeral, kinds=(EventKind.BEGIN,))
                    bus.unsubscribe(ephemeral)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        emits = 400
        threads = [threading.Thread(target=churn) for __ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for value in range(emits):
                bus.emit(EventKind.BEGIN, Tid(value))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        assert len(stable.events) == emits
        # After the churn settles, delivery is exactly the stable set.
        late = EventRecorder()
        bus.subscribe(late)
        bus.emit(EventKind.BEGIN, Tid(emits))
        assert len(stable.events) == emits + 1
        assert late.kinds() == [EventKind.BEGIN]

    def test_ticks_come_from_the_clock(self):
        clock = LogicalClock()
        bus = EventBus(clock)
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        ticks = [event.tick for event in recorder.events]
        assert ticks == sorted(ticks)
        assert ticks[0] < ticks[1]

    def test_detail_payload(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.DELEGATE, Tid(1), to=Tid(2), oids=(1, 2))
        event = recorder.events[0]
        assert event.detail["to"] == Tid(2)
        assert event.detail["oids"] == (1, 2)

    def test_repr_is_readable(self):
        event = Event(EventKind.READ, Tid(3), tick=7, detail={"oid": 1})
        assert "read" in repr(event)
        assert "t=7" in repr(event)


class TestEventRecorder:
    def test_of_kind_and_clear(self):
        bus = EventBus()
        recorder = EventRecorder()
        bus.subscribe(recorder)
        bus.emit(EventKind.BEGIN, Tid(1))
        bus.emit(EventKind.COMMITTED, Tid(1))
        bus.emit(EventKind.BEGIN, Tid(2))
        assert len(recorder.of_kind(EventKind.BEGIN)) == 2
        recorder.clear()
        assert recorder.events == []
