"""Identifier types: null tid semantics, ordering, generators."""

import pytest

from repro.common.ids import (
    NULL_TID,
    IdGenerator,
    Lsn,
    ObjectId,
    Tid,
    lsn_generator,
    tid_generator,
)


class TestTid:
    def test_null_tid_is_falsy(self):
        assert not NULL_TID
        assert not Tid(0)

    def test_nonnull_tid_is_truthy(self):
        assert Tid(1)
        assert Tid(10**9)

    def test_equality_and_hash(self):
        assert Tid(3) == Tid(3)
        assert Tid(3) != Tid(4)
        assert len({Tid(3), Tid(3), Tid(4)}) == 2

    def test_ordering_follows_value(self):
        assert Tid(1) < Tid(2) < Tid(10)

    def test_repr_marks_null(self):
        assert "null" in repr(NULL_TID)
        assert "7" in repr(Tid(7))

    def test_paper_style_null_check(self):
        # if ((t = initiate(f)) != NULL) translates to `if t:`
        t = NULL_TID
        assert (t or "failed") == "failed"


class TestObjectId:
    def test_name_is_cosmetic(self):
        assert ObjectId(5, name="a") == ObjectId(5, name="b")
        assert hash(ObjectId(5, name="a")) == hash(ObjectId(5, name="b"))

    def test_name_shows_in_repr(self):
        assert "acct" in repr(ObjectId(1, name="acct"))

    def test_ordering(self):
        assert ObjectId(1) < ObjectId(2)


class TestLsn:
    def test_total_order(self):
        assert Lsn(0) < Lsn(1) < Lsn(100)

    def test_equality(self):
        assert Lsn(4) == Lsn(4)


class TestGenerators:
    def test_tid_generator_starts_at_one(self):
        gen = tid_generator()
        assert gen.next() == Tid(1)
        assert gen.next() == Tid(2)

    def test_lsn_generator_monotone(self):
        gen = lsn_generator()
        values = [gen.next() for __ in range(5)]
        assert values == sorted(values)
        assert values[0] == Lsn(1)

    def test_custom_start(self):
        gen = IdGenerator(Tid, start=100)
        assert gen.next() == Tid(100)

    def test_generators_are_independent(self):
        first, second = tid_generator(), tid_generator()
        first.next()
        first.next()
        assert second.next() == Tid(1)
