"""Property: the indexed permit table agrees with a linear-scan oracle.

``PermitTable.allows`` is now a giver-keyed dict probe on the OD; this
suite drives random permit histories — all four permit forms, the
transitive closure, ``remove_involving``, and ``rewrite_giver`` — and
checks after every step that

* every ``allows(oid, holder, requester, op)`` answer matches a naive
  scan over ``od.permits`` (the pre-index semantics), and
* the per-OD giver/receiver buckets are exactly partitions of the
  ``od.permits`` list (index-consistency: nothing leaked, nothing lost).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import ObjectId, Tid
from repro.core.locks import ObjectRegistry
from repro.core.permits import PermitTable
from repro.core.semantics import READ, WRITE

N_TXNS = 4
N_OBJECTS = 3

tids = st.integers(1, N_TXNS)
oids = st.integers(1, N_OBJECTS)
operations = st.sampled_from([READ, WRITE, None])

command = st.one_of(
    st.tuples(st.just("grant"), oids, tids, tids | st.none(), operations),
    st.tuples(
        st.just("remove"), tids, st.none(), st.none(), st.none()
    ),
    st.tuples(st.just("rewrite"), tids, tids, st.none(), st.none()),
)


def allows_oracle(permits, oid, holder, requester, operation):
    """The pre-index implementation: scan every permit on the OD."""
    return any(
        pd.giver == holder and pd.covers(requester, operation)
        for pd in permits.permits_on(oid)
    )


def assert_index_consistent(registry):
    """The giver/receiver buckets must partition ``od.permits`` exactly."""
    for od in registry.all_descriptors():
        by_giver = [
            pd for bucket in od._permits_by_giver.values() for pd in bucket
        ]
        assert sorted(by_giver, key=id) == sorted(od.permits, key=id)
        for giver, bucket in od._permits_by_giver.items():
            assert bucket, "empty bucket left behind"
            assert all(pd.giver == giver for pd in bucket)
        explicit = [pd for pd in od.permits if pd.receiver is not None]
        by_receiver = [
            pd
            for bucket in od._permits_by_receiver.values()
            for pd in bucket
        ]
        assert sorted(by_receiver, key=id) == sorted(explicit, key=id)
        for receiver, bucket in od._permits_by_receiver.items():
            assert bucket, "empty receiver bucket left behind"
            assert all(pd.receiver == receiver for pd in bucket)


def assert_agrees_with_oracle(permits):
    for oid_value in range(1, N_OBJECTS + 1):
        oid = ObjectId(oid_value)
        for holder in range(1, N_TXNS + 1):
            for requester in range(1, N_TXNS + 1):
                for operation in (READ, WRITE):
                    indexed = permits.allows(
                        oid, Tid(holder), Tid(requester), operation
                    )
                    naive = allows_oracle(
                        permits, oid, Tid(holder), Tid(requester), operation
                    )
                    assert indexed == naive


class TestPermitIndexAgreesWithOracle:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(command, max_size=30))
    def test_random_histories(self, commands):
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        for kind, first, second, third, fourth in commands:
            if kind == "grant":
                receiver = Tid(third) if third is not None else None
                permits.grant(
                    ObjectId(first), Tid(second),
                    receiver=receiver, operation=fourth,
                )
            elif kind == "remove":
                permits.remove_involving(Tid(first))
            elif kind == "rewrite":
                permits.rewrite_giver(Tid(first), Tid(second))
            assert_index_consistent(registry)
            assert_agrees_with_oracle(permits)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 8))
    def test_transitive_chain_closure_probes_match(self, length):
        """After materializing a t_1→…→t_n chain closure, every derived
        pair answers identically through the index and the scan."""
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        ob = ObjectId(1)
        for value in range(1, length):
            permits.grant(
                ob, Tid(value), receiver=Tid(value + 1), operation=WRITE
            )
        assert len(permits) == length * (length - 1) // 2
        for giver in range(1, length + 1):
            for receiver in range(1, length + 1):
                expected = giver < receiver
                assert (
                    permits.allows(ob, Tid(giver), Tid(receiver), WRITE)
                    == expected
                )
                assert allows_oracle(
                    permits, ob, Tid(giver), Tid(receiver), WRITE
                ) == expected
        assert_index_consistent(registry)
