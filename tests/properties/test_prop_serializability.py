"""Property: atomic-model executions are conflict-serializable.

Random concurrent workloads (random seeds, mixes, contention levels) run
under plain locking — no permits, no delegation — must always produce a
committed history whose conflict graph is acyclic, and data integrity
(value == number of committed increments) must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acta.history import HistoryRecorder
from repro.acta.serializability import is_conflict_serializable
from repro.bench.workload import WorkloadSpec, bodies_for, populate_objects
from repro.common.codec import decode_int
from repro.runtime.coop import CooperativeRuntime


class TestSerializabilityProperty:
    @given(
        seed=st.integers(0, 10**6),
        transactions=st.integers(2, 8),
        n_objects=st.integers(1, 6),
        write_ratio=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_history_is_serializable(
        self, seed, transactions, n_objects, write_ratio
    ):
        rt = CooperativeRuntime(seed=seed)
        recorder = HistoryRecorder(rt.manager)
        spec = WorkloadSpec(
            transactions=transactions,
            ops_per_txn=3,
            n_objects=n_objects,
            write_ratio=write_ratio,
            seed=seed,
        )
        oids = populate_objects(rt, n_objects)
        tids = [rt.spawn(body) for body in bodies_for(spec, oids)]
        rt.run_until_quiescent()
        rt.commit_all(tids)

        ok, cycle = is_conflict_serializable(recorder)
        assert ok, f"cycle {cycle} with seed {seed}"

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_counter_integrity(self, seed):
        """Increments by committed transactions are all present; aborted
        ones leave no trace."""
        rt = CooperativeRuntime(seed=seed)
        spec = WorkloadSpec(
            transactions=6, ops_per_txn=2, n_objects=2,
            write_ratio=1.0, seed=seed,
        )
        oids = populate_objects(rt, 2)
        workload = spec.generate()
        bodies = bodies_for(spec, oids)
        tids = [rt.spawn(body) for body in bodies]
        rt.run_until_quiescent()
        outcomes = rt.commit_all(tids)

        expected = [0, 0]
        for tid, ops in zip(tids, workload):
            if outcomes[tid]:
                for op, index in ops:
                    if op == "write":
                        expected[index] += 1

        def read_all(tx):
            values = []
            for oid in oids:
                values.append(decode_int((yield tx.read(oid))))
            return values

        finals = rt.run(read_all).value
        assert finals == expected
