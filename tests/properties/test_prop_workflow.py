"""Property: the parallel workflow engine agrees with the sequential one.

Random workflow specs — random dependency DAGs, optional flags, and
deterministic per-task failure patterns — must produce the same success
flag under both engines, and identical statuses whenever the workflow
succeeds.  On failure the engines legitimately diverge for tasks
*independent* of the failing one: the sequential engine never started
them (SKIPPED), while the parallel engine may have already committed
them (then compensated, if a compensation exists) — the price of
overlap, just as in production workflow systems.  The property pins down
exactly that boundary: tasks downstream of a failure agree, and no
compensated task ever stays COMMITTED.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workload import populate_objects
from repro.common.codec import decode_int, encode_int
from repro.runtime.coop import CooperativeRuntime
from repro.workflow.engine import TaskStatus, WorkflowEngine
from repro.workflow.spec import WorkflowSpec

MAX_TASKS = 5

task_plan = st.tuples(
    st.booleans(),  # optional?
    st.integers(0, 3),  # which alternative succeeds (3 = none)
    st.integers(0, 2**(MAX_TASKS - 1) - 1),  # dependency mask (earlier)
    st.booleans(),  # has compensation?
)


def build_spec(plans, oids):
    spec = WorkflowSpec("prop")
    for index, (optional, succeed_at, dep_mask, has_comp) in enumerate(
        plans
    ):
        deps = tuple(
            f"t{dep}" for dep in range(index) if dep_mask & (1 << dep)
        )
        task = spec.task(f"t{index}", optional=optional, depends_on=deps)
        for alt in range(3):
            fail = alt != succeed_at

            def body(tx, index=index, alt=alt, fail=fail):
                value = decode_int((yield tx.read(oids[index])))
                yield tx.write(oids[index], encode_int(value + 1))
                if fail:
                    yield tx.abort()

            task.alternative(body, label=f"a{alt}")
        if has_comp:
            def comp(tx, index=index):
                value = decode_int((yield tx.read(oids[index])))
                yield tx.write(oids[index], encode_int(value - 1))

            task.compensate_with(comp)
    return spec


def run_engine(plans, parallel):
    rt = CooperativeRuntime(seed=9)
    oids = populate_objects(rt, len(plans))
    spec = build_spec(plans, oids)
    result = WorkflowEngine(rt, parallel=parallel).execute(spec)
    statuses = {
        name: outcome.status for name, outcome in result.outcomes.items()
    }
    finals = []

    def reader(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    finals = rt.run(reader).value
    return result.success, statuses, finals


class TestEngineEquivalence:
    @given(plans=st.lists(task_plan, min_size=1, max_size=MAX_TASKS))
    @settings(max_examples=60, deadline=None)
    def test_sequential_and_parallel_agree(self, plans):
        seq_success, seq_statuses, seq_finals = run_engine(plans, False)
        par_success, par_statuses, par_finals = run_engine(plans, True)
        assert seq_success == par_success, plans
        if seq_success:
            # Success: both engines committed exactly the same tasks and
            # left identical object state.
            assert seq_statuses == par_statuses, plans
            assert seq_finals == par_finals, plans
            return
        # Failure: detection timing differs in BOTH directions (the
        # parallel engine may commit independents the sequential one
        # never reached, and may abandon tasks the sequential one had
        # time to commit).  The portable guarantees are:
        # 1. both report at least one failed/skipped required task;
        # 2. in both, no task with a compensation ends COMMITTED
        #    (abandonment always compensates);
        # 3. a task that FAILED under one engine never COMMITTED under
        #    the other (failure is body-deterministic; only whether it
        #    was attempted varies).
        for statuses in (seq_statuses, par_statuses):
            assert any(
                statuses[f"t{index}"]
                in (TaskStatus.FAILED, TaskStatus.SKIPPED)
                for index, (optional, *_r) in enumerate(plans)
                if not optional
            ), plans
            for index, plan in enumerate(plans):
                if plan[3]:  # has a compensation
                    assert statuses[f"t{index}"] is not TaskStatus.COMMITTED
        for name in seq_statuses:
            pair = {seq_statuses[name], par_statuses[name]}
            assert pair != {TaskStatus.FAILED, TaskStatus.COMMITTED}, (
                name, plans,
            )

    @given(plans=st.lists(task_plan, min_size=1, max_size=MAX_TASKS))
    @settings(max_examples=40, deadline=None)
    def test_statuses_are_internally_consistent(self, plans):
        success, statuses, finals = run_engine(plans, True)
        if success:
            # A successful workflow committed every required task.
            for index, (optional, *_rest) in enumerate(plans):
                if not optional:
                    assert statuses[f"t{index}"] is TaskStatus.COMMITTED
        else:
            # A failed workflow has at least one failed/skipped required
            # task and no lingering un-compensated committed-with-comp
            # tasks... committed tasks WITHOUT a compensation may remain.
            assert any(
                statuses[f"t{index}"]
                in (TaskStatus.FAILED, TaskStatus.SKIPPED)
                for index, (optional, *_r) in enumerate(plans)
                if not optional
            )
            for index, plan in enumerate(plans):
                has_comp = plan[3]
                if has_comp:
                    assert statuses[f"t{index}"] is not TaskStatus.COMMITTED
