"""Cluster properties mandated by EX18.

1. **Abort propagation** — a console abort of *any* component, at *any*
   site, before the vote means no component of the group ever commits,
   at any site.
2. **Coordinator-crash convergence** — power-cut the coordinator at
   *every* numbered 2PC message step: after restart, every site settles
   on one global outcome (no split-brain, nothing permanently in doubt).

Both properties quantify over the structure that matters (the victim
component; the crash step) exhaustively rather than sampling — the
message-step universe is small and deterministic, so Hypothesis-style
sampling would only blur the guarantee.
"""

import pytest

from repro.chaos.faults import FaultPlan
from repro.cluster import Cluster
from repro.cluster import scenarios as cluster_scenarios
from repro.cluster.sweep import probe_message_steps, run_cluster_plan
from repro.storage.log import CommitRecord

SITES = ("alpha", "beta", "gamma")


def _account(tag):
    def body(tx):
        oid = yield tx.create(tag + b"0")
        yield tx.write(oid, tag + b"1")
        return oid

    return body


def _committed(site):
    return {
        record.tid.value
        for record in site.durable_records()
        if isinstance(record, CommitRecord)
    }


@pytest.mark.parametrize("victim_index", range(len(SITES)))
def test_component_abort_on_any_site_aborts_the_whole_group(victim_index):
    """Property 1, quantified over the aborted component's position."""
    cluster = Cluster(sites=SITES)
    refs = [cluster.spawn_at(name, _account(name.encode())) for name in SITES]
    for ref in refs:
        cluster.wait(ref)
    cluster.link_group(refs)
    cluster.abort(refs[victim_index], reason=f"component {victim_index} vetoes")
    cluster.settle(8)
    outcome = cluster.group_commit(refs)
    assert not outcome.committed
    cluster.converge()
    for ref in refs:
        assert ref.tid.value not in _committed(cluster.sites[ref.site])
    report, __ = cluster.evaluate(label=f"veto by {refs[victim_index]}")
    assert report.ok, report.describe()


def _coordinator_crash_cases():
    """Every 2PC protocol message step of the happy-path scenario.

    The probe numbers all fabric messages; the property quantifies over
    the protocol subset (gc_begin/prepare/vote/decision/ack and the
    inquiry pair) — crashing at a console RPC step exercises nothing the
    RPC retry tests don't already cover.
    """
    protocol_kinds = {
        "gc_begin", "prepare", "vote", "decision", "ack",
        "status_req", "status_rep",
    }
    spec = cluster_scenarios.get("cluster_group_commit")
    steps = [
        (number, detail)
        for number, detail in probe_message_steps(spec)
        if detail.split(":")[-1] in protocol_kinds
    ]
    assert steps
    return spec, steps


_SPEC, _STEPS = _coordinator_crash_cases()


@pytest.mark.parametrize(
    "step,detail", _STEPS, ids=[f"{n}-{d}" for n, d in _STEPS]
)
def test_coordinator_crash_at_every_protocol_step_converges(step, detail):
    """Property 2: one global outcome per group, no permanent doubt."""
    coordinator = sorted(_SPEC.sites)[0]  # group_commit defaults to refs[0]
    plan = FaultPlan(site_crash_at=(coordinator, step))
    result = run_cluster_plan(_SPEC, plan, step=step, detail=detail)
    assert result.converged, result.describe()
    assert result.report.ok, result.report.describe()
    # And the outcome is *one* outcome: every member either appears in
    # its site's durable commits or in none — never mixed.
    cluster = result.cluster
    for gid, group in cluster.groups.items():
        fates = {
            site: tid.value in _committed(cluster.sites[site])
            for site, tid in group["members"].items()
        }
        assert len(set(fates.values())) == 1, (gid, fates)


def test_crash_sweep_covers_all_protocol_message_kinds():
    """The quantification really spans the protocol, not a corner of it."""
    kinds = {detail.split(":")[-1] for __, detail in _STEPS}
    assert {"gc_begin", "prepare", "vote", "decision"} <= kinds
