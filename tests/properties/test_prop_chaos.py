"""Property: random primitive programs, random faults, random schedules —
the chaos oracles hold.

Hypothesis generates small programs over the ASSET primitives (writes,
GC/AD/CD dependencies, delegation, explicit aborts) and pairs each with
a random fault plan (a crash at an arbitrary I/O step or semantic
failpoint, optionally a kept log tail or a single lied-about fsync) and
a seeded random schedule.  Every combination is driven through the
instrumented stack, crashed, restarted, recovered, and judged by the
full oracle battery.  Failing examples shrink and persist in the local
Hypothesis example database (``.hypothesis/``), so a counterexample
found once is retried first on every later run.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.explorer import ScheduleController
from repro.chaos.faults import CrashPoint, FaultPlan
from repro.chaos.oracles import check_idempotent, evaluate_recovery
from repro.chaos.stack import ChaosStack
from repro.common.errors import InvalidStateError
from repro.core.dependency import DependencyType

N_OBJECTS = 3
N_TXNS = 4

# The nightly chaos CI job widens the search (CHAOS_BUDGET=long); the
# tier-1 run keeps it quick.
MAX_EXAMPLES = 400 if os.environ.get("CHAOS_BUDGET") == "long" else 60

# Ordered transaction pairs (i < j): dependency edges and delegations
# always point forward, which rules out dependency cycles by construction.
PAIRS = [(i, j) for i in range(N_TXNS) for j in range(i + 1, N_TXNS)]

writes_strategy = st.lists(
    st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(0, 7)),
    min_size=1, max_size=2,
)
programs_strategy = st.lists(
    writes_strategy, min_size=N_TXNS, max_size=N_TXNS
)
deps_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            [DependencyType.GC, DependencyType.AD, DependencyType.CD]
        ),
        st.sampled_from(PAIRS),
    ),
    max_size=3,
    unique_by=lambda dep: dep[1],  # one edge per pair
)
aborts_strategy = st.sets(st.integers(0, N_TXNS - 1), max_size=2)
delegation_strategy = st.none() | st.sampled_from(PAIRS)

# Fault families are mutually exclusive per example: a crash at a step
# the run may or may not reach, a crash at a semantic failpoint, or a
# single lied-about fsync on a run that then completes into a power cut.
FAILPOINTS = ["commit.log", "commit.logged", "abort.undo", "abort.undone"]
fault_strategy = st.one_of(
    st.builds(
        FaultPlan,
        crash_at=st.integers(1, 60),
        keep_tail=st.booleans(),
    ),
    st.builds(
        FaultPlan,
        crash_at_failpoint=st.tuples(
            st.sampled_from(FAILPOINTS), st.integers(1, 3)
        ),
    ),
    st.builds(
        FaultPlan,
        lose_fsync_at=st.sets(st.integers(1, 40), min_size=1, max_size=1),
    ),
)


def drive_generated(stack, programs, deps, aborts, delegation, flush_mid):
    """Run one generated program to completion (or its planned crash)."""
    rt, manager = stack.runtime, stack.manager
    oids = []

    def setup(tx):
        for index in range(N_OBJECTS):
            oids.append((yield tx.create(b"o%d-init" % index)))

    result = rt.run(setup)
    stack.storage.sync_log()
    stack.note_ack(result.tid)
    stack.intent.oids = {f"o{i}": oid for i, oid in enumerate(oids)}

    def writer(writes):
        def body(tx):
            for obj_index, value in writes:
                yield tx.write(oids[obj_index], b"v%d" % value)
        return body

    tids = [rt.spawn(writer(writes)) for writes in programs]
    for dep_type, (i, j) in deps:
        stack.intend_dependency(dep_type, tids[i], tids[j])
        manager.form_dependency(dep_type, tids[i], tids[j])

    # Write-write conflicts may deadlock; the detector picks victims.
    rt.run_until_quiescent()

    if delegation is not None:
        source, target = (tids[k] for k in delegation)
        try:
            moved = manager.delegate(source, target)
            stack.intend_delegation(source, target, moved)
        except InvalidStateError:
            pass  # a deadlock victim terminated first; nothing to move

    if flush_mid:
        # The WAL window: uncommitted dirty pages head to disk.
        stack.storage.pool.flush_all()

    for index in sorted(aborts):
        manager.abort(tids[index])

    outcomes = rt.commit_all(tids)
    for tid, committed in outcomes.items():
        if committed:
            stack.note_ack(tid)
    stack.storage.sync_log()  # heal any single lied fsync before the cut


class TestChaosProperty:
    @given(
        programs=programs_strategy,
        deps=deps_strategy,
        aborts=aborts_strategy,
        delegation=delegation_strategy,
        flush_mid=st.booleans(),
        plan=fault_strategy,
        schedule_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_random_program_random_fault_random_schedule(
        self, programs, deps, aborts, delegation, flush_mid, plan,
        schedule_seed,
    ):
        stack = ChaosStack(
            plan=plan, schedule=ScheduleController(seed=schedule_seed)
        )
        try:
            drive_generated(
                stack, programs, deps, aborts, delegation, flush_mid
            )
        except CrashPoint:
            pass  # the planned death; restart below judges the remains

        system = stack.restart()
        report = evaluate_recovery(
            system, stack.intent, stack.durable_acks,
            label=f"property {plan.describe()} seed={schedule_seed}",
        )
        check_idempotent(system, report)
        assert report.ok, report.describe()
