"""Property: delegation moves undo responsibility exactly.

Random sequences of writes and delegations between a pool of
transactions, then a random subset commits and the rest abort.  A
reference model simulates the specified semantics exactly — responsible-
transaction tracking per update, physical before-image undo applied
per-aborting-transaction in reverse update order — and the real system's
final object values must match the model's, update for update.

This is a differential test: the model is an independent, obviously-
correct restatement of sections 2.2 and 4.2; any divergence is a bug in
the implementation (or a discovered ambiguity worth documenting).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.runtime.coop import CooperativeRuntime

N_TXNS = 3
OBJECTS_PER_TXN = 2

# (actor, object slot, value) writes and (source, target) delegations.
action = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(0, N_TXNS - 1),
        st.integers(0, OBJECTS_PER_TXN - 1),
        st.integers(1, 99),
    ),
    st.tuples(
        st.just("delegate"),
        st.integers(0, N_TXNS - 1),
        st.integers(0, N_TXNS - 1),
        st.just(0),
    ),
)


class TestDelegationProperty:
    @given(
        actions=st.lists(action, max_size=14),
        commit_mask=st.integers(0, 2**N_TXNS - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_responsibility_tracks_delegations(self, actions, commit_mask):
        rt = CooperativeRuntime(TransactionManager())
        manager = rt.manager

        setup = manager.initiate()
        manager.begin(setup)
        oids = [
            manager.create_object(setup, encode_int(0))
            for __ in range(N_TXNS * OBJECTS_PER_TXN)
        ]
        manager.note_completed(setup)
        manager.try_commit(setup)

        tids = []
        for __ in range(N_TXNS):
            tid = manager.initiate()
            manager.begin(tid)
            tids.append(tid)

        # Reference model: object state plus an update journal with the
        # before image and currently-responsible actor of each update.
        state = {oid: 0 for oid in oids}
        journal = []
        for name, a, b, value in actions:
            if name == "write":
                oid = oids[a * OBJECTS_PER_TXN + b]
                outcome = manager.try_write(tids[a], oid, encode_int(value))
                if outcome:
                    journal.append(
                        {
                            "oid": oid,
                            "before": state[oid],
                            "value": value,
                            "resp": a,
                        }
                    )
                    state[oid] = value
                # a blocked write (object delegated away) does not land
            else:
                if a == b:
                    continue
                moved = set(manager.delegate(tids[a], tids[b]))
                for update in journal:
                    if update["resp"] == a and update["oid"] in moved:
                        update["resp"] = b

        committed = [
            index for index in range(N_TXNS) if commit_mask & (1 << index)
        ]
        for index in committed:
            manager.note_completed(tids[index])
            manager.try_commit(tids[index])
        # Aborts happen one transaction at a time, in index order, each
        # undoing ITS updates newest-first — mirror that exactly.
        for index in range(N_TXNS):
            if index in committed:
                continue
            manager.abort(tids[index])
            for update in reversed(journal):
                if update["resp"] == index:
                    state[update["oid"]] = update["before"]

        reader = manager.initiate()
        manager.begin(reader)
        for oid in oids:
            outcome, raw = manager.try_read(reader, oid)
            assert outcome
            assert decode_int(raw) == state[oid], (
                oid,
                journal,
                committed,
            )
