"""Threaded stress: consistency holds under real thread interleavings.

These are smaller-scale (threads are slow) but non-deterministic: every
run explores a different interleaving, and the invariants must hold in
all of them.
"""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.core.dependency import DependencyType
from repro.runtime.threaded import ThreadedRuntime


@pytest.fixture
def rt():
    runtime = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=0.002)
    yield runtime
    runtime.close()


def make_counters(runtime, count, initial=0):
    def setup(tx):
        oids = []
        for index in range(count):
            oids.append(
                (yield tx.create(encode_int(initial), name=f"s{index}"))
            )
        return oids

    ok, value = runtime.run(setup)
    assert ok
    return value


def read_all(runtime, oids):
    def body(tx):
        values = []
        for oid in oids:
            values.append(decode_int((yield tx.read(oid))))
        return values

    ok, value = runtime.run(body)
    assert ok
    return value


@pytest.mark.parametrize("round_number", range(3))
class TestThreadedStress:
    def test_transfer_storm_conserves_money(self, rt, round_number):
        oids = make_counters(rt, 3, initial=100)

        def mover(src, dst):
            def body(tx):
                a = decode_int((yield tx.read(src)))
                yield tx.write(src, encode_int(a - 5))
                b = decode_int((yield tx.read(dst)))
                yield tx.write(dst, encode_int(b + 5))

            return body

        tids = []
        for index in range(9):
            tid = rt.initiate(mover(oids[index % 3], oids[(index + 1) % 3]))
            tids.append(tid)
            rt.begin(tid)
        rt.commit_all(tids)
        assert sum(read_all(rt, oids)) == 300
        assert rt.manager.lock_manager.check_invariants() == []

    def test_group_atomicity_under_threads(self, rt, round_number):
        oids = make_counters(rt, 2)

        def bump(oid, fail):
            def body(tx):
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))
                if fail:
                    yield tx.abort()

            return body

        fail = round_number % 2 == 0
        first = rt.initiate(bump(oids[0], False))
        second = rt.initiate(bump(oids[1], fail))
        rt.manager.form_dependency(DependencyType.GC, first, second)
        rt.begin(first)
        rt.begin(second)
        outcomes = rt.commit_all([first, second])
        values = read_all(rt, oids)
        if fail:
            assert list(outcomes.values()) == [0, 0]
            assert values == [0, 0]
        else:
            assert list(outcomes.values()) == [1, 1]
            assert values == [1, 1]
