"""Property: sagas always produce t1..tk ct_k..ct_1 and restore state."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acta.checker import check_compensation_shape
from repro.bench.workload import populate_objects
from repro.common.codec import decode_int, encode_int
from repro.models.saga import Saga, run_saga
from repro.runtime.coop import CooperativeRuntime


def build_saga(oids, deltas, fail_at):
    saga = Saga()
    for index, (oid, delta) in enumerate(zip(oids, deltas)):
        fail = fail_at is not None and index == fail_at

        def body(tx, oid=oid, delta=delta, fail=fail):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + delta))
            if fail:
                yield tx.abort()

        def comp(tx, oid=oid, delta=delta):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value - delta))

        is_last = index == len(oids) - 1
        saga.step(body, None if is_last else comp, name=f"t{index + 1}")
    return saga


class TestSagaProperty:
    @given(
        n_steps=st.integers(1, 6),
        fail_at=st.one_of(st.none(), st.integers(0, 5)),
        deltas=st.lists(st.integers(-50, 50), min_size=6, max_size=6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_shape_and_state(self, n_steps, fail_at, deltas, seed):
        if fail_at is not None and fail_at >= n_steps:
            fail_at = None
        rt = CooperativeRuntime(seed=seed)
        oids = populate_objects(rt, n_steps, initial=100)
        saga = build_saga(oids, deltas[:n_steps], fail_at)
        result = run_saga(rt, saga)

        assert check_compensation_shape(result.execution_order, n_steps)

        def read_all(tx):
            values = []
            for oid in oids:
                values.append(decode_int((yield tx.read(oid))))
            return values

        finals = rt.run(read_all).value
        if fail_at is None:
            assert result.committed
            assert result.completed_steps == n_steps
            expected = [100 + delta for delta in deltas[:n_steps]]
            assert finals == expected
        else:
            assert not result.committed
            assert result.completed_steps == fail_at
            assert result.compensated_steps == fail_at
            # Fully compensated: back to the initial state everywhere.
            assert finals == [100] * n_steps
