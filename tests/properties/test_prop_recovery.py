"""Property: crash anywhere — committed effects survive, losers vanish."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import decode_int, encode_int
from repro.common.ids import Tid
from repro.storage.store import StorageManager

# Each step: (transaction index, object index, new value, commit?)
step = st.tuples(
    st.integers(0, 3),
    st.integers(0, 2),
    st.integers(0, 100),
)


class TestRecoveryProperty:
    @given(
        steps=st.lists(step, min_size=1, max_size=12),
        committed_mask=st.integers(0, 15),
        flush_pages=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_crash_recover_round_trip(self, steps, committed_mask, flush_pages):
        store = StorageManager()
        setup_tid = Tid(100)
        oids = [
            store.create_object(setup_tid, encode_int(0)) for __ in range(3)
        ]
        store.log_commit(setup_tid)

        expected = [0, 0, 0]
        last_committed_value = {}
        tids = [Tid(i + 1) for i in range(4)]
        writes = {tid: [] for tid in tids}
        for txn_index, obj_index, value in steps:
            tid = tids[txn_index]
            store.write_object(tid, oids[obj_index], encode_int(value))
            writes[tid].append((obj_index, value))

        committed = [
            tids[i] for i in range(4) if committed_mask & (1 << i)
        ]
        for tid in committed:
            store.log_commit(tid)
        store.log.flush()
        if flush_pages:
            store.pool.flush_all()

        store.crash()
        report = store.recover()

        for tid in committed:
            assert tid in report.winners

        # Expected value per object: replay only committed writes in
        # original order (losers' writes undone).
        state = [0, 0, 0]
        for txn_index, obj_index, value in steps:
            if tids[txn_index] in committed:
                state[obj_index] = value
        # Careful: undo uses before-images; interleaved loser writes can
        # clobber later committed values (the paper's acknowledged
        # physical-undo semantics).  We only assert the clean cases:
        # objects never touched by a loser must hold the committed value,
        # and objects never touched by a winner must be back to 0.
        loser_touched = {
            obj_index
            for txn_index, obj_index, __ in steps
            if tids[txn_index] not in committed
        }
        winner_touched = {
            obj_index
            for txn_index, obj_index, __ in steps
            if tids[txn_index] in committed
        }
        for obj_index, oid in enumerate(oids):
            actual = decode_int(store.read_object(Tid(0), oid))
            if obj_index not in loser_touched:
                assert actual == state[obj_index]
            elif obj_index not in winner_touched:
                assert actual == 0

    @given(steps=st.lists(step, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_recovery_twice_is_idempotent(self, steps):
        store = StorageManager()
        setup_tid = Tid(100)
        oids = [
            store.create_object(setup_tid, encode_int(0)) for __ in range(3)
        ]
        store.log_commit(setup_tid)
        for txn_index, obj_index, value in steps:
            store.write_object(
                Tid(txn_index + 1), oids[obj_index], encode_int(value)
            )
        store.log_commit(Tid(1))
        store.log.flush()
        store.crash()
        store.recover()
        first = [decode_int(store.read_object(Tid(0), oid)) for oid in oids]
        store.crash()
        store.recover()
        second = [decode_int(store.read_object(Tid(0), oid)) for oid in oids]
        assert first == second
