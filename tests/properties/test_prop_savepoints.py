"""Property: savepoint/rollback matches a reference journal model.

Random interleavings of writes, savepoints, and rollbacks within one
transaction must leave object state exactly where a simple journal model
says: rollback restores, in reverse order, the before images of writes
made after the savepoint.  A final random choice of commit or abort
checks the end-to-end fate too.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import decode_int, encode_int
from repro.common.errors import InvalidStateError
from repro.core.manager import TransactionManager

N_OBJECTS = 3

action = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(0, N_OBJECTS - 1),
        st.integers(1, 99),
    ),
    st.tuples(st.just("savepoint"), st.just(0), st.just(0)),
    st.tuples(
        st.just("rollback"),
        st.integers(0, 5),  # which saved savepoint (modulo available)
        st.just(0),
    ),
)


class TestSavepointProperty:
    @given(
        actions=st.lists(action, max_size=20),
        commit=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_journal_model_equivalence(self, actions, commit):
        manager = TransactionManager()
        setup = manager.initiate()
        manager.begin(setup)
        oids = [
            manager.create_object(setup, encode_int(0))
            for __ in range(N_OBJECTS)
        ]
        manager.note_completed(setup)
        manager.try_commit(setup)

        tid = manager.initiate()
        manager.begin(tid)

        # Reference model: current state, a journal of (obj, before), and
        # savepoints as (token, journal mark, alive) — a rollback destroys
        # the savepoints taken after its target, exactly as SQL does.
        state = [0] * N_OBJECTS
        journal = []
        savepoints = []  # [token, mark, alive]

        for name, a, value in actions:
            if name == "write":
                manager.try_write(tid, oids[a], encode_int(value))
                journal.append((a, state[a]))
                state[a] = value
            elif name == "savepoint":
                token = manager.savepoint(tid)
                savepoints.append([token, len(journal), True])
            elif name == "rollback" and savepoints:
                index = a % len(savepoints)
                token, mark, alive = savepoints[index]
                if not alive:
                    with pytest.raises(InvalidStateError):
                        manager.rollback_to(tid, token)
                    continue
                manager.rollback_to(tid, token)
                for obj, before in reversed(journal[mark:]):
                    state[obj] = before
                del journal[mark:]
                for later in savepoints[index + 1 :]:
                    # Equal tokens are the same savepoint; only strictly
                    # later ones are destroyed.
                    if later[0] != token:
                        later[2] = False

            __, raw = manager.try_read(tid, oids[0])
            # spot-check one object every step, all objects at the end
            assert decode_int(raw) == state[0]

        for obj, oid in enumerate(oids):
            __, raw = manager.try_read(tid, oid)
            assert decode_int(raw) == state[obj], (actions,)

        if commit:
            manager.note_completed(tid)
            assert manager.try_commit(tid)
            expected = state
        else:
            manager.abort(tid)
            expected = [0] * N_OBJECTS

        reader = manager.initiate()
        manager.begin(reader)
        for obj, oid in enumerate(oids):
            __, raw = manager.try_read(reader, oid)
            assert decode_int(raw) == expected[obj], (actions, commit)
