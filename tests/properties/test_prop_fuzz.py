"""Manager-level fuzz: random primitive sequences never corrupt state.

A random stream of primitive invocations with random arguments — legal or
not — may only ever produce documented outcomes (success, a would-block
outcome, or one of the library's typed errors).  After every call the
structural invariants must hold:

* no two unsuspended conflicting granted locks;
* every granted LRD is consistently cross-linked (TD list <-> OD list);
* terminated transactions hold no locks, permits, or dependency edges;
* commit and abort remain mutually exclusive fates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AssetError, TransactionAborted
from repro.common.ids import Tid
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.status import TransactionStatus

N = 4  # transaction slots
OBJECTS = 3

op = st.tuples(
    st.sampled_from(
        [
            "initiate", "begin", "complete", "commit", "abort",
            "read", "write", "delegate", "permit", "depend",
        ]
    ),
    st.integers(0, N - 1),
    st.integers(0, N - 1),
    st.integers(0, OBJECTS - 1),
    st.sampled_from(list(DependencyType)),
)


class TestManagerFuzz:
    @given(ops=st.lists(op, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_random_primitive_streams_keep_invariants(self, ops):
        manager = TransactionManager()
        boot = manager.initiate()
        manager.begin(boot)
        oids = [
            manager.create_object(boot, b"seed") for __ in range(OBJECTS)
        ]
        manager.note_completed(boot)
        manager.try_commit(boot)

        slots = [None] * N

        def tid_at(index):
            if slots[index] is None:
                slots[index] = manager.initiate()
            return slots[index]

        for name, a, b, obj, dep_type in ops:
            try:
                if name == "initiate":
                    slots[a] = manager.initiate()
                elif name == "begin":
                    manager.begin(tid_at(a))
                elif name == "complete":
                    manager.note_completed(tid_at(a))
                elif name == "commit":
                    manager.try_commit(tid_at(a))
                elif name == "abort":
                    manager.abort(tid_at(a))
                elif name == "read":
                    manager.try_read(tid_at(a), oids[obj])
                elif name == "write":
                    manager.try_write(tid_at(a), oids[obj], b"fuzz")
                elif name == "delegate":
                    manager.delegate(tid_at(a), tid_at(b))
                elif name == "permit":
                    manager.permit(
                        tid_at(a),
                        tj=tid_at(b) if a != b else None,
                        oids=[oids[obj]],
                    )
                elif name == "depend":
                    manager.form_dependency(
                        dep_type, tid_at(a), tid_at(b)
                    )
            except (AssetError, TransactionAborted):
                pass  # documented refusals are fine; crashes are not

            # ---- invariants after every single call -----------------
            assert manager.lock_manager.check_invariants() == []
            for td in manager.transactions():
                if td.status.is_terminated:
                    assert td.locks == []
                for lrd in td.locks:
                    assert lrd.td is td
                    assert lrd in lrd.od.granted
            for od in manager.registry.all_descriptors():
                for lrd in od.granted:
                    assert lrd in lrd.td.locks

        # Terminated transactions left nothing behind.
        for td in manager.transactions():
            if td.status.is_terminated:
                tid = td.tid
                assert manager.permits.given_by(tid) == []
                assert manager.permits.given_to(tid) == []
                assert manager.dependencies.edges_involving(tid) == []

    @given(ops=st.lists(op, max_size=30), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_fates_are_final(self, ops, data):
        """Once committed, never aborted — and vice versa."""
        manager = TransactionManager()
        fates = {}
        slots = [None] * N

        def tid_at(index):
            if slots[index] is None:
                slots[index] = manager.initiate()
            return slots[index]

        for name, a, b, obj, dep_type in ops:
            try:
                if name in ("read", "write", "permit"):
                    continue  # no objects in this variant
                if name == "initiate":
                    slots[a] = manager.initiate()
                elif name == "begin":
                    manager.begin(tid_at(a))
                elif name == "complete":
                    manager.note_completed(tid_at(a))
                elif name == "commit":
                    manager.try_commit(tid_at(a))
                elif name == "abort":
                    manager.abort(tid_at(a))
                elif name == "delegate":
                    manager.delegate(tid_at(a), tid_at(b))
                elif name == "depend":
                    manager.form_dependency(dep_type, tid_at(a), tid_at(b))
            except (AssetError, TransactionAborted):
                pass
            for td in manager.transactions():
                current = td.status
                if td.tid in fates:
                    previous = fates[td.tid]
                    if previous is TransactionStatus.COMMITTED:
                        assert current is TransactionStatus.COMMITTED
                    if previous is TransactionStatus.ABORTED:
                        assert current is TransactionStatus.ABORTED
                if current.is_terminated:
                    fates[td.tid] = current
