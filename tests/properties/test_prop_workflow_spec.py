"""Property: the workflow-spec validator is a sound, deterministic DAG check.

Random dependency graphs — with and without injected cycles — must be
classified exactly: ``validate()`` raises :class:`AssetError` iff the
graph has a cycle (computed here independently by Kahn's algorithm), the
answer is the same on every call, and for every accepted spec
``ordered()`` returns a permutation of the tasks that respects every
declared dependency.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AssetError
from repro.workflow.spec import WorkflowSpec

MAX_TASKS = 6


def _noop(tx):
    if False:  # pragma: no cover
        yield None


# Each task's dependency set is a bitmask over all task indexes (self
# bits are stripped: self-dependency is a *different* rejection and is
# covered by the unit suite).
graphs = st.lists(
    st.integers(0, 2**MAX_TASKS - 1),
    min_size=1,
    max_size=MAX_TASKS,
)


def _build(masks):
    count = len(masks)
    spec = WorkflowSpec("prop")
    for index, mask in enumerate(masks):
        deps = tuple(
            f"t{dep}"
            for dep in range(count)
            if dep != index and mask & (1 << dep)
        )
        spec.task(f"t{index}", depends_on=deps).alternative(_noop)
    return spec


def _has_cycle(masks):
    count = len(masks)
    edges = {
        index: {
            dep
            for dep in range(count)
            if dep != index and masks[index] & (1 << dep)
        }
        for index in range(count)
    }
    remaining = dict(edges)
    while remaining:
        ready = [node for node, deps in remaining.items() if not deps]
        if not ready:
            return True
        for node in ready:
            del remaining[node]
        for deps in remaining.values():
            deps.difference_update(ready)
    return False


@settings(max_examples=200, deadline=None)
@given(graphs)
def test_validator_accepts_exactly_the_acyclic_graphs(masks):
    cyclic = _has_cycle(masks)
    for __ in range(2):  # deterministic: same verdict every call
        spec = _build(masks)
        if cyclic:
            try:
                spec.validate()
            except AssetError as rejected:
                assert "cycle" in str(rejected)
            else:
                raise AssertionError("cyclic spec accepted")
        else:
            assert spec.validate() is spec
            ordered = [task.name for task in spec.ordered()]
            assert sorted(ordered) == sorted(f"t{i}" for i in range(len(masks)))
            position = {name: at for at, name in enumerate(ordered)}
            for task in spec:
                for dep in task.depends_on:
                    assert position[dep] < position[task.name], (
                        f"{task.name} ordered before its dependency {dep}"
                    )


@settings(max_examples=60, deadline=None)
@given(graphs, st.integers(0, MAX_TASKS - 1), st.integers(0, MAX_TASKS - 1))
def test_injected_back_edge_is_always_caught(masks, a, b):
    # Force a cycle through two existing nodes (a self-loop when the
    # indexes collide — a distinct rejection) and demand rejection.
    count = len(masks)
    a, b = a % count, b % count
    spec = WorkflowSpec("prop")
    for index, mask in enumerate(masks):
        deps = {
            f"t{dep}"
            for dep in range(count)
            if dep != index and mask & (1 << dep)
        }
        if index == a:
            deps.add(f"t{b}")
        if index == b:
            deps.add(f"t{a}")
        spec.task(f"t{index}", depends_on=tuple(sorted(deps))).alternative(
            _noop
        )
    try:
        spec.validate()
    except AssetError:
        return
    raise AssertionError("spec with an injected cycle accepted")
