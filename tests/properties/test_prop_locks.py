"""Property: the lock-manager invariant survives arbitrary histories.

Random sequences of lock requests, permits, delegations, and releases must
never leave two *unsuspended* conflicting granted locks on one object —
the structural invariant behind the paper's claim that "only one
transaction can perform an (update) operation at any given time".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import ObjectId, Tid
from repro.core.descriptors import TransactionDescriptor
from repro.core.locks import LockManager, ObjectRegistry
from repro.core.permits import PermitTable
from repro.core.semantics import READ, WRITE

N_TXNS = 4
N_OBJECTS = 3

command = st.one_of(
    st.tuples(
        st.just("lock"),
        st.integers(0, N_TXNS - 1),
        st.integers(0, N_OBJECTS - 1),
        st.sampled_from([READ, WRITE]),
    ),
    st.tuples(
        st.just("permit"),
        st.integers(0, N_TXNS - 1),
        st.integers(0, N_TXNS - 1),
        st.sampled_from([READ, WRITE, None]),
    ),
    st.tuples(
        st.just("delegate"),
        st.integers(0, N_TXNS - 1),
        st.integers(0, N_TXNS - 1),
        st.just(None),
    ),
    st.tuples(
        st.just("release"),
        st.integers(0, N_TXNS - 1),
        st.just(None),
        st.just(None),
    ),
)


class TestLockInvariantProperty:
    @given(st.lists(command, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_no_conflicting_active_grants(self, commands):
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        locks = LockManager(registry, permits)
        tds = [TransactionDescriptor(tid=Tid(i + 1)) for i in range(N_TXNS)]
        oids = [ObjectId(i + 1) for i in range(N_OBJECTS)]

        for name, a, b, c in commands:
            if name == "lock":
                locks.acquire(tds[a], oids[b], c)
            elif name == "permit":
                if a != b:
                    # Permit on every object the giver holds (any form).
                    for oid in tds[a].locked_object_ids():
                        permits.grant(
                            oid, tds[a].tid,
                            receiver=tds[b].tid, operation=c,
                        )
            elif name == "delegate":
                if a != b:
                    locks.delegate(tds[a], tds[b])
            else:
                locks.release_all(tds[a])
            assert locks.check_invariants() == []

    @given(st.lists(command, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_td_and_od_lists_stay_consistent(self, commands):
        """Every granted LRD appears in exactly one TD list and its OD."""
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        locks = LockManager(registry, permits)
        tds = [TransactionDescriptor(tid=Tid(i + 1)) for i in range(N_TXNS)]
        oids = [ObjectId(i + 1) for i in range(N_OBJECTS)]

        for name, a, b, c in commands:
            if name == "lock":
                locks.acquire(tds[a], oids[b], c)
            elif name == "delegate":
                if a != b:
                    locks.delegate(tds[a], tds[b])
            elif name == "release":
                locks.release_all(tds[a])

            for td in tds:
                for lrd in td.locks:
                    assert lrd.td is td
                    assert lrd in lrd.od.granted
            for od in registry.all_descriptors():
                for lrd in od.granted:
                    assert lrd in lrd.td.locks
