"""Properties of the sharded engine (ISSUE 7 satellite).

Two families:

* **History equivalence** — fuzzed workloads (shard count ∈ {1, 2, 4, 8},
  Zipfian key skew, delegation across shard boundaries) recorded on the
  cooperative oracle replay byte-identically on :class:`ShardedRuntime`.
* **Segmented-WAL integrity** — after an arbitrary run with cross-shard
  delegations, a crash, and segmented recovery: the merged log view has
  strictly increasing unique LSNs, every committed transaction has
  exactly one commit record (none lost, none duplicated), and the
  recovered object state matches a sequential replay oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.codec import decode_int, encode_int
from repro.common.errors import InvalidStateError
from repro.common.ids import Tid
from repro.storage.log import CommitRecord
from repro.storage.segmented import ShardedStorageManager
from tests.differential.harness import (
    make_counters,
    record_on_oracle,
    replay_on,
)

N_OBJECTS = 6
N_TXNS = 4

shard_counts = st.sampled_from([1, 2, 4, 8])

# Zipf-ish key skew: object 0 is drawn ~8× as often as the tail, so
# fuzzed schedules mix hot-key contention with cross-shard spread.
zipf_object = st.sampled_from(
    [0] * 8 + [1] * 4 + [2] * 2 + [3, 4, 5]
)

# One program step: (kind, object index).  Writes dominate reads 2:1 so
# lock conflicts (and hence schedule-sensitive interleavings) are common.
op = st.tuples(st.sampled_from(["write", "write", "read"]), zipf_object)

program = st.lists(op, min_size=1, max_size=5)

# A delegation edge between two of the worker transactions (from, to);
# with objects striped over the shards, these cross shard boundaries by
# construction for every shard count > 1.
delegation = st.tuples(st.integers(0, N_TXNS - 1), st.integers(0, N_TXNS - 1))


def _make_shape(programs, delegations):
    """A deterministic workload shape closed over the fuzzed choices."""

    def shape(rt):
        oids = make_counters(rt, N_OBJECTS)

        def body(tx, steps):
            for kind, index in steps:
                if kind == "read":
                    yield tx.read(oids[index])
                else:
                    value = decode_int((yield tx.read(oids[index])))
                    yield tx.write(oids[index], encode_int(value + 1))

        tids = [rt.spawn(body, args=(steps,)) for steps in programs]
        # Drive programs as far as they go (deadlock victims aborted by
        # the detector); conflicting survivors may stay lock-blocked
        # behind finished-but-uncommitted holders until commit_all.
        rt.run_until_quiescent()
        for source, target in delegations:
            if source != target:
                try:
                    rt.manager.delegate(tids[source], tids[target])
                except InvalidStateError:
                    # A deadlock victim terminated; the same schedule
                    # aborts the same victim on both engines, so the
                    # exception itself is part of the replayed behavior.
                    pass
        rt.commit_all(tids)

    return shape


class TestShardedHistoryEquivalence:
    @given(
        programs=st.lists(program, min_size=N_TXNS, max_size=N_TXNS),
        delegations=st.lists(delegation, max_size=2),
        seed=st.integers(0, 2**16),
        n_shards=shard_counts,
    )
    @settings(max_examples=60, deadline=None)
    def test_replay_matches_oracle(
        self, programs, delegations, seed, n_shards
    ):
        shape = _make_shape(programs, delegations)
        oracle_history, recorded = record_on_oracle(shape, seed)
        replica = replay_on("sharded", shape, recorded, n_shards=n_shards)
        assert replica == oracle_history


# Segmented-WAL fuzz: (transaction index, object index, value) steps.
wal_step = st.tuples(
    st.integers(0, N_TXNS - 1), zipf_object, st.integers(0, 99)
)


class TestSegmentedWalIntegrity:
    @given(
        steps=st.lists(wal_step, min_size=1, max_size=14),
        delegations=st.lists(delegation, max_size=2),
        committed_mask=st.integers(0, 2**N_TXNS - 1),
        n_shards=shard_counts,
    )
    @settings(max_examples=60, deadline=None)
    def test_no_lost_or_duplicated_records(
        self, steps, delegations, committed_mask, n_shards
    ):
        store = ShardedStorageManager(n_shards=n_shards)
        setup = Tid(100)
        oids = [
            store.create_object(setup, encode_int(0), name=f"o{i}")
            for i in range(N_OBJECTS)
        ]
        store.log_commit(setup)

        tids = [Tid(i + 1) for i in range(N_TXNS)]
        # Delegations re-home responsibility (possibly across shards);
        # track it so the undo/commit oracle follows the moved work.
        owner = {tid: tid for tid in tids}
        written = {tid: set() for tid in tids}
        for txn_index, obj_index, value in steps:
            tid = owner[tids[txn_index]]
            store.write_object(tid, oids[obj_index], encode_int(value))
            written[tid].add(oids[obj_index])
        for source, target in delegations:
            ti, tj = tids[source], tids[target]
            if owner[ti] is not owner[tj] and written[owner[ti]]:
                store.log_delegate(
                    owner[ti],
                    owner[tj],
                    tuple(
                        sorted(written[owner[ti]], key=lambda o: o.value)
                    ),
                )
                written[owner[tj]] |= written.pop(owner[ti])
                moved = owner[ti]
                for key, value in owner.items():
                    if value is moved:
                        owner[key] = owner[tj]

        responsible = sorted(
            {owner[tids[i]] for i in range(N_TXNS) if committed_mask & (1 << i)},
            key=lambda tid: tid.value,
        )
        for tid in responsible:
            store.log_commit(tid)
        losers = [t for t in set(owner.values()) if t not in responsible]
        store.undo_many(sorted(losers, key=lambda t: t.value))
        for tid in losers:
            store.log_abort(tid)
        store.sync_log()

        store.crash()
        store.recover()

        merged = list(store.log.records())
        lsns = [record.lsn.value for record in merged]
        assert lsns == sorted(lsns), "merged view is not LSN-ordered"
        assert len(lsns) == len(set(lsns)), "duplicate LSNs across segments"

        commit_counts = {}
        for record in merged:
            if isinstance(record, CommitRecord):
                for tid in record.committed_tids():
                    commit_counts[tid] = commit_counts.get(tid, 0) + 1
        for tid in responsible:
            assert commit_counts.get(tid, 0) == 1, (
                f"{tid} has {commit_counts.get(tid, 0)} commit records"
            )
        for tid in losers:
            assert tid not in commit_counts, f"loser {tid} has a commit record"

        # Recovered state must match a sequential oracle on the clean
        # cases (same discipline as the single-log recovery property:
        # physical undo of *interleaved* loser writes can clobber later
        # committed values, so only objects untouched by losers are
        # asserted exactly; loser-only objects must be back to 0).
        # Responsibility is attributed through the delegation chain.
        expected = {index: 0 for index in range(N_OBJECTS)}
        loser_touched = set()
        winner_touched = set()
        for txn_index, obj_index, value in steps:
            if owner[tids[txn_index]] in responsible:
                expected[obj_index] = value
                winner_touched.add(obj_index)
            else:
                loser_touched.add(obj_index)
        state = store.object_state()  # keyed by oid *value*
        for obj_index, oid in enumerate(oids):
            recovered = state.get(oid.value)
            assert recovered is not None, f"{oid} lost by recovery"
            if obj_index not in loser_touched:
                assert decode_int(recovered) == expected[obj_index]
            elif obj_index not in winner_touched:
                assert decode_int(recovered) == 0

    @given(
        n_shards=shard_counts,
        count=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_directory_survives_recovery(self, n_shards, count):
        """Recovery rebuilds the oid→shard directory exactly."""
        store = ShardedStorageManager(n_shards=n_shards)
        tid = Tid(1)
        oids = [
            store.create_object(tid, encode_int(i), name=f"n{i}")
            for i in range(count)
        ]
        before = {oid: store.router.shard_of(oid) for oid in oids}
        store.log_commit(tid)
        store.sync_log()
        store.crash()
        store.recover()
        after = {oid: store.router.shard_of(oid) for oid in oids}
        assert after == before
