"""QuarantineRegistry: read-path poisoning of damaged objects."""

import pytest

from repro.common.errors import QuarantinedObjectError
from repro.common.ids import ObjectId, Tid
from repro.resilience import QuarantineRegistry, install_resilience


def _reader(oid):
    def body(tx):
        return (yield tx.read(oid))

    return body


class TestRegistry:
    def test_quarantine_and_lift(self):
        registry = QuarantineRegistry()
        registry.quarantine_object(ObjectId(1), reason="torn page 4")
        assert registry.is_quarantined(ObjectId(1))
        registry.lift(ObjectId(1))
        assert not registry.is_quarantined(ObjectId(1))

    def test_check_poisons_and_raises(self):
        registry = QuarantineRegistry()
        registry.quarantine_object(ObjectId(1))
        with pytest.raises(QuarantinedObjectError) as info:
            registry.check(Tid(7), ObjectId(1), op="read")
        assert info.value.oid == ObjectId(1)
        assert info.value.tid == Tid(7)
        assert registry.is_poisoned(Tid(7))
        assert registry.poisoned[Tid(7)] == {ObjectId(1)}

    def test_check_passes_clean_objects(self):
        registry = QuarantineRegistry()
        registry.check(Tid(7), ObjectId(1))
        assert not registry.is_poisoned(Tid(7))

    def test_damaged_pages_recorded_once(self):
        registry = QuarantineRegistry()
        registry.note_damaged_page(4)
        registry.note_damaged_page(4)
        registry.note_damaged_page(9)
        assert registry.damaged_pages == [4, 9]


class TestReadPathEscalation:
    def test_poisoned_transaction_is_aborted_not_crashed(self, rt):
        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")

        assert rt.run(setup).committed
        a = oids["a"]
        kit.quarantine.quarantine_object(a, reason="damaged")

        tid = rt.spawn(_reader(a))
        rt.run_until_quiescent()
        assert rt.manager.table.get(tid).status.is_terminated
        assert rt.wait(tid) == 0  # aborted, not committed
        assert isinstance(rt.error_of(tid), QuarantinedObjectError)
        assert kit.quarantine.is_poisoned(tid)

    def test_write_path_is_poisoned_too(self, rt):
        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")

        assert rt.run(setup).committed
        a = oids["a"]
        kit.quarantine.quarantine_object(a)

        def writer(tx):
            yield tx.write(a, b"a1")

        tid = rt.spawn(writer)
        rt.run_until_quiescent()
        assert rt.wait(tid) == 0

    def test_lifted_quarantine_restores_service(self, rt):
        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")

        assert rt.run(setup).committed
        a = oids["a"]
        kit.quarantine.quarantine_object(a)
        kit.quarantine.lift(a)
        result = rt.run(_reader(a))
        assert result.committed
        assert result.value == b"a0"

    def test_healthy_transactions_unaffected(self, rt):
        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")
            oids["b"] = yield tx.create(b"b0")

        assert rt.run(setup).committed
        kit.quarantine.quarantine_object(oids["a"])
        # A transaction that never touches the quarantined object is fine.
        result = rt.run(_reader(oids["b"]))
        assert result.committed
        assert result.value == b"b0"
