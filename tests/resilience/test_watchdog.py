"""The watchdog: deadline/lease reaping, orphan aborts, containment,
and the same-step waits-for pruning regression (watchdog vs deadlock
detector interplay)."""

import pytest

from repro.core.dependency import DependencyType as D
from repro.resilience import install_resilience
from repro.runtime.coop import CooperativeRuntime, SchedulerStalledError


def _idle(tx):
    return
    yield


def _writer(oid, value):
    def body(tx):
        yield tx.write(oid, value)

    return body


@pytest.fixture
def stack(rt):
    """(runtime, manager, kit) with resilience installed."""
    kit = install_resilience(rt.manager, rt, scan_interval=4)
    return rt, rt.manager, kit


def create_objects(rt, count):
    oids = []

    def setup(tx):
        for index in range(count):
            oids.append((yield tx.create(b"v0-%d" % index)))

    assert rt.run(setup).committed
    return oids


class TestDeadlineReaping:
    def test_expired_deadline_aborts_the_transaction(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.set_deadline(tid, budget=10)

        assert kit.watchdog.scan(now=manager.clock.now() + 10) == [tid]
        assert manager.table.get(tid).status.is_terminated
        [record] = kit.watchdog.reaped
        assert record.tid == tid
        assert record.kind == "deadline"
        assert record.closure == [tid]
        assert record.cascaded == 0
        assert kit.watchdog.stats["deadline_aborts"] == 1
        # Bookkeeping is cleared: the next scan reaps nothing.
        assert kit.watchdog.scan(now=manager.clock.now() + 99) == []

    def test_unexpired_deadline_is_left_alone(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.set_deadline(tid, budget=1000)
        assert kit.watchdog.scan() == []
        assert rt.commit(tid)

    def test_terminated_victim_is_pruned_not_aborted(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        assert rt.commit(tid)
        # A stale entry for a terminated transaction (the event hook
        # normally forgets it) is pruned during the scan, never re-aborted.
        kit.deadlines.set_deadline(tid, at=0)
        assert kit.watchdog.scan() == []
        assert kit.deadlines.deadline_of(tid) is None

    def test_disabled_watchdog_reaps_nothing(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.set_deadline(tid, at=0)
        kit.watchdog.enabled = False
        assert kit.watchdog.scan() == []
        assert not manager.table.get(tid).status.is_terminated


class TestLeaseReaping:
    def test_lapsed_lease_aborts_the_holder(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.grant_lease(tid, duration=16)
        assert kit.watchdog.scan(now=manager.clock.now() + 16) == [tid]
        [record] = kit.watchdog.reaped
        assert record.kind == "lease"

    def test_heartbeat_keeps_the_holder_alive(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.grant_lease(tid, duration=16)
        for __ in range(5):
            manager.clock.tick(10)
            kit.deadlines.heartbeat(tid)
            assert kit.watchdog.scan() == []
        assert rt.commit(tid)


class TestOrphanAborts:
    def _delegated_pair(self, rt, manager, kit, oid):
        t1 = rt.spawn(_writer(oid, b"v1"))
        rt.wait(t1)
        t2 = rt.spawn(_idle)
        rt.wait(t2)
        manager.delegate(t1, t2, oids={oid})
        return t1, t2

    def test_reaped_guardian_orphan_aborts_the_ward(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        t1, t2 = self._delegated_pair(rt, manager, kit, a)
        kit.deadlines.grant_lease(t1, duration=32)

        reaped = kit.watchdog.scan(now=manager.clock.now() + 32)
        assert reaped == [t1, t2]
        kinds = {r.tid: r.kind for r in kit.watchdog.reaped}
        assert kinds == {t1: "lease", t2: "orphan"}
        assert manager.table.get(t2).status.is_terminated
        assert kit.watchdog.stats["orphan_aborts"] == 1

    def test_ward_with_live_lease_survives_its_guardian(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        t1, t2 = self._delegated_pair(rt, manager, kit, a)
        kit.deadlines.grant_lease(t1, duration=32)
        kit.deadlines.grant_lease(t2, duration=10_000)

        reaped = kit.watchdog.scan(now=manager.clock.now() + 32)
        assert reaped == [t1]
        assert not manager.table.get(t2).status.is_terminated
        # The delegated write moved to t2, which can still commit it.
        assert rt.commit(t2)

    def test_ward_of_healthy_guardian_is_untouched(self, stack):
        rt, manager, kit = stack
        [a, b] = create_objects(rt, 2)
        t1, t2 = self._delegated_pair(rt, manager, kit, a)
        # A third, unrelated lease lapses; the guardian t1 is healthy, so
        # its ward must not be orphan-aborted.
        t3 = rt.spawn(_writer(b, b"v1"))
        rt.wait(t3)
        kit.deadlines.grant_lease(t3, duration=8)

        reaped = kit.watchdog.scan(now=manager.clock.now() + 8)
        assert reaped == [t3]
        assert not manager.table.get(t1).status.is_terminated
        assert not manager.table.get(t2).status.is_terminated


class TestContainmentAccounting:
    def test_closure_counts_cascaded_aborts(self, stack):
        rt, manager, kit = stack
        [a, b] = create_objects(rt, 2)
        t1 = rt.spawn(_writer(a, b"v1"))
        t2 = rt.spawn(_writer(b, b"v1"))
        rt.wait(t1)
        rt.wait(t2)
        # AD(t1 -> t2): if t1 aborts, t2 must abort.
        manager.form_dependency(D.AD, t1, t2)
        kit.deadlines.set_deadline(t1, at=manager.clock.now())

        assert kit.watchdog.scan() == [t1]
        [record] = kit.watchdog.reaped
        assert set(record.closure) == {t1, t2}
        assert record.cascaded == 1
        assert kit.watchdog.stats["cascaded_aborts"] == 1
        assert manager.table.get(t2).status.is_terminated


class TestStallRescue:
    def test_on_stall_with_nothing_armed_reports_false(self, stack):
        rt, manager, kit = stack
        assert kit.watchdog.on_stall() is False

    def test_on_stall_time_travels_to_the_next_expiry(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.grant_lease(tid, duration=500)
        before = manager.clock.now()

        assert kit.watchdog.on_stall() is True
        assert manager.clock.now() >= before + 500
        assert manager.table.get(tid).status.is_terminated
        assert kit.watchdog.stats["stall_rescues"] == 1

    def test_on_round_scans_at_the_interval(self, stack):
        rt, manager, kit = stack
        [a] = create_objects(rt, 1)
        tid = rt.spawn(_writer(a, b"v1"))
        rt.wait(tid)
        kit.deadlines.set_deadline(tid, budget=2)
        scans_before = kit.watchdog.stats["scans"]
        reaped = []
        for __ in range(kit.watchdog.scan_interval + 1):
            reaped.extend(kit.watchdog.on_round())
        assert kit.watchdog.stats["scans"] > scans_before
        assert reaped == [tid]


class TestWaitsForInterplay:
    """Satellite: a transaction the watchdog aborts while parked in the
    commit-wait scan must leave the waits-for graph in the same step."""

    def test_commit_parked_victim_pruned_from_waits_for(self, stack):
        rt, manager, kit = stack
        [a, b] = create_objects(rt, 2)
        t1 = rt.spawn(_writer(a, b"v1"))
        t2 = rt.spawn(_writer(b, b"v1"))
        rt.wait(t1)
        rt.wait(t2)
        # CD(t1 -> t2): t2 cannot commit before t1.  try_commit parks t2
        # in the commit-wait scan, so the waits-for graph has t2 -> t1.
        manager.form_dependency(D.CD, t1, t2)
        assert not manager.try_commit(t2).is_final
        graph = rt._detector.build_graph()
        assert t2 in graph

        kit.deadlines.set_deadline(t2, at=manager.clock.now())
        assert kit.watchdog.scan() == [t2]
        # Same step: the snapshot the scan worked on no longer holds t2.
        assert t2 not in kit.watchdog.last_graph
        # And a fresh graph agrees — the abort-bound victim is invisible
        # to the deadlock detector from here on.
        assert t2 not in rt._detector.build_graph()
        assert rt.commit(t1)

    def test_injected_stall_is_rescued_not_raised(self, rt):
        """Regression with an injected stall: the runtime's commit wait
        wedges on a CD dependee that never commits; the watchdog's
        deadline abort must rescue the schedule instead of letting
        SchedulerStalledError escape."""
        kit = install_resilience(rt.manager, rt, scan_interval=4)
        manager = rt.manager
        [a, b] = create_objects(rt, 2)
        t1 = rt.spawn(_writer(a, b"v1"))
        t2 = rt.spawn(_writer(b, b"v1"))
        rt.wait(t1)
        rt.wait(t2)
        manager.form_dependency(D.CD, t1, t2)
        # t1 never commits (its driver "crashed").  Give t2 a deadline the
        # stall rescue can fire, then drive its commit to the stall.
        kit.deadlines.set_deadline(t2, budget=50)

        assert rt.commit(t2) == 0  # aborted by the watchdog, not stalled
        assert [r.tid for r in kit.watchdog.reaped] == [t2]
        assert t2 not in kit.watchdog.last_graph
        assert rt.commit(t1)  # the dependee is healthy and free to go

    def test_without_watchdog_the_same_stall_raises(self, rt):
        manager = rt.manager
        [a, b] = create_objects(rt, 2)
        t1 = rt.spawn(_writer(a, b"v1"))
        t2 = rt.spawn(_writer(b, b"v1"))
        rt.wait(t1)
        rt.wait(t2)
        manager.form_dependency(D.CD, t1, t2)
        with pytest.raises(SchedulerStalledError):
            rt.commit(t2)
