"""RetryPolicy: bounded attempts, deterministic backoff, error filtering."""

import pytest

from repro.common.clock import LogicalClock
from repro.common.errors import RetryExhausted, TransientIOError
from repro.common.ids import Tid
from repro.resilience import RetryPolicy


def flaky(failures, error=TransientIOError, result="done"):
    """An operation that fails ``failures`` times, then succeeds."""
    state = {"calls": 0}

    def operation():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise error(f"failure #{state['calls']}")
        return result

    operation.state = state
    return operation


class TestBudget:
    def test_first_try_success_needs_no_retry(self):
        policy = RetryPolicy(max_attempts=3)
        operation = flaky(0)
        assert policy.run(operation) == "done"
        assert operation.state["calls"] == 1
        assert policy.stats["retries"] == 0

    def test_absorbs_failures_within_budget(self):
        policy = RetryPolicy(max_attempts=3)
        operation = flaky(2)
        assert policy.run(operation) == "done"
        assert operation.state["calls"] == 3
        assert policy.stats["retries"] == 2
        assert policy.stats["exhausted"] == 0

    def test_exhaustion_raises_with_context(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(RetryExhausted) as info:
            policy.run(flaky(5), op="saga.t1", tid=Tid(7))
        error = info.value
        assert error.attempts == 2
        assert error.op == "saga.t1"
        assert error.tid == Tid(7)
        assert isinstance(error.last_error, TransientIOError)
        assert policy.stats["exhausted"] == 1

    def test_zero_budget_fails_on_first_transient(self):
        policy = RetryPolicy.zero_budget()
        assert policy.max_attempts == 1
        with pytest.raises(RetryExhausted) as info:
            policy.run(flaky(1))
        assert info.value.attempts == 1
        assert policy.stats["retries"] == 0

    def test_non_retryable_error_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        operation = flaky(3, error=lambda m: ValueError(m))
        with pytest.raises(ValueError):
            policy.run(operation)
        assert operation.state["calls"] == 1

    def test_error_class_filter_is_configurable(self):
        policy = RetryPolicy(max_attempts=3, retryable=(KeyError,))
        operation = flaky(1, error=lambda m: KeyError(m))
        assert policy.run(operation) == "done"
        assert operation.state["calls"] == 2


class TestBackoff:
    def test_exponential_schedule_capped(self):
        policy = RetryPolicy(base_delay=2, multiplier=3, max_delay=20)
        assert [policy.delay_before(n) for n in (1, 2, 3, 4)] == [2, 6, 18, 20]

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        one = RetryPolicy(base_delay=1, multiplier=1, jitter=10, seed=42)
        two = RetryPolicy(base_delay=1, multiplier=1, jitter=10, seed=42)
        other = RetryPolicy(base_delay=1, multiplier=1, jitter=10, seed=43)
        schedule = [one.delay_before(n) for n in range(1, 6)]
        assert schedule == [two.delay_before(n) for n in range(1, 6)]
        assert schedule != [other.delay_before(n) for n in range(1, 6)]
        for n, delay in enumerate(schedule, start=1):
            base = 1
            assert base <= delay <= base + 10, f"attempt {n}"

    def test_delays_advance_the_logical_clock_not_wall_time(self):
        clock = LogicalClock()
        policy = RetryPolicy(
            max_attempts=3, base_delay=4, multiplier=2, clock=clock
        )
        before = clock.now()
        assert policy.run(flaky(2)) == "done"
        # Two retries: delays 4 then 8 ticks.
        assert clock.now() - before == 12

    def test_no_clock_means_no_delay_bookkeeping(self):
        policy = RetryPolicy(max_attempts=3, base_delay=4)
        assert policy.run(flaky(2)) == "done"  # simply must not crash
