"""FlushHealth: the coalescer's degrade/re-promote circuit breaker,
the WAL's lying-fsync audit, and the independent degradation oracle."""

from repro.chaos.oracles import check_degradation
from repro.common.errors import TransientIOError
from repro.common.ids import Tid
from repro.resilience import BATCHING, DEGRADED, FlushHealth
from repro.storage.log import FlushCoalescer, MemoryLogDevice, WriteAheadLog


class TestStateMachine:
    def test_starts_batching(self):
        health = FlushHealth()
        assert health.state == BATCHING
        assert not health.degraded

    def test_degrades_after_consecutive_failures(self):
        health = FlushHealth(degrade_after=3)
        health.note_failure("f1")
        health.note_failure("f2")
        assert not health.degraded
        health.note_failure("f3")
        assert health.degraded
        [flip] = health.transitions
        assert (flip["from"], flip["to"], flip["at"]) == (BATCHING, DEGRADED, 3)

    def test_success_resets_the_failure_streak(self):
        health = FlushHealth(degrade_after=2)
        health.note_failure()
        health.note_success()
        health.note_failure()
        assert not health.degraded  # never two *consecutive* failures

    def test_repromotes_after_healthy_window(self):
        health = FlushHealth(degrade_after=1, repromote_after=3)
        health.note_failure()
        assert health.degraded
        health.note_success()
        health.note_success()
        assert health.degraded
        health.note_success()
        assert not health.degraded
        assert [(t["from"], t["to"]) for t in health.transitions] == [
            (BATCHING, DEGRADED),
            (DEGRADED, BATCHING),
        ]

    def test_failure_resets_the_healthy_streak(self):
        health = FlushHealth(degrade_after=1, repromote_after=2)
        health.note_failure()
        health.note_success()
        health.note_failure()  # back to zero healthy flushes
        health.note_success()
        assert health.degraded

    def test_counters_reset_on_transition(self):
        health = FlushHealth(degrade_after=2, repromote_after=2)
        health.note_failure()
        health.note_failure()
        assert health.consecutive_failures == 0
        assert health.consecutive_successes == 0


class TestCoalescerDegradedMode:
    def test_degraded_breaker_forces_per_commit_flush(self):
        health = FlushHealth(degrade_after=1)
        coalescer = FlushCoalescer(max_commits=100, health=health)
        assert coalescer.enroll_commit() is False  # batching: wide batch
        health.note_failure()
        assert coalescer.enroll_commit() is True  # degraded: flush now
        health.note_success()
        # Still degraded (repromote_after not met): still synchronous.
        assert coalescer.enroll_commit() is True


class _FlakyDevice(MemoryLogDevice):
    """A log device with scriptable flush behaviour."""

    def __init__(self):
        super().__init__()
        self.fail_next = 0
        self.lie_next = 0

    def flush(self):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise TransientIOError("scripted flush failure")
        if self.lie_next > 0:
            self.lie_next -= 1
            return  # report success, advance nothing
        super().flush()


class TestWalAudit:
    def _wal(self, degrade_after=2, repromote_after=2):
        device = _FlakyDevice()
        health = FlushHealth(
            degrade_after=degrade_after, repromote_after=repromote_after
        )
        coalescer = FlushCoalescer(max_commits=100, health=health)
        wal = WriteAheadLog(device, group_commit=coalescer)
        return wal, device, health

    def test_raised_flush_failure_is_noted_and_reraised(self):
        wal, device, health = self._wal()
        wal.log_abort(Tid(1))
        device.fail_next = 1
        try:
            wal.flush()
        except TransientIOError:
            pass
        else:  # pragma: no cover - the audit must re-raise
            raise AssertionError("flush failure swallowed")
        assert health.outcomes[-1][0] == "fail"
        # The batch stayed pending: the retry still has records to flush.
        wal.flush()
        assert health.outcomes[-1][0] == "ok"
        assert device.durable_count() == 1

    def test_lying_fsync_detected_by_durable_count_audit(self):
        wal, device, health = self._wal()
        wal.log_abort(Tid(2))
        device.lie_next = 1
        wal.flush()
        kind, detail = health.outcomes[-1]
        assert kind == "fail"
        assert "lying fsync" in detail

    def test_consecutive_lies_degrade_then_honest_window_repromotes(self):
        wal, device, health = self._wal(degrade_after=2, repromote_after=2)
        for __ in range(2):
            wal.log_abort(Tid(3))
            device.lie_next = 1
            wal.flush()
        assert health.degraded
        for __ in range(2):
            wal.log_abort(Tid(4))
            wal.flush()
        assert not health.degraded
        report = check_degradation(health)
        assert report.ok, report.describe()


class TestDegradationOracle:
    def test_clean_trace_passes(self):
        health = FlushHealth(degrade_after=2, repromote_after=2)
        for note in (
            health.note_success,
            health.note_failure,
            health.note_failure,
            health.note_success,
            health.note_success,
        ):
            note()
        report = check_degradation(health)
        assert report.ok, report.describe()

    def test_tampered_state_is_caught(self):
        health = FlushHealth(degrade_after=1)
        health.note_failure()
        health.state = BATCHING  # breaker lies about where it ended up
        report = check_degradation(health)
        assert not report.ok
        assert any("implies" in v for v in report.violations)

    def test_missing_transition_is_caught(self):
        health = FlushHealth(degrade_after=1)
        health.note_failure()
        health.transitions.clear()  # breaker lost its transition record
        report = check_degradation(health)
        assert not report.ok
