"""DeadlineTable: deadlines, heartbeat leases, delegation guardianship."""

import pytest

from repro.common.clock import LogicalClock
from repro.common.errors import DeadlineExceeded, LeaseExpired
from repro.common.ids import Tid
from repro.resilience import DeadlineTable


def _idle(tx):
    """A transaction program that makes no requests."""
    return
    yield


@pytest.fixture
def clock():
    return LogicalClock()


@pytest.fixture
def table(clock):
    return DeadlineTable(clock)


class TestDeadlines:
    def test_absolute_and_budget_forms(self, clock, table):
        assert table.set_deadline(Tid(1), at=50) == 50
        clock.advance_to(10)
        assert table.set_deadline(Tid(2), budget=30) == 40
        assert table.deadline_of(Tid(1)) == 50
        assert table.deadline_of(Tid(2)) == 40

    def test_set_deadline_needs_at_or_budget(self, table):
        with pytest.raises(ValueError):
            table.set_deadline(Tid(1))

    def test_expired_is_exact_at_the_boundary(self, clock, table):
        table.set_deadline(Tid(1), at=50)
        assert table.expired(now=49) == []
        [error] = table.expired(now=50)
        assert isinstance(error, DeadlineExceeded)
        assert error.tid == Tid(1)
        assert error.deadline == 50

    def test_expired_orders_by_tid(self, table):
        table.set_deadline(Tid(9), at=5)
        table.set_deadline(Tid(2), at=5)
        assert [e.tid for e in table.expired(now=10)] == [Tid(2), Tid(9)]


class TestLeases:
    def test_heartbeat_renews(self, clock, table):
        table.grant_lease(Tid(1), duration=10)
        clock.advance_to(8)
        assert table.heartbeat(Tid(1)) is True
        assert table.lease_live(Tid(1), now=17)
        assert not table.lease_live(Tid(1), now=18)

    def test_missed_heartbeat_expires(self, clock, table):
        table.grant_lease(Tid(1), duration=10)
        assert table.expired(now=9) == []
        [error] = table.expired(now=10)
        assert isinstance(error, LeaseExpired)
        assert error.tid == Tid(1)
        assert error.duration == 10

    def test_heartbeat_without_lease_reports_false(self, table):
        assert table.heartbeat(Tid(1)) is False

    def test_double_expiry_yields_both_errors(self, table):
        # Watchdog dedupes victims; the table reports everything it knows.
        table.set_deadline(Tid(1), at=5)
        table.grant_lease(Tid(1), duration=5)
        errors = table.expired(now=5)
        assert [type(e) for e in errors] == [DeadlineExceeded, LeaseExpired]


class TestLeaseEdges:
    """The boundary cases the coordinator-failover protocol leans on."""

    def test_exact_expiry_tick_is_dead_but_a_beat_revives(self, clock, table):
        # ``lease_live`` is strict: at exactly last_beat + duration the
        # lease is already dead (now < expires_at), matching the
        # deadline convention where now == at has expired.
        table.grant_lease(Tid(1), duration=10)
        assert table.lease_live(Tid(1), now=9)
        assert not table.lease_live(Tid(1), now=10)
        # But the lease *record* survives until someone forgets it: a
        # heartbeat landing on the exact expiry tick still renews, so a
        # slow-but-alive owner that beats the watchdog to the tick
        # keeps its lease.
        clock.advance_to(10)
        assert table.heartbeat(Tid(1)) is True
        assert table.lease_live(Tid(1))
        assert table.expired() == []

    def test_regrant_after_expiry_rearms_with_full_budget(self, clock, table):
        table.grant_lease(Tid(1), duration=10)
        clock.advance_to(25)
        assert not table.lease_live(Tid(1))
        assert len(table.expired()) == 1
        # Re-arming an expired lease (a reborn coordinator announcing
        # itself again) starts a fresh full budget from *now*, not from
        # the stale last beat.
        lease = table.grant_lease(Tid(1), duration=10)
        assert lease.last_beat == 25
        assert table.lease_live(Tid(1))
        assert table.expired() == []
        assert not table.lease_live(Tid(1), now=35)

    def test_release_races_the_ripe_check(self, clock, table):
        # The watchdog snapshots ``expired()`` and then acts; a clean
        # release (forget) can land in between.  The snapshot is stale
        # by design — the table must simply report nothing afterwards,
        # and late heartbeats for the forgotten lease must say False so
        # the old owner learns it no longer holds anything.
        table.grant_lease(Tid(1), duration=10)
        clock.advance_to(12)
        [ripe] = table.expired()
        assert ripe.tid == Tid(1)
        table.forget(Tid(1))
        assert table.expired() == []
        assert table.lease_of(Tid(1)) is None
        assert table.heartbeat(Tid(1)) is False
        assert not table.lease_live(Tid(1))
        # The captured error still names the tid (the watchdog dedupes
        # and tolerates victims that vanished under it).
        assert ripe.tid == Tid(1)


class TestNextExpiry:
    def test_none_when_nothing_armed(self, table):
        assert table.next_expiry() is None

    def test_minimum_across_deadlines_and_leases(self, clock, table):
        table.set_deadline(Tid(1), at=100)
        table.grant_lease(Tid(2), duration=40)  # expires at 40
        assert table.next_expiry() == 40
        table.forget(Tid(2))
        assert table.next_expiry() == 100


class TestGuardianship:
    def test_guard_and_wards_of(self, table):
        table.guard(Tid(2), Tid(1))
        table.guard(Tid(3), Tid(1))
        assert table.guardian_of(Tid(2)) == Tid(1)
        assert table.wards_of(Tid(1)) == [Tid(2), Tid(3)]

    def test_release_guardian_frees_all_wards(self, table):
        table.guard(Tid(2), Tid(1))
        table.guard(Tid(3), Tid(1))
        table.release_guardian(Tid(1))
        assert table.guardian_of(Tid(2)) is None
        assert table.wards_of(Tid(1)) == []

    def test_forget_drops_every_entry(self, table):
        table.set_deadline(Tid(1), at=5)
        table.grant_lease(Tid(1), duration=5)
        table.guard(Tid(1), Tid(9))
        table.forget(Tid(1))
        assert table.deadline_of(Tid(1)) is None
        assert table.lease_of(Tid(1)) is None
        assert table.guardian_of(Tid(1)) is None
        assert table.expired(now=100) == []


class TestEventWiring:
    def test_delegate_event_records_guardian(self, rt):
        from repro.resilience import install_resilience

        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")

        assert rt.run(setup).committed
        a = oids["a"]

        def writer(tx):
            yield tx.write(a, b"a1")

        t1 = rt.spawn(writer)
        rt.wait(t1)
        t2 = rt.spawn(_idle)
        rt.wait(t2)
        rt.manager.delegate(t1, t2, oids={a})
        assert kit.deadlines.guardian_of(t2) == t1

    def test_clean_termination_forgets_and_releases(self, rt):
        from repro.resilience import install_resilience

        kit = install_resilience(rt.manager, rt)
        oids = {}

        def setup(tx):
            oids["a"] = yield tx.create(b"a0")

        assert rt.run(setup).committed
        a = oids["a"]

        def writer(tx):
            yield tx.write(a, b"a1")

        t1 = rt.spawn(writer)
        rt.wait(t1)
        t2 = rt.spawn(_idle)
        rt.wait(t2)
        rt.manager.delegate(t1, t2, oids={a})
        kit.deadlines.grant_lease(t1, duration=1000)

        # The guardian commits cleanly: its lease is forgotten and the
        # ward is released — completed delegation must not strand t2.
        assert rt.commit(t1)
        assert kit.deadlines.lease_of(t1) is None
        assert kit.deadlines.guardian_of(t2) is None
        assert rt.commit(t2)
