"""The unified error taxonomy: one root, attributable context everywhere."""

import inspect

import pytest

import repro.common.errors as errors_module
from repro.common.errors import (
    AssetError,
    Backpressure,
    DeadlineExceeded,
    DependencyCycleError,
    LeaseExpired,
    MessageDropped,
    NetworkError,
    NetworkTimeout,
    PartitionedError,
    QuarantinedObjectError,
    RetryExhausted,
    SchedulerStalledError,
    StorageError,
    TransactionAborted,
    TransientError,
    TransientIOError,
    UnknownObjectError,
    UnknownTransactionError,
)
from repro.common.ids import Tid


class TestTaxonomy:
    def test_every_public_error_derives_from_asset_error(self):
        for name, obj in vars(errors_module).items():
            if inspect.isclass(obj) and issubclass(obj, BaseException):
                assert issubclass(obj, AssetError), (
                    f"{name} escapes the AssetError hierarchy"
                )

    def test_base_carries_tid_and_op(self):
        error = AssetError("boom", tid=Tid(7), op="commit")
        assert error.tid == Tid(7)
        assert error.op == "commit"

    def test_tid_and_op_default_to_none(self):
        assert AssetError("x").tid is None
        assert AssetError("x").op is None

    def test_storage_errors_are_asset_errors(self):
        assert issubclass(TransientIOError, StorageError)
        assert issubclass(QuarantinedObjectError, StorageError)
        assert issubclass(StorageError, AssetError)

    def test_one_except_clause_at_the_boundary(self):
        for exc in (
            UnknownTransactionError(Tid(1)),
            UnknownObjectError("o"),
            TransactionAborted(Tid(1), reason="test"),
            DependencyCycleError([Tid(1), Tid(2)]),
            DeadlineExceeded(Tid(1), 10, 20),
            LeaseExpired(Tid(1), 5, 10, 30),
            Backpressure("active", 9, 8),
            RetryExhausted("commit", 3),
            TransientIOError("flaky"),
            QuarantinedObjectError("o"),
        ):
            with pytest.raises(AssetError):
                raise exc


class TestResilienceErrors:
    def test_deadline_exceeded_fields(self):
        error = DeadlineExceeded(Tid(3), deadline=100, now=150)
        assert error.tid == Tid(3)
        assert error.deadline == 100
        assert error.now == 150
        assert error.op == "deadline"
        assert "deadline tick 100" in str(error)

    def test_lease_expired_fields(self):
        error = LeaseExpired(Tid(4), last_beat=10, duration=32, now=99)
        assert error.tid == Tid(4)
        assert error.last_beat == 10
        assert error.duration == 32
        assert error.now == 99
        assert error.op == "lease"

    def test_backpressure_names_the_gate(self):
        error = Backpressure("deadline_pressure", load=12, limit=8)
        assert error.gate == "deadline_pressure"
        assert error.load == 12
        assert error.limit == 8
        assert error.op == "initiate"

    def test_retry_exhausted_carries_the_last_error(self):
        cause = TransientIOError("device hiccup")
        error = RetryExhausted("commit", attempts=3, last_error=cause, tid=Tid(9))
        assert error.attempts == 3
        assert error.last_error is cause
        assert error.tid == Tid(9)
        assert error.op == "commit"
        assert "3 attempt" in str(error)


class TestNetworkBranch:
    def test_every_network_error_is_transient(self):
        # One retry policy must cover the whole fabric branch.
        for cls in (NetworkError, MessageDropped, NetworkTimeout, PartitionedError):
            assert issubclass(cls, TransientError)
            assert issubclass(cls, AssetError)
        assert not issubclass(NetworkError, StorageError)

    def test_dropped_carries_the_link_and_step(self):
        error = MessageDropped("alpha", "beta", "prepare", step=34)
        assert (error.src, error.dst) == ("alpha", "beta")
        assert error.kind == "prepare"
        assert error.step == 34
        assert "at step 34" in str(error)

    def test_timeout_is_in_doubt_not_a_failure_verdict(self):
        error = NetworkTimeout("client", "alpha", "gc_begin", rounds=16)
        assert error.op == "net.call"
        assert "no reply" in str(error)

    def test_partitioned_names_the_severed_link(self):
        error = PartitionedError("alpha", "gamma")
        assert "alpha->gamma" in str(error)

    def test_retry_policy_absorbs_network_timeouts(self):
        from repro.resilience.retry import RetryPolicy

        calls = []

        def flaky_send():
            calls.append(1)
            if len(calls) < 3:
                raise NetworkTimeout("client", "beta", "wait", rounds=4)
            return "reply"

        assert RetryPolicy(max_attempts=4).run(flaky_send, op="rpc") == "reply"
        assert len(calls) == 3

    def test_retry_policy_surfaces_exhaustion(self):
        from repro.resilience.retry import RetryPolicy

        def always_dropped():
            raise MessageDropped("alpha", "beta", "vote")

        with pytest.raises(RetryExhausted) as info:
            RetryPolicy(max_attempts=2).run(always_dropped, op="rpc")
        assert isinstance(info.value.last_error, MessageDropped)


class TestSchedulerStalledFoldedIn:
    def test_importable_from_both_homes_as_one_class(self):
        from repro.runtime.coop import SchedulerStalledError as FromCoop

        assert FromCoop is SchedulerStalledError
        assert issubclass(SchedulerStalledError, AssetError)

    def test_stalled_tids_reports_in_order(self):
        from repro.runtime.coop import StalledTask

        rows = [
            StalledTask(tid=Tid(2), status="running"),
            StalledTask(tid=Tid(5), status="committing"),
        ]
        error = SchedulerStalledError("commit of Tid(2)", stalled=rows)
        assert error.stalled_tids() == [Tid(2), Tid(5)]
        assert "Tid(2)" in str(error)
