"""AdmissionController: typed backpressure at the ``initiate`` door."""

import pytest

from repro.common.errors import Backpressure
from repro.common.ids import Tid
from repro.resilience import install_resilience
from repro.runtime.coop import CooperativeRuntime


def _idle(tx):
    return
    yield


class TestActiveGate:
    def test_sheds_beyond_max_active(self, rt):
        kit = install_resilience(rt.manager, rt, max_active=2)
        t1 = rt.spawn(_idle)
        t2 = rt.spawn(_idle)
        assert t1 and t2
        with pytest.raises(Backpressure) as info:
            rt.initiate(_idle)
        error = info.value
        assert error.gate == "active"
        assert error.load == 2
        assert error.limit == 2
        assert kit.admission.stats["shed_active"] == 1
        assert kit.admission.stats["admitted"] == 2

    def test_terminations_free_slots(self, rt):
        install_resilience(rt.manager, rt, max_active=2)
        t1 = rt.spawn(_idle)
        t2 = rt.spawn(_idle)
        rt.wait(t1)
        assert rt.commit(t1)
        t3 = rt.spawn(_idle)  # the committed slot is free again
        assert t3
        rt.wait(t2)
        rt.wait(t3)

    def test_disabled_controller_admits_everything(self, rt):
        kit = install_resilience(rt.manager, rt, max_active=1)
        rt.spawn(_idle)
        kit.admission.enabled = False
        assert rt.spawn(_idle)


class TestDeadlinePressureGate:
    def test_sheds_when_deadlines_crowd_the_window(self, rt):
        kit = install_resilience(
            rt.manager, rt, deadline_pressure_limit=2, pressure_window=50
        )
        now = rt.manager.clock.now()
        kit.deadlines.set_deadline(Tid(101), at=now + 10)
        kit.deadlines.set_deadline(Tid(102), at=now + 20)
        # A deadline beyond the window does not count.
        kit.deadlines.set_deadline(Tid(103), at=now + 500)
        with pytest.raises(Backpressure) as info:
            rt.initiate(_idle)
        assert info.value.gate == "deadline_pressure"
        assert info.value.load == 2
        assert kit.admission.stats["shed_deadline_pressure"] == 1

    def test_clear_horizon_admits(self, rt):
        kit = install_resilience(
            rt.manager, rt, deadline_pressure_limit=2, pressure_window=50
        )
        now = rt.manager.clock.now()
        kit.deadlines.set_deadline(Tid(101), at=now + 500)
        assert rt.spawn(_idle)


class TestInstallation:
    def test_no_gate_limits_means_no_controller(self, rt):
        kit = install_resilience(rt.manager, rt)
        assert kit.admission is None
        assert rt.manager.admission is None

    def test_backpressure_fires_before_resource_accounting(self):
        # The typed gate sits in front of the classic max_transactions
        # null-tid behaviour, so callers get the informative failure.
        from repro.core.manager import TransactionManager

        manager = TransactionManager(max_transactions=1)
        rt = CooperativeRuntime(manager)
        install_resilience(manager, rt, max_active=1)
        assert rt.spawn(_idle)
        with pytest.raises(Backpressure):
            rt.initiate(_idle)
