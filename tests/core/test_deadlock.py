"""Deadlock detection: waits-for graph, cycles, victims."""

import pytest

from repro.common.ids import Tid
from repro.core.deadlock import DeadlockDetector, WaitsForGraph
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.status import TransactionStatus


class TestWaitsForGraph:
    def test_no_cycle(self):
        graph = WaitsForGraph()
        graph.add(Tid(1), Tid(2))
        graph.add(Tid(2), Tid(3))
        assert graph.cycles() == []

    def test_two_cycle(self):
        graph = WaitsForGraph()
        graph.add(Tid(1), Tid(2))
        graph.add(Tid(2), Tid(1))
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {Tid(1), Tid(2)}

    def test_self_edge_ignored(self):
        graph = WaitsForGraph()
        graph.add(Tid(1), Tid(1))
        assert graph.cycles() == []

    def test_long_cycle(self):
        graph = WaitsForGraph()
        for value in range(1, 5):
            graph.add(Tid(value), Tid(value % 4 + 1))
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {Tid(1), Tid(2), Tid(3), Tid(4)}

    def test_two_disjoint_cycles(self):
        graph = WaitsForGraph()
        graph.add(Tid(1), Tid(2))
        graph.add(Tid(2), Tid(1))
        graph.add(Tid(3), Tid(4))
        graph.add(Tid(4), Tid(3))
        assert len(graph.cycles()) == 2

    def test_victim_is_youngest(self):
        assert DeadlockDetector.choose_victim([Tid(3), Tid(9), Tid(5)]) == Tid(9)


@pytest.fixture
def manager():
    return TransactionManager()


def running(manager):
    tid = manager.initiate()
    manager.begin(tid)
    return tid


class TestLockDeadlocks:
    def test_classic_two_transaction_deadlock(self, manager):
        a, b = running(manager), running(manager)
        oid_x = manager.create_object(a, b"x")
        oid_y = manager.create_object(b, b"y")
        assert not manager.try_write(a, oid_y, b"ay")
        assert not manager.try_write(b, oid_x, b"bx")
        detector = DeadlockDetector(manager)
        cycles = detector.find_deadlocks()
        assert len(cycles) == 1
        assert set(cycles[0]) == {a, b}

    def test_resolve_one_aborts_youngest(self, manager):
        setup = running(manager)
        oid_x = manager.create_object(setup, b"x")
        oid_y = manager.create_object(setup, b"y")
        manager.note_completed(setup)
        manager.try_commit(setup)
        a, b = running(manager), running(manager)
        manager.try_write(a, oid_x, b"ax")
        manager.try_write(b, oid_y, b"by")
        manager.try_write(a, oid_y, b"ay")
        manager.try_write(b, oid_x, b"bx")
        victim = DeadlockDetector(manager).resolve_one()
        assert victim == b  # youngest
        assert manager.status_of(b) is TransactionStatus.ABORTED
        assert manager.try_write(a, oid_y, b"ay")

    def test_no_deadlock_returns_none(self, manager):
        running(manager)
        assert DeadlockDetector(manager).resolve_one() is None


class TestCommitDeadlocks:
    def test_commit_wait_cycle_via_gc_and_cd(self, manager):
        """t1 GC-grouped with a running t2; t2's completion never comes
        because t2 waits (CD) on t1's lock-holder... simplified: a commit
        wait on a transaction that itself lock-waits on a group member."""
        t1, t2 = running(manager), running(manager)
        manager.note_completed(t1)
        manager.form_dependency(DependencyType.GC, t1, t2)
        # t1's commit waits for t2 (group member still running).
        manager.try_commit(t1)
        assert manager.is_commit_requested(t1)
        assert manager.commit_waits_of(t1) == [t2]
        graph = DeadlockDetector(manager).build_graph()
        assert Tid(t2.value) in graph.edges.get(t1, set())

    def test_cd_commit_wait_edges(self, manager):
        ti, tj = running(manager), running(manager)
        manager.note_completed(ti)
        manager.note_completed(tj)
        manager.form_dependency(DependencyType.CD, ti, tj)
        manager.try_commit(tj)  # blocked on ti
        waits = manager.commit_waits_of(tj)
        assert waits == [ti]
