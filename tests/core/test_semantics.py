"""Operation conflict tables (read/write default + section 5 extensions)."""

from repro.core.semantics import READ, WRITE, ConflictTable


class TestDefaultTable:
    def test_read_read_compatible(self):
        table = ConflictTable()
        assert not table.conflicts(READ, READ)

    def test_write_conflicts_with_everything(self):
        table = ConflictTable()
        assert table.conflicts(WRITE, WRITE)
        assert table.conflicts(WRITE, READ)
        assert table.conflicts(READ, WRITE)

    def test_write_covers_read(self):
        table = ConflictTable()
        assert table.covers({WRITE}, READ)
        assert table.covers({WRITE}, WRITE)
        assert not table.covers({READ}, WRITE)

    def test_every_op_covers_itself(self):
        table = ConflictTable()
        assert table.covers({READ}, READ)

    def test_conflicts_any(self):
        table = ConflictTable()
        assert table.conflicts_any({READ, WRITE}, READ)
        assert not table.conflicts_any({READ}, READ)
        assert not table.conflicts_any(set(), WRITE)


class TestExtensions:
    def test_counter_ops_commute(self):
        table = ConflictTable.with_counter_ops()
        assert not table.conflicts("increment", "increment")
        assert not table.conflicts("increment", "decrement")
        assert not table.conflicts("decrement", "decrement")

    def test_counter_ops_conflict_with_rw(self):
        table = ConflictTable.with_counter_ops()
        assert table.conflicts("increment", READ)
        assert table.conflicts("increment", WRITE)
        assert table.conflicts(WRITE, "increment")

    def test_set_insert_commutes(self):
        table = ConflictTable.with_set_ops()
        assert not table.conflicts("insert", "insert")
        assert table.conflicts("insert", WRITE)

    def test_custom_coverage(self):
        table = ConflictTable()
        table.declare_covers("admin", READ)
        table.declare_covers("admin", WRITE)
        assert table.covers({"admin"}, READ)
        assert table.covers({"admin"}, WRITE)

    def test_unknown_ops_conflict_by_default(self):
        table = ConflictTable()
        table.register("mystery")
        assert table.conflicts("mystery", "mystery")
        assert table.conflicts("mystery", READ)

    def test_operations_listing(self):
        table = ConflictTable.with_counter_ops()
        assert {"read", "write", "increment", "decrement"} <= set(
            table.operations
        )
