"""TD / OD / LRD / PD descriptor structures (Figure 1)."""

import pytest

from repro.common.errors import InvalidStateError, UnknownTransactionError
from repro.common.ids import NULL_TID, ObjectId, Tid
from repro.core.descriptors import (
    LockRequestDescriptor,
    LockRequestStatus,
    ObjectDescriptor,
    PermitDescriptor,
    TransactionDescriptor,
    TransactionTable,
)
from repro.core.status import TransactionStatus


class TestTransactionDescriptor:
    def test_defaults(self):
        td = TransactionDescriptor(tid=Tid(1))
        assert td.parent == NULL_TID
        assert td.status is TransactionStatus.INITIATED
        assert td.locks == []

    def test_set_status_enforces_machine(self):
        td = TransactionDescriptor(tid=Tid(1))
        td.set_status(TransactionStatus.RUNNING)
        with pytest.raises(InvalidStateError):
            td.set_status(TransactionStatus.COMMITTED)

    def test_lock_on(self):
        td = TransactionDescriptor(tid=Tid(1))
        od = ObjectDescriptor(ObjectId(5))
        lrd = LockRequestDescriptor(td=td, od=od, operations={"read"})
        td.locks.append(lrd)
        assert td.lock_on(ObjectId(5)) is lrd
        assert td.lock_on(ObjectId(6)) is None
        assert td.locked_object_ids() == [ObjectId(5)]


class TestPermitDescriptor:
    def test_specific_permit_covers(self):
        pd = PermitDescriptor(
            oid=ObjectId(1), giver=Tid(1), receiver=Tid(2), operation="write"
        )
        assert pd.covers(Tid(2), "write")
        assert not pd.covers(Tid(3), "write")
        assert not pd.covers(Tid(2), "read")

    def test_wildcard_receiver(self):
        pd = PermitDescriptor(oid=ObjectId(1), giver=Tid(1), operation="write")
        assert pd.covers(Tid(2), "write")
        assert pd.covers(Tid(99), "write")

    def test_wildcard_operation(self):
        pd = PermitDescriptor(oid=ObjectId(1), giver=Tid(1), receiver=Tid(2))
        assert pd.covers(Tid(2), "read")
        assert pd.covers(Tid(2), "write")

    def test_repr_readable(self):
        pd = PermitDescriptor(oid=ObjectId(1), giver=Tid(1))
        assert "any" in repr(pd)


class TestObjectDescriptor:
    def test_lookup_by_tid(self):
        od = ObjectDescriptor(ObjectId(1))
        td = TransactionDescriptor(tid=Tid(1))
        lrd = LockRequestDescriptor(td=td, od=od, operations={"read"})
        od.attach_granted(lrd)
        assert od.granted_for(Tid(1)) is lrd
        assert od.granted_for(Tid(2)) is None
        assert od.pending_for(Tid(1)) is None

    def test_idle_detection(self):
        od = ObjectDescriptor(ObjectId(1))
        assert od.is_idle()
        od.attach_permit(
            PermitDescriptor(oid=ObjectId(1), giver=Tid(1))
        )
        assert not od.is_idle()

    def test_active_count_tracks_suspension(self):
        od = ObjectDescriptor(ObjectId(1))
        a = LockRequestDescriptor(
            td=TransactionDescriptor(tid=Tid(1)), od=od, operations={"w"}
        )
        b = LockRequestDescriptor(
            td=TransactionDescriptor(tid=Tid(2)), od=od, operations={"r"}
        )
        od.attach_granted(a)
        od.attach_granted(b)
        assert od.foreign_active_count(Tid(1)) == 1
        assert od.foreign_active_count(Tid(3)) == 2
        od.set_suspended(b, True)
        assert od.foreign_active_count(Tid(1)) == 0
        od.set_suspended(b, True)  # idempotent: no double decrement
        od.set_suspended(b, False)
        assert od.foreign_active_count(Tid(1)) == 1
        od.detach_granted(a)
        assert od.foreign_active_count(Tid(2)) == 0

    def test_permit_buckets_by_giver_and_receiver(self):
        od = ObjectDescriptor(ObjectId(1))
        explicit = PermitDescriptor(
            oid=ObjectId(1), giver=Tid(1), receiver=Tid(2)
        )
        wildcard = PermitDescriptor(oid=ObjectId(1), giver=Tid(1))
        od.attach_permit(explicit)
        od.attach_permit(wildcard)
        assert list(od.permits_from(Tid(1))) == [explicit, wildcard]
        assert list(od.permits_to_receiver(Tid(2))) == [explicit]
        assert list(od.permits_to_receiver(Tid(9))) == []
        od.detach_permit(explicit)
        assert list(od.permits_to_receiver(Tid(2))) == []
        od.detach_permit(wildcard)
        assert list(od.permits_from(Tid(1))) == []
        assert od.is_idle()


class TestLockRequestDescriptor:
    def test_accessors(self):
        td = TransactionDescriptor(tid=Tid(7))
        od = ObjectDescriptor(ObjectId(3))
        lrd = LockRequestDescriptor(td=td, od=od, operations={"write"})
        assert lrd.tid == Tid(7)
        assert lrd.oid == ObjectId(3)
        assert lrd.status is LockRequestStatus.GRANTED

    def test_repr_shows_suspension(self):
        td = TransactionDescriptor(tid=Tid(7))
        od = ObjectDescriptor(ObjectId(3))
        lrd = LockRequestDescriptor(
            td=td, od=od, operations={"write"}, suspended=True
        )
        assert "suspended" in repr(lrd)


class TestTransactionTable:
    def test_add_get_remove(self):
        table = TransactionTable()
        td = TransactionDescriptor(tid=Tid(1))
        table.add(td)
        assert table.get(Tid(1)) is td
        assert Tid(1) in table
        table.remove(Tid(1))
        assert Tid(1) not in table

    def test_unknown_raises(self):
        with pytest.raises(UnknownTransactionError):
            TransactionTable().get(Tid(9))

    def test_maybe_get(self):
        assert TransactionTable().maybe_get(Tid(9)) is None

    def test_iteration(self):
        table = TransactionTable()
        for value in range(5):
            table.add(TransactionDescriptor(tid=Tid(value + 1)))
        assert len(table) == 5
        assert {td.tid.value for td in table} == {1, 2, 3, 4, 5}
