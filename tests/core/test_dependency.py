"""The dependency graph: CD/AD/GC edges, cycle refusal, GC groups."""

import pytest

from repro.common.errors import DependencyCycleError
from repro.common.ids import Tid
from repro.core.dependency import DependencyGraph, DependencyType

D = DependencyType


class TestEdgeDirection:
    def test_form_constrains_second_argument(self):
        graph = DependencyGraph()
        edge = graph.add(D.CD, Tid(1), Tid(2))
        # form_dependency(CD, t1, t2): t2 cannot commit before t1.
        assert edge.dependent == Tid(2)
        assert edge.dependee == Tid(1)

    def test_outgoing_incoming(self):
        graph = DependencyGraph()
        graph.add(D.AD, Tid(1), Tid(2))
        assert [e.dependee for e in graph.outgoing(Tid(2))] == [Tid(1)]
        assert [e.dependent for e in graph.incoming(Tid(1))] == [Tid(2)]
        assert graph.outgoing(Tid(1)) == []

    def test_duplicate_edges_idempotent(self):
        graph = DependencyGraph()
        first = graph.add(D.CD, Tid(1), Tid(2))
        second = graph.add(D.CD, Tid(1), Tid(2))
        assert first is second
        assert len(graph) == 1

    def test_same_pair_different_types(self):
        graph = DependencyGraph()
        graph.add(D.CD, Tid(1), Tid(2))
        graph.add(D.GC, Tid(1), Tid(2))
        assert len(graph) == 2


class TestCyclePrevention:
    def test_self_dependency_refused(self):
        with pytest.raises(DependencyCycleError):
            DependencyGraph().add(D.CD, Tid(1), Tid(1))

    def test_cd_two_cycle_refused(self):
        graph = DependencyGraph()
        graph.add(D.CD, Tid(1), Tid(2))
        with pytest.raises(DependencyCycleError):
            graph.add(D.CD, Tid(2), Tid(1))

    def test_mixed_ad_cd_cycle_refused(self):
        graph = DependencyGraph()
        graph.add(D.AD, Tid(1), Tid(2))
        graph.add(D.CD, Tid(2), Tid(3))
        with pytest.raises(DependencyCycleError):
            graph.add(D.CD, Tid(3), Tid(1))

    def test_gc_cycles_allowed(self):
        graph = DependencyGraph()
        graph.add(D.GC, Tid(1), Tid(2))
        graph.add(D.GC, Tid(2), Tid(1))  # fine: that's a group

    def test_begin_dependencies_do_not_count(self):
        graph = DependencyGraph()
        graph.add(D.BCD, Tid(1), Tid(2))
        graph.add(D.BCD, Tid(2), Tid(1))  # allowed (checked at begin time)

    def test_diamond_is_fine(self):
        graph = DependencyGraph()
        graph.add(D.CD, Tid(1), Tid(2))
        graph.add(D.CD, Tid(1), Tid(3))
        graph.add(D.CD, Tid(2), Tid(4))
        graph.add(D.CD, Tid(3), Tid(4))
        assert len(graph) == 4


class TestGroups:
    def test_gc_group_transitive(self):
        graph = DependencyGraph()
        graph.add(D.GC, Tid(1), Tid(2))
        graph.add(D.GC, Tid(2), Tid(3))
        assert graph.gc_group(Tid(1)) == {Tid(1), Tid(2), Tid(3)}
        assert graph.gc_group(Tid(3)) == {Tid(1), Tid(2), Tid(3)}

    def test_singleton_group(self):
        graph = DependencyGraph()
        assert graph.gc_group(Tid(9)) == {Tid(9)}

    def test_cd_does_not_join_group(self):
        graph = DependencyGraph()
        graph.add(D.GC, Tid(1), Tid(2))
        graph.add(D.CD, Tid(2), Tid(3))
        assert graph.gc_group(Tid(1)) == {Tid(1), Tid(2)}

    def test_gc_edges_within(self):
        graph = DependencyGraph()
        graph.add(D.GC, Tid(1), Tid(2))
        graph.add(D.GC, Tid(1), Tid(3))
        group = graph.gc_group(Tid(1))
        assert len(graph.gc_edges_within(group)) == 2


class TestTypeProperties:
    def test_blocks_commit(self):
        assert D.CD.blocks_commit and D.AD.blocks_commit
        assert not D.GC.blocks_commit
        assert not D.BCD.blocks_commit

    def test_blocks_begin(self):
        assert D.BCD.blocks_begin and D.BAD.blocks_begin
        assert not D.CD.blocks_begin

    def test_aborts_dependent(self):
        assert D.AD.aborts_dependent and D.GC.aborts_dependent
        assert not D.CD.aborts_dependent


class TestRemoval:
    def test_remove_involving(self):
        graph = DependencyGraph()
        graph.add(D.CD, Tid(1), Tid(2))
        graph.add(D.AD, Tid(2), Tid(3))
        graph.add(D.CD, Tid(4), Tid(5))
        graph.remove_involving(Tid(2))
        assert graph.outgoing(Tid(2)) == []
        assert graph.incoming(Tid(2)) == []
        assert graph.outgoing(Tid(3)) == []
        assert len(graph) == 1  # the 4->5 edge remains

    def test_edge_other(self):
        graph = DependencyGraph()
        edge = graph.add(D.GC, Tid(1), Tid(2))
        assert edge.other(Tid(1)) == Tid(2)
        assert edge.other(Tid(2)) == Tid(1)
