"""TransactionManager: the basic primitives (section 2.1)."""

import pytest

from repro.common.errors import (
    InvalidStateError,
    TransactionAborted,
    UnknownTransactionError,
)
from repro.common.ids import NULL_TID, Tid
from repro.core.manager import TransactionManager
from repro.core.outcomes import CommitStatus
from repro.core.status import TransactionStatus


@pytest.fixture
def manager():
    return TransactionManager()


class TestInitiate:
    def test_returns_fresh_tids(self, manager):
        first = manager.initiate()
        second = manager.initiate()
        assert first and second and first != second

    def test_records_parent(self, manager):
        parent = manager.initiate()
        child = manager.initiate(initiator=parent)
        assert manager.parent_of(child) == parent
        assert manager.parent_of(parent) == NULL_TID

    def test_initial_status(self, manager):
        tid = manager.initiate()
        assert manager.status_of(tid) is TransactionStatus.INITIATED

    def test_resource_limit_returns_null_tid(self):
        manager = TransactionManager(max_transactions=2)
        assert manager.initiate()
        assert manager.initiate()
        assert manager.initiate() == NULL_TID

    def test_limit_frees_after_termination(self):
        manager = TransactionManager(max_transactions=1)
        tid = manager.initiate()
        manager.abort(tid)
        assert manager.initiate()

    def test_unknown_tid_raises(self, manager):
        with pytest.raises(UnknownTransactionError):
            manager.status_of(Tid(404))


class TestBegin:
    def test_begin_transitions_to_running(self, manager):
        tid = manager.initiate()
        assert manager.begin(tid)
        assert manager.status_of(tid) is TransactionStatus.RUNNING

    def test_double_begin_fails(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        assert not manager.begin(tid)

    def test_multi_begin_all_or_nothing(self, manager):
        first = manager.initiate()
        second = manager.initiate()
        manager.begin(first)
        # first is already running: the joint begin must refuse both.
        third = manager.initiate()
        assert not manager.begin(first, third)
        assert manager.status_of(third) is TransactionStatus.INITIATED
        assert manager.begin(second, third)

    def test_begin_aborted_transaction_fails(self, manager):
        tid = manager.initiate()
        manager.abort(tid)
        assert not manager.begin(tid)


class TestWaitAndComplete:
    def test_wait_running_is_none(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        assert manager.wait_outcome(tid) is None

    def test_wait_after_completion(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.note_completed(tid)
        assert manager.wait_outcome(tid) is True

    def test_wait_after_abort(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.abort(tid)
        assert manager.wait_outcome(tid) is False

    def test_wait_after_commit(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.note_completed(tid)
        manager.try_commit(tid)
        assert manager.wait_outcome(tid) is True

    def test_note_completed_on_aborting_returns_false(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.abort(tid)
        assert not manager.note_completed(tid)


class TestCommitBasics:
    def test_commit_before_completion_not_ready(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        outcome = manager.try_commit(tid)
        assert outcome.status is CommitStatus.NOT_COMPLETED

    def test_commit_after_completion(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.note_completed(tid)
        outcome = manager.try_commit(tid)
        assert outcome.status is CommitStatus.COMMITTED
        assert manager.status_of(tid) is TransactionStatus.COMMITTED

    def test_commit_twice_reports_already(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.note_completed(tid)
        manager.try_commit(tid)
        assert manager.try_commit(tid).status is CommitStatus.ALREADY_COMMITTED

    def test_commit_aborted_reports_aborted(self, manager):
        tid = manager.initiate()
        manager.abort(tid)
        outcome = manager.try_commit(tid)
        assert outcome.status is CommitStatus.ABORTED
        assert not outcome


class TestAbortBasics:
    def test_abort_returns_true(self, manager):
        tid = manager.initiate()
        assert manager.abort(tid)
        assert manager.status_of(tid) is TransactionStatus.ABORTED

    def test_abort_committed_returns_false(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        manager.note_completed(tid)
        manager.try_commit(tid)
        assert not manager.abort(tid)

    def test_abort_is_idempotent(self, manager):
        tid = manager.initiate()
        manager.abort(tid)
        assert manager.abort(tid)

    def test_status_queries(self, manager):
        tid = manager.initiate()
        assert not manager.has_aborted(tid)
        assert not manager.has_committed(tid)
        manager.abort(tid)
        assert manager.has_aborted(tid)


class TestObjectOperations:
    def test_create_read_write(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, b"v0")
        outcome, value = manager.try_read(tid, oid)
        assert outcome and value == b"v0"
        assert manager.try_write(tid, oid, b"v1")
        __, value = manager.try_read(tid, oid)
        assert value == b"v1"

    def test_creator_holds_write_lock(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, b"v0")
        other = manager.initiate()
        manager.begin(other)
        outcome, __ = manager.try_read(other, oid)
        assert not outcome
        assert outcome.blockers == (tid,)

    def test_operations_on_aborted_raise(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, b"v0")
        manager.abort(tid)
        with pytest.raises(TransactionAborted):
            manager.try_read(tid, oid)

    def test_operations_before_begin_raise(self, manager):
        tid = manager.initiate()
        with pytest.raises(InvalidStateError):
            manager.create_object(tid, b"v0")

    def test_abort_undoes_writes(self, manager):
        setup = manager.initiate()
        manager.begin(setup)
        oid = manager.create_object(setup, b"base")
        manager.note_completed(setup)
        manager.try_commit(setup)

        writer = manager.initiate()
        manager.begin(writer)
        manager.try_write(writer, oid, b"dirty")
        manager.abort(writer)

        reader = manager.initiate()
        manager.begin(reader)
        __, value = manager.try_read(reader, oid)
        assert value == b"base"

    def test_abort_deletes_created_objects(self, manager):
        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, b"temp")
        manager.abort(tid)
        assert not manager.storage.objects.exists(oid)

    def test_semantic_operation(self, manager):
        from repro.common.codec import decode_int, encode_int

        tid = manager.initiate()
        manager.begin(tid)
        oid = manager.create_object(tid, encode_int(10))

        def bump(raw):
            value = decode_int(raw) + 5
            return encode_int(value), value

        outcome, result = manager.try_operation(tid, oid, "write", bump)
        assert outcome and result == 15
