"""The new primitives at the manager level: delegate and permit forms."""

import pytest

from repro.common.errors import InvalidStateError
from repro.core.manager import TransactionManager
from repro.core.semantics import READ, WRITE
from repro.core.status import TransactionStatus


@pytest.fixture
def manager():
    return TransactionManager()


def running(manager):
    tid = manager.initiate()
    manager.begin(tid)
    return tid


def committed_object(manager, value=b"base"):
    setup = running(manager)
    oid = manager.create_object(setup, value)
    manager.note_completed(setup)
    manager.try_commit(setup)
    return oid


class TestDelegate:
    def test_delegate_moves_undo_responsibility(self, manager):
        oid = committed_object(manager)
        worker = running(manager)
        manager.try_write(worker, oid, b"work")
        collector = running(manager)
        manager.delegate(worker, collector)

        manager.abort(worker)  # no longer undoes the write
        reader = running(manager)
        assert not manager.try_read(reader, oid)[0]  # collector holds lock

        manager.note_completed(collector)
        manager.try_commit(collector)
        outcome, value = manager.try_read(reader, oid)
        assert outcome and value == b"work"

    def test_delegatee_abort_undoes_delegated_work(self, manager):
        oid = committed_object(manager)
        worker = running(manager)
        manager.try_write(worker, oid, b"work")
        collector = running(manager)
        manager.delegate(worker, collector)
        manager.abort(collector)

        reader = running(manager)
        outcome, value = manager.try_read(reader, oid)
        assert outcome and value == b"base"

    def test_delegate_to_initiated_transaction(self, manager):
        """The initiate/begin separation exists so one can delegate to a
        not-yet-begun transaction (section 2.2 design note)."""
        oid = committed_object(manager)
        worker = running(manager)
        manager.try_write(worker, oid, b"work")
        target = manager.initiate()  # never begun
        moved = manager.delegate(worker, target)
        assert moved == [oid]
        assert manager.status_of(target) is TransactionStatus.INITIATED

    def test_delegate_subset(self, manager):
        oid_a = committed_object(manager)
        oid_b = committed_object(manager)
        worker = running(manager)
        manager.try_write(worker, oid_a, b"a")
        manager.try_write(worker, oid_b, b"b")
        collector = running(manager)
        manager.delegate(worker, collector, oids={oid_a})
        manager.abort(worker)  # undoes only oid_b

        manager.note_completed(collector)
        manager.try_commit(collector)
        reader = running(manager)
        assert manager.try_read(reader, oid_a)[1] == b"a"
        assert manager.try_read(reader, oid_b)[1] == b"base"

    def test_delegate_from_terminated_refused(self, manager):
        worker = running(manager)
        manager.abort(worker)
        other = running(manager)
        with pytest.raises(InvalidStateError):
            manager.delegate(worker, other)

    def test_delegate_to_terminated_refused(self, manager):
        worker = running(manager)
        dead = running(manager)
        manager.abort(dead)
        with pytest.raises(InvalidStateError):
            manager.delegate(worker, dead)

    def test_delegation_rewrites_permits(self, manager):
        oid = committed_object(manager)
        worker = running(manager)
        manager.try_write(worker, oid, b"w")
        outsider = running(manager)
        manager.permit(worker, tj=outsider, oids=[oid], operations=[READ])
        collector = running(manager)
        manager.delegate(worker, collector)
        # The permit is now given by the collector.
        assert manager.permits.allows(oid, collector, outsider, READ)
        assert not manager.permits.allows(oid, worker, outsider, READ)

    def test_delegate_nothing_is_fine(self, manager):
        worker = running(manager)
        collector = running(manager)
        assert manager.delegate(worker, collector) == []


class TestPermitForms:
    def test_fully_specific_form(self, manager):
        oid = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid, b"x")
        peer = running(manager)
        manager.permit(holder, tj=peer, oids=[oid], operations=[WRITE])
        assert manager.try_write(peer, oid, b"y")

    def test_any_object_form_expands_held_locks(self, manager):
        oid_a = committed_object(manager)
        oid_b = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid_a, b"a")
        manager.try_write(holder, oid_b, b"b")
        peer = running(manager)
        manager.permit(holder, tj=peer, operations=[WRITE])
        assert manager.try_write(peer, oid_a, b"pa")
        assert manager.try_write(peer, oid_b, b"pb")

    def test_any_object_any_op_form(self, manager):
        oid = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid, b"x")
        peer = running(manager)
        manager.permit(holder, tj=peer)
        assert manager.try_read(peer, oid)[0]
        assert manager.try_write(peer, oid, b"y")

    def test_any_transaction_form(self, manager):
        oid = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid, b"x")
        manager.permit(holder, oids=[oid], operations=[READ])
        for __ in range(3):
            peer = running(manager)
            assert manager.try_read(peer, oid)[0]

    def test_permit_covers_later_acquired_objects_not(self, manager):
        """Call-time expansion: objects locked after the permit are not
        covered (matches the section 4.2 implementation)."""
        oid_a = committed_object(manager)
        oid_b = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid_a, b"a")
        peer = running(manager)
        manager.permit(holder, tj=peer, operations=[WRITE])
        manager.try_write(holder, oid_b, b"b")  # acquired afterwards
        assert manager.try_write(peer, oid_a, b"pa")
        assert not manager.try_write(peer, oid_b, b"pb")

    def test_permit_expansion_includes_received_permissions(self, manager):
        """The any-object form also covers objects the giver holds
        permissions on (section 4.2: 'accessed or has permission to
        access')."""
        oid = committed_object(manager)
        holder = running(manager)
        manager.try_write(holder, oid, b"x")
        middle = running(manager)
        manager.permit(holder, tj=middle, oids=[oid], operations=[WRITE])
        # middle never locked oid, but holds a permission on it.
        peer = running(manager)
        manager.permit(middle, tj=peer, operations=[WRITE])
        assert manager.try_write(peer, oid, b"y")
