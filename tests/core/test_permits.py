"""The permit table: four forms, transitive sharing, rewriting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import ObjectId, Tid
from repro.core.locks import ObjectRegistry
from repro.core.permits import PermitTable, _op_intersection
from repro.core.semantics import READ, WRITE


@pytest.fixture
def registry():
    return ObjectRegistry()


@pytest.fixture
def permits(registry):
    return PermitTable(registry)


OB = ObjectId(1)
OB2 = ObjectId(2)


class TestOpIntersection:
    def test_none_is_all(self):
        assert _op_intersection(None, None) == (True, None)
        assert _op_intersection(None, "read") == (True, "read")
        assert _op_intersection("write", None) == (True, "write")

    def test_equal_ops(self):
        assert _op_intersection("read", "read") == (True, "read")

    def test_disjoint_ops(self):
        assert _op_intersection("read", "write") == (False, None)


class TestGrantAndAllow:
    def test_specific_permit(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        assert permits.allows(OB, Tid(1), Tid(2), WRITE)
        assert not permits.allows(OB, Tid(1), Tid(2), READ)
        assert not permits.allows(OB, Tid(1), Tid(3), WRITE)
        assert not permits.allows(OB2, Tid(1), Tid(2), WRITE)

    def test_wildcard_receiver(self, permits):
        permits.grant(OB, Tid(1), operation=WRITE)
        assert permits.allows(OB, Tid(1), Tid(2), WRITE)
        assert permits.allows(OB, Tid(1), Tid(42), WRITE)

    def test_wildcard_operation(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2))
        assert permits.allows(OB, Tid(1), Tid(2), READ)
        assert permits.allows(OB, Tid(1), Tid(2), WRITE)

    def test_wrong_giver_does_not_allow(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2))
        assert not permits.allows(OB, Tid(9), Tid(2), READ)

    def test_duplicate_grants_are_deduplicated(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        added = permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        assert added == []
        assert len(permits.permits_on(OB)) == 1


class TestTransitivity:
    """permit(ti,tj) then permit(tj,tk) implies permit(ti,tk) (2.2)."""

    def test_basic_chain(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB, Tid(2), receiver=Tid(3), operation=WRITE)
        assert permits.allows(OB, Tid(1), Tid(3), WRITE)

    def test_chain_added_in_reverse_order(self, permits):
        permits.grant(OB, Tid(2), receiver=Tid(3), operation=WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        assert permits.allows(OB, Tid(1), Tid(3), WRITE)

    def test_operation_intersection(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB, Tid(2), receiver=Tid(3), operation=READ)
        # write ∩ read = empty: no derived permission.
        assert not permits.allows(OB, Tid(1), Tid(3), READ)
        assert not permits.allows(OB, Tid(1), Tid(3), WRITE)

    def test_wildcard_op_intersection(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2))  # any op
        permits.grant(OB, Tid(2), receiver=Tid(3), operation=READ)
        assert permits.allows(OB, Tid(1), Tid(3), READ)
        assert not permits.allows(OB, Tid(1), Tid(3), WRITE)

    def test_object_scoping(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB2, Tid(2), receiver=Tid(3), operation=WRITE)
        # Different objects: intersection of object sets is empty.
        assert not permits.allows(OB, Tid(1), Tid(3), WRITE)
        assert not permits.allows(OB2, Tid(1), Tid(3), WRITE)

    def test_long_chain_closure(self, permits):
        for index in range(1, 6):
            permits.grant(
                OB, Tid(index), receiver=Tid(index + 1), operation=WRITE
            )
        assert permits.allows(OB, Tid(1), Tid(6), WRITE)

    def test_derived_permits_marked(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        added = permits.grant(OB, Tid(2), receiver=Tid(3), operation=WRITE)
        derived = [pd for pd in added if pd.derived]
        assert len(derived) == 1
        assert derived[0].giver == Tid(1)
        assert derived[0].receiver == Tid(3)

    @given(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1, max_size=12,
    ))
    @settings(max_examples=60, deadline=None)
    def test_closure_property(self, chain):
        """Property: allows() equals reachability in the permit digraph."""
        registry = ObjectRegistry()
        permits = PermitTable(registry)
        edges = set()
        for giver, receiver in chain:
            if giver == receiver:
                continue
            permits.grant(OB, Tid(giver), receiver=Tid(receiver),
                          operation=WRITE)
            edges.add((giver, receiver))
        # reachability closure over the explicit edges
        closure = set(edges)
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for c, d in list(closure):
                    if b == c and (a, d) not in closure and a != d:
                        closure.add((a, d))
                        changed = True
        for a in range(1, 6):
            for b in range(1, 6):
                if a == b:
                    continue
                expected = (a, b) in closure
                actual = permits.allows(OB, Tid(a), Tid(b), WRITE)
                assert actual == expected, (a, b, sorted(closure))


class TestRemovalAndRewrite:
    def test_remove_involving_drops_both_directions(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB, Tid(3), receiver=Tid(1), operation=WRITE)
        permits.grant(OB, Tid(3), receiver=Tid(4), operation=WRITE)
        permits.remove_involving(Tid(1))
        assert not permits.allows(OB, Tid(1), Tid(2), WRITE)
        assert not permits.allows(OB, Tid(3), Tid(1), WRITE)
        assert permits.allows(OB, Tid(3), Tid(4), WRITE)

    def test_derived_permit_survives_intermediary_removal(self, permits):
        """Materialized transitive permits stand on their own."""
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB, Tid(2), receiver=Tid(3), operation=WRITE)
        permits.remove_involving(Tid(2))
        assert permits.allows(OB, Tid(1), Tid(3), WRITE)

    def test_rewrite_giver_for_delegation(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(5), operation=WRITE)
        permits.rewrite_giver(Tid(1), Tid(2))
        assert not permits.allows(OB, Tid(1), Tid(5), WRITE)
        assert permits.allows(OB, Tid(2), Tid(5), WRITE)

    def test_rewrite_scoped_to_oids(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(5), operation=WRITE)
        permits.grant(OB2, Tid(1), receiver=Tid(5), operation=WRITE)
        permits.rewrite_giver(Tid(1), Tid(2), oids={OB})
        assert permits.allows(OB2, Tid(1), Tid(5), WRITE)
        assert permits.allows(OB, Tid(2), Tid(5), WRITE)
        assert not permits.allows(OB, Tid(1), Tid(5), WRITE)

    def test_objects_permitted_to(self, permits):
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB2, Tid(3), receiver=Tid(2))
        assert permits.objects_permitted_to(Tid(2)) == [OB, OB2]
        assert permits.objects_permitted_to(Tid(1)) == []
