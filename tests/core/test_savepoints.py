"""Savepoints: partial rollback within one transaction."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.common.codec import decode_int, encode_int
from repro.common.errors import TransactionAborted
from repro.core.manager import TransactionManager


@pytest.fixture
def manager():
    return TransactionManager()


def live_with_object(manager, value=b"v0"):
    tid = manager.initiate()
    manager.begin(tid)
    oid = manager.create_object(tid, value)
    return tid, oid


class TestManagerLevel:
    def test_rollback_undoes_suffix_only(self, manager):
        tid, oid = live_with_object(manager)
        manager.try_write(tid, oid, b"v1")
        savepoint = manager.savepoint(tid)
        manager.try_write(tid, oid, b"v2")
        manager.try_write(tid, oid, b"v3")
        undone = manager.rollback_to(tid, savepoint)
        assert undone == 2
        __, value = manager.try_read(tid, oid)
        assert value == b"v1"

    def test_locks_survive_rollback(self, manager):
        tid, oid = live_with_object(manager)
        savepoint = manager.savepoint(tid)
        manager.try_write(tid, oid, b"dirty")
        manager.rollback_to(tid, savepoint)
        other = manager.initiate()
        manager.begin(other)
        outcome, __ = manager.try_read(other, oid)
        assert not outcome  # the write lock is still held

    def test_transaction_continues_and_commits(self, manager):
        tid, oid = live_with_object(manager, value=encode_int(0))
        savepoint = manager.savepoint(tid)
        manager.try_write(tid, oid, encode_int(99))
        manager.rollback_to(tid, savepoint)
        manager.try_write(tid, oid, encode_int(7))
        manager.note_completed(tid)
        assert manager.try_commit(tid)
        reader = manager.initiate()
        manager.begin(reader)
        __, value = manager.try_read(reader, oid)
        assert decode_int(value) == 7

    def test_repeated_rollback_is_idempotent(self, manager):
        tid, oid = live_with_object(manager)
        savepoint = manager.savepoint(tid)
        manager.try_write(tid, oid, b"x")
        manager.rollback_to(tid, savepoint)
        assert manager.rollback_to(tid, savepoint) in (0, 1)
        __, value = manager.try_read(tid, oid)
        assert value == b"v0"

    def test_nested_savepoints(self, manager):
        tid, oid = live_with_object(manager)
        outer = manager.savepoint(tid)
        manager.try_write(tid, oid, b"a")
        inner = manager.savepoint(tid)
        manager.try_write(tid, oid, b"b")
        manager.rollback_to(tid, inner)
        assert manager.try_read(tid, oid)[1] == b"a"
        manager.rollback_to(tid, outer)
        assert manager.try_read(tid, oid)[1] == b"v0"

    def test_full_abort_after_rollback_is_correct(self, manager):
        tid, oid = live_with_object(manager)
        # Commit an anchor so the object survives the abort.
        manager.note_completed(tid)
        manager.try_commit(tid)

        writer = manager.initiate()
        manager.begin(writer)
        manager.try_write(writer, oid, b"w1")
        savepoint = manager.savepoint(writer)
        manager.try_write(writer, oid, b"w2")
        manager.rollback_to(writer, savepoint)
        manager.try_write(writer, oid, b"w3")
        manager.abort(writer)
        reader = manager.initiate()
        manager.begin(reader)
        assert manager.try_read(reader, oid)[1] == b"v0"

    def test_rollback_destroys_later_savepoints(self, manager):
        """SQL semantics: ROLLBACK TO destroys savepoints taken after the
        target; using one afterwards is an error (it would resurrect
        already-undone values)."""
        from repro.common.errors import InvalidStateError

        tid, oid = live_with_object(manager)
        outer = manager.savepoint(tid)
        manager.try_write(tid, oid, b"a")
        inner = manager.savepoint(tid)
        manager.try_write(tid, oid, b"b")
        manager.rollback_to(tid, outer)
        assert manager.try_read(tid, oid)[1] == b"v0"
        with pytest.raises(InvalidStateError, match="destroyed"):
            manager.rollback_to(tid, inner)
        assert manager.try_read(tid, oid)[1] == b"v0"  # state untouched

    def test_unknown_savepoint_rejected(self, manager):
        from repro.common.errors import InvalidStateError

        tid, __ = live_with_object(manager)
        with pytest.raises(InvalidStateError, match="does not exist"):
            manager.rollback_to(tid, 424242)

    def test_savepoint_on_terminated_raises(self, manager):
        tid, __ = live_with_object(manager)
        manager.abort(tid)
        with pytest.raises(TransactionAborted):
            manager.savepoint(tid)


class TestBodyLevel:
    def test_savepoint_requests_in_program(self, rt):
        [oid] = make_counters(rt, 1)

        def body(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))
            savepoint = yield tx.savepoint()
            yield tx.write(oid, encode_int(999))
            undone = yield tx.rollback_to(savepoint)
            assert undone == 1
            return decode_int((yield tx.read(oid)))

        result = rt.run(body)
        assert result.committed
        assert result.value == 1
        assert read_counter(rt, oid) == 1

    def test_try_alternative_path_idiom(self, rt):
        """The savepoint idiom: attempt a risky path, fall back cheaply
        without losing earlier work."""
        oids = make_counters(rt, 2)

        def body(tx):
            yield tx.write(oids[0], encode_int(10))  # keep this work
            savepoint = yield tx.savepoint()
            yield tx.write(oids[1], encode_int(777))  # risky path
            risky_ok = False
            if not risky_ok:
                yield tx.rollback_to(savepoint)
                yield tx.write(oids[1], encode_int(1))  # safe path

        result = rt.run(body)
        assert result.committed
        assert read_counter(rt, oids[0]) == 10
        assert read_counter(rt, oids[1]) == 1
