"""EX10: the section 4.2 commit and abort algorithms with dependencies."""

import pytest

from repro.common.errors import DependencyCycleError
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.outcomes import CommitStatus
from repro.core.status import TransactionStatus

D = DependencyType


@pytest.fixture
def manager():
    return TransactionManager()


def completed(manager):
    tid = manager.initiate()
    manager.begin(tid)
    manager.note_completed(tid)
    return tid


def running(manager):
    tid = manager.initiate()
    manager.begin(tid)
    return tid


class TestCommitDependency:
    def test_cd_blocks_until_dependee_terminates(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        # tj cannot commit before ti terminates.
        outcome = manager.try_commit(tj)
        assert outcome.status is CommitStatus.BLOCKED
        assert outcome.waiting_for == (ti,)
        manager.try_commit(ti)
        assert manager.try_commit(tj)

    def test_cd_satisfied_by_dependee_abort(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        manager.abort(ti)
        # "if t_i aborts, t_j may still commit"
        assert manager.try_commit(tj)

    def test_cd_does_not_constrain_dependee(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        assert manager.try_commit(ti)


class TestAbortDependency:
    def test_ad_blocks_commit_until_dependee_terminates(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.AD, ti, tj)
        assert manager.try_commit(tj).status is CommitStatus.BLOCKED
        manager.try_commit(ti)
        assert manager.try_commit(tj)

    def test_ad_cascades_abort(self, manager):
        ti, tj = completed(manager), running(manager)
        manager.form_dependency(D.AD, ti, tj)
        manager.abort(ti)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_ad_cascade_is_transitive(self, manager):
        t1, t2, t3 = (completed(manager) for __ in range(3))
        manager.form_dependency(D.AD, t1, t2)
        manager.form_dependency(D.AD, t2, t3)
        manager.abort(t1)
        assert manager.status_of(t2) is TransactionStatus.ABORTED
        assert manager.status_of(t3) is TransactionStatus.ABORTED
        assert manager.stats["cascaded_aborts"] == 2

    def test_ad_does_not_cascade_upstream(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.AD, ti, tj)
        manager.abort(tj)  # the DEPENDENT aborts
        assert manager.status_of(ti) is TransactionStatus.COMPLETED
        assert manager.try_commit(ti)

    def test_dependency_on_already_aborted(self, manager):
        ti = completed(manager)
        manager.abort(ti)
        tj = completed(manager)
        manager.form_dependency(D.AD, ti, tj)
        # Forming an AD on an aborted dependee aborts the dependent now.
        assert manager.status_of(tj) is TransactionStatus.ABORTED


class TestGroupCommit:
    def test_commit_one_commits_all(self, manager):
        t1, t2, t3 = (completed(manager) for __ in range(3))
        manager.form_dependency(D.GC, t1, t2)
        manager.form_dependency(D.GC, t1, t3)
        outcome = manager.try_commit(t1)
        assert outcome.status is CommitStatus.COMMITTED
        assert set(outcome.group) == {t1, t2, t3}
        for tid in (t1, t2, t3):
            assert manager.status_of(tid) is TransactionStatus.COMMITTED

    def test_later_commits_return_already(self, manager):
        t1, t2 = completed(manager), completed(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.try_commit(t1)
        assert manager.try_commit(t2).status is CommitStatus.ALREADY_COMMITTED

    def test_group_blocks_on_running_member(self, manager):
        t1 = completed(manager)
        t2 = running(manager)
        manager.form_dependency(D.GC, t1, t2)
        outcome = manager.try_commit(t1)
        assert outcome.status is CommitStatus.BLOCKED
        assert outcome.waiting_for == (t2,)
        manager.note_completed(t2)
        assert manager.try_commit(t1)

    def test_group_aborts_together(self, manager):
        t1, t2 = completed(manager), completed(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.abort(t2)
        assert manager.status_of(t1) is TransactionStatus.ABORTED

    def test_commit_on_group_with_aborted_member_fails(self, manager):
        t1, t2 = completed(manager), running(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.abort(t2)
        outcome = manager.try_commit(t1)
        assert outcome.status is CommitStatus.ABORTED

    def test_group_commit_is_one_log_record(self, manager):
        from repro.storage.log import CommitRecord

        t1, t2 = completed(manager), completed(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.try_commit(t1)
        commits = [
            r
            for r in manager.storage.log.records()
            if isinstance(r, CommitRecord)
        ]
        assert len(commits) == 1
        assert commits[0].committed_tids() == {t1, t2}

    def test_group_waits_for_external_dependency(self, manager):
        t1, t2 = completed(manager), completed(manager)
        outsider = completed(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.form_dependency(D.CD, outsider, t2)
        outcome = manager.try_commit(t1)
        assert outcome.status is CommitStatus.BLOCKED
        assert outcome.waiting_for == (outsider,)
        manager.try_commit(outsider)
        assert manager.try_commit(t1)

    def test_ingroup_cd_satisfied_by_simultaneity(self, manager):
        t1, t2 = completed(manager), completed(manager)
        manager.form_dependency(D.GC, t1, t2)
        manager.form_dependency(D.CD, t1, t2)
        assert manager.try_commit(t1)


class TestCyclePrevention:
    def test_cd_cycle_refused_via_manager(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        with pytest.raises(DependencyCycleError):
            manager.form_dependency(D.CD, tj, ti)


class TestBeginDependencies:
    def test_bcd_blocks_begin_until_commit(self, manager):
        ti = completed(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BCD, ti, tj)
        assert manager.begin_blockers(tj) == [ti]
        assert not manager.begin(tj)
        manager.try_commit(ti)
        assert manager.begin_blockers(tj) == []
        assert manager.begin(tj)

    def test_bad_blocks_begin_until_abort(self, manager):
        ti = completed(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BAD, ti, tj)
        assert manager.begin_blockers(tj) == [ti]
        manager.abort(ti)
        assert manager.begin_blockers(tj) == []
        assert manager.begin(tj)

    def test_bcd_dependent_aborted_when_dependee_aborts(self, manager):
        ti = completed(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BCD, ti, tj)
        manager.abort(ti)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_bad_dependent_aborted_when_dependee_commits(self, manager):
        ti = completed(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BAD, ti, tj)
        manager.try_commit(ti)
        assert manager.status_of(tj) is TransactionStatus.ABORTED


class TestAbortReleasesEverything:
    def test_abort_releases_locks(self, manager):
        writer = running(manager)
        oid = manager.create_object(writer, b"v")
        other = running(manager)
        assert not manager.try_read(other, oid)[0]
        manager.abort(writer)
        # The object is gone (created by the aborted transaction) — but
        # the lock no longer blocks; re-check against a fresh object.
        survivor = running(manager)
        oid2 = manager.create_object(survivor, b"v")
        manager.abort(survivor)
        outcome, __ = manager.try_read(other, oid2) if manager.storage.objects.exists(oid2) else (None, None)
        assert outcome is None  # object deleted by the abort

    def test_commit_releases_locks_and_permits(self, manager):
        writer = running(manager)
        oid = manager.create_object(writer, b"v")
        manager.permit(writer, oids=[oid])
        manager.note_completed(writer)
        manager.try_commit(writer)
        assert len(manager.permits) == 0
        other = running(manager)
        outcome, value = manager.try_read(other, oid)
        assert outcome and value == b"v"

    def test_commit_removes_dependencies(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.CD, ti, tj)
        manager.try_commit(ti)
        assert len(manager.dependencies) == 0
