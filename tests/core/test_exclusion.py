"""The ED (exclusion) dependency: at most one of the pair commits."""

import pytest

from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.status import TransactionStatus

D = DependencyType


@pytest.fixture
def manager():
    return TransactionManager()


def completed(manager):
    tid = manager.initiate()
    manager.begin(tid)
    manager.note_completed(tid)
    return tid


class TestExclusion:
    def test_commit_aborts_excluded_dependent(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.ED, ti, tj)
        assert manager.try_commit(ti)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_dependent_commit_does_not_abort_dependee(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.ED, ti, tj)
        assert manager.try_commit(tj)  # the dependent goes first: fine
        assert manager.try_commit(ti)  # one-way exclusion: ti unaffected

    def test_mutual_exclusion(self, manager):
        """ED both ways: whichever commits first wins, the other dies."""
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.ED, ti, tj)
        manager.form_dependency(D.ED, tj, ti)
        assert manager.try_commit(tj)
        assert manager.status_of(ti) is TransactionStatus.ABORTED

    def test_abort_of_dependee_frees_dependent(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.ED, ti, tj)
        manager.abort(ti)
        assert manager.try_commit(tj)

    def test_ed_does_not_block_commit(self, manager):
        ti, tj = completed(manager), completed(manager)
        manager.form_dependency(D.ED, ti, tj)
        outcome = manager.try_commit(tj)
        assert outcome  # no waiting involved

    def test_race_idiom(self, manager):
        """Three racers, pairwise mutual exclusion: exactly one commits."""
        racers = [completed(manager) for __ in range(3)]
        for i, first in enumerate(racers):
            for second in racers[i + 1 :]:
                manager.form_dependency(D.ED, first, second)
                manager.form_dependency(D.ED, second, first)
        manager.try_commit(racers[1])
        fates = [manager.status_of(r) for r in racers]
        assert fates.count(TransactionStatus.COMMITTED) == 1
        assert fates.count(TransactionStatus.ABORTED) == 2

    def test_ed_undoes_excluded_work(self, manager):
        setup = manager.initiate()
        manager.begin(setup)
        oid = manager.create_object(setup, b"base")
        manager.note_completed(setup)
        manager.try_commit(setup)

        winner = manager.initiate()
        manager.begin(winner)
        loser = manager.initiate()
        manager.begin(loser)
        manager.try_write(loser, oid, b"loser-wrote")
        manager.note_completed(loser)
        manager.note_completed(winner)
        manager.form_dependency(D.ED, winner, loser)
        manager.try_commit(winner)

        reader = manager.initiate()
        manager.begin(reader)
        __, value = manager.try_read(reader, oid)
        assert value == b"base"
