"""form_dependency with an already-terminated party.

No edge may be stored against a terminated transaction (its cleanup has
already run, so the edge would dangle forever — a bug class found by the
manager fuzzer).  Instead the dependency is resolved on the spot:
satisfied → no-op (None), now-unsatisfiable for the dependent → immediate
abort, violated/unenforceable → InvalidStateError.
"""

import pytest

from repro.common.errors import InvalidStateError
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.status import TransactionStatus

D = DependencyType


@pytest.fixture
def manager():
    return TransactionManager()


def committed(manager):
    tid = manager.initiate()
    manager.begin(tid)
    manager.note_completed(tid)
    manager.try_commit(tid)
    return tid


def aborted(manager):
    tid = manager.initiate()
    manager.abort(tid)
    return tid


def live(manager):
    tid = manager.initiate()
    manager.begin(tid)
    manager.note_completed(tid)
    return tid


class TestDependeeTerminated:
    def test_cd_on_committed_dependee_is_satisfied(self, manager):
        ti, tj = committed(manager), live(manager)
        assert manager.form_dependency(D.CD, ti, tj) is None
        assert len(manager.dependencies) == 0
        assert manager.try_commit(tj)

    def test_ad_on_committed_dependee_is_satisfied(self, manager):
        ti, tj = committed(manager), live(manager)
        assert manager.form_dependency(D.AD, ti, tj) is None
        assert manager.try_commit(tj)

    def test_ad_on_aborted_dependee_aborts_now(self, manager):
        ti, tj = aborted(manager), live(manager)
        manager.form_dependency(D.AD, ti, tj)
        assert manager.status_of(tj) is TransactionStatus.ABORTED
        assert len(manager.dependencies) == 0

    def test_cd_on_aborted_dependee_is_satisfied(self, manager):
        ti, tj = aborted(manager), live(manager)
        assert manager.form_dependency(D.CD, ti, tj) is None
        assert manager.try_commit(tj)

    def test_gc_with_committed_dependee_refused(self, manager):
        ti, tj = committed(manager), live(manager)
        with pytest.raises(InvalidStateError, match="commit group"):
            manager.form_dependency(D.GC, ti, tj)

    def test_gc_with_aborted_dependee_aborts_dependent(self, manager):
        ti, tj = aborted(manager), live(manager)
        manager.form_dependency(D.GC, ti, tj)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_ed_on_committed_dependee_aborts_dependent(self, manager):
        ti, tj = committed(manager), live(manager)
        manager.form_dependency(D.ED, ti, tj)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_ed_on_aborted_dependee_is_satisfied(self, manager):
        ti, tj = aborted(manager), live(manager)
        assert manager.form_dependency(D.ED, ti, tj) is None
        assert manager.try_commit(tj)

    def test_bad_on_committed_dependee_aborts_dependent(self, manager):
        ti = committed(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BAD, ti, tj)
        assert manager.status_of(tj) is TransactionStatus.ABORTED

    def test_bcd_on_aborted_dependee_aborts_dependent(self, manager):
        ti = aborted(manager)
        tj = manager.initiate()
        manager.form_dependency(D.BCD, ti, tj)
        assert manager.status_of(tj) is TransactionStatus.ABORTED


class TestDependentTerminated:
    def test_aborted_dependent_is_moot(self, manager):
        ti, tj = live(manager), aborted(manager)
        for dep_type in D:
            assert manager.form_dependency(dep_type, ti, tj) is None
        assert len(manager.dependencies) == 0

    def test_committed_dependent_refused(self, manager):
        ti, tj = live(manager), committed(manager)
        with pytest.raises(InvalidStateError, match="already committed"):
            manager.form_dependency(D.CD, ti, tj)

    def test_gc_between_two_committed_is_vacuous(self, manager):
        ti, tj = committed(manager), committed(manager)
        assert manager.form_dependency(D.GC, ti, tj) is None


class TestPermitsWithTerminatedParties:
    def test_permit_from_terminated_giver_refused(self, manager):
        ti = aborted(manager)
        tj = live(manager)
        with pytest.raises(InvalidStateError, match="terminated"):
            manager.permit(ti, tj=tj)

    def test_permit_to_terminated_receiver_refused(self, manager):
        ti = live(manager)
        tj = committed(manager)
        with pytest.raises(InvalidStateError, match="moot"):
            manager.permit(ti, tj=tj)

    def test_no_dangling_permits_after_refusal(self, manager):
        ti = aborted(manager)
        tj = live(manager)
        try:
            manager.permit(ti, tj=tj)
        except InvalidStateError:
            pass
        assert len(manager.permits) == 0
