"""The transaction status machine (section 2.1 vocabulary)."""

import pytest

from repro.common.errors import InvalidStateError
from repro.core.status import TransactionStatus, check_transition

S = TransactionStatus


class TestPredicates:
    def test_terminated(self):
        assert S.COMMITTED.is_terminated
        assert S.ABORTED.is_terminated
        for status in (S.INITIATED, S.RUNNING, S.COMPLETED, S.COMMITTING,
                       S.ABORTING):
            assert not status.is_terminated

    def test_active_matches_paper_definition(self):
        """Active = has begun executing and has not terminated."""
        assert S.RUNNING.is_active
        assert S.COMPLETED.is_active
        assert S.COMMITTING.is_active
        assert S.ABORTING.is_active
        assert not S.INITIATED.is_active
        assert not S.COMMITTED.is_active
        assert not S.ABORTED.is_active

    def test_abort_bound(self):
        assert S.ABORTING.is_abort_bound
        assert S.ABORTED.is_abort_bound
        assert not S.RUNNING.is_abort_bound


class TestTransitions:
    def test_happy_path(self):
        sequence = [S.INITIATED, S.RUNNING, S.COMPLETED, S.COMMITTING,
                    S.COMMITTED]
        for current, target in zip(sequence, sequence[1:]):
            assert check_transition(current, target) is target

    def test_abort_path_from_each_live_state(self):
        for current in (S.INITIATED, S.RUNNING, S.COMPLETED, S.COMMITTING):
            assert check_transition(current, S.ABORTING) is S.ABORTING
        assert check_transition(S.ABORTING, S.ABORTED) is S.ABORTED

    def test_commit_backoff_allowed(self):
        """A blocked commit retreats COMMITTING -> COMPLETED to retry."""
        assert check_transition(S.COMMITTING, S.COMPLETED) is S.COMPLETED

    def test_terminal_states_are_final(self):
        for terminal in (S.COMMITTED, S.ABORTED):
            for target in S:
                with pytest.raises(InvalidStateError):
                    check_transition(terminal, target)

    def test_cannot_skip_running(self):
        with pytest.raises(InvalidStateError):
            check_transition(S.INITIATED, S.COMPLETED)
        with pytest.raises(InvalidStateError):
            check_transition(S.INITIATED, S.COMMITTED)

    def test_cannot_commit_while_running(self):
        with pytest.raises(InvalidStateError):
            check_transition(S.RUNNING, S.COMMITTING)
