"""Typed semantic objects: counters, records, sets (section 5)."""

import pytest

from repro.common.codec import encode_int, encode_json
from repro.core.manager import TransactionManager
from repro.core.typedobjects import (
    Counter,
    TxRecord,
    TxSet,
    register_record_fields,
    semantic_conflict_table,
)
from repro.runtime.coop import CooperativeRuntime


@pytest.fixture
def rt():
    table = semantic_conflict_table()
    register_record_fields(table, ["salary", "department"])
    return CooperativeRuntime(TransactionManager(conflicts=table), seed=4)


class TestCounter:
    def test_increment_decrement_get(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(10), name="counter"))

        counter = Counter(rt.run(setup).value)

        def body(tx):
            yield counter.increment(tx, 5)
            yield counter.decrement(tx, 2)
            return (yield counter.get(tx))

        result = rt.run(body)
        assert result.committed and result.value == 13

    def test_concurrent_increments_commute(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(0), name="counter"))

        counter = Counter(rt.run(setup).value)

        def inc(tx):
            yield counter.increment(tx)

        tids = [rt.spawn(inc) for __ in range(6)]
        rt.run_until_quiescent()
        outcomes = rt.commit_all(tids)
        assert sum(outcomes.values()) == 6
        assert rt.manager.lock_manager.stats["blocks"] == 0

        def read(tx):
            return (yield counter.get(tx))

        assert rt.run(read).value == 6

    def test_set_conflicts_with_increment(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(0), name="counter"))

        counter = Counter(rt.run(setup).value)

        def incrementer(tx):
            yield counter.increment(tx)

        def setter(tx):
            yield counter.set(tx, 100)

        first = rt.spawn(incrementer)
        rt.round()
        second = rt.spawn(setter)
        rt.round()
        assert rt.manager.wait_outcome(second) is None  # blocked
        rt.run_until_quiescent()
        rt.commit_all([first, second])

    def test_aborted_increment_undone(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(7), name="counter"))

        counter = Counter(rt.run(setup).value)

        def doomed(tx):
            yield counter.increment(tx, 100)
            yield tx.abort()

        tid = rt.spawn(doomed)
        rt.wait(tid)

        def read(tx):
            return (yield counter.get(tx))

        assert rt.run(read).value == 7


class TestTxRecord:
    def _employee(self, rt):
        def setup(tx):
            value = encode_json({"salary": 100, "department": "db"})
            return (yield tx.create(value, name="employee"))

        return TxRecord(rt.run(setup).value)

    def test_field_update_and_get(self, rt):
        record = self._employee(rt)

        def body(tx):
            yield record.update(tx, "salary", 120)
            return (yield record.get(tx, "salary"))

        assert rt.run(body).value == 120

    def test_disjoint_field_updates_commute(self, rt):
        """The paper: salary update and department change commute."""
        record = self._employee(rt)

        def raise_salary(tx):
            yield record.apply(tx, "salary", lambda v: v + 10)

        def move_department(tx):
            yield record.update(tx, "department", "os")

        first = rt.spawn(raise_salary)
        second = rt.spawn(move_department)
        rt.run_until_quiescent()
        outcomes = rt.commit_all([first, second])
        assert sum(outcomes.values()) == 2
        assert rt.manager.lock_manager.stats["blocks"] == 0

        def read(tx):
            return (yield record.get(tx))

        final = rt.run(read).value
        assert final == {"salary": 110, "department": "os"}

    def test_same_field_updates_conflict(self, rt):
        record = self._employee(rt)

        def raise_salary(tx):
            yield record.apply(tx, "salary", lambda v: v + 10)

        first = rt.spawn(raise_salary)
        rt.round()
        second = rt.spawn(raise_salary)
        rt.round()
        assert rt.manager.wait_outcome(second) is None
        rt.run_until_quiescent()
        rt.commit_all([first, second])

        def read(tx):
            return (yield record.get(tx, "salary"))

        assert rt.run(read).value == 120  # both landed, serialized


class TestTxSet:
    def _department(self, rt):
        def setup(tx):
            return (yield tx.create(encode_json([]), name="dept"))

        return TxSet(rt.run(setup).value)

    def test_insert_contains_members(self, rt):
        dept = self._department(rt)

        def body(tx):
            added = yield dept.insert(tx, "alice")
            again = yield dept.insert(tx, "alice")
            present = yield dept.contains(tx, "alice")
            return added, again, present

        assert rt.run(body).value == (True, False, True)

    def test_concurrent_inserts_commute(self, rt):
        dept = self._department(rt)
        names = ["alice", "bob", "carol", "dave"]

        def inserter(name):
            def body(tx):
                yield dept.insert(tx, name)

            return body

        tids = [rt.spawn(inserter(name)) for name in names]
        rt.run_until_quiescent()
        outcomes = rt.commit_all(tids)
        assert sum(outcomes.values()) == 4
        assert rt.manager.lock_manager.stats["blocks"] == 0

        def read(tx):
            return (yield dept.members(tx))

        assert rt.run(read).value == sorted(names)

    def test_remove_is_exclusive(self, rt):
        dept = self._department(rt)

        def fill(tx):
            yield dept.insert(tx, "alice")

        tid = rt.spawn(fill)
        rt.commit(tid)

        def remove(tx):
            return (yield dept.remove(tx, "alice"))

        first = rt.spawn(remove)
        rt.round()
        second = rt.spawn(remove)
        rt.round()
        assert rt.manager.wait_outcome(second) is None  # write lock held
        rt.run_until_quiescent()
        rt.commit_all([first, second])
