"""The lock manager: the section 4.2 read-lock/write-lock algorithm."""

import pytest

from repro.common.ids import ObjectId, Tid
from repro.core.descriptors import TransactionDescriptor
from repro.core.locks import LockManager, ObjectRegistry
from repro.core.permits import PermitTable
from repro.core.semantics import READ, WRITE, ConflictTable


@pytest.fixture
def registry():
    return ObjectRegistry()


@pytest.fixture
def permits(registry):
    return PermitTable(registry)


@pytest.fixture
def locks(registry, permits):
    return LockManager(registry, permits)


def td(value):
    return TransactionDescriptor(tid=Tid(value))


OB = ObjectId(1)
OB2 = ObjectId(2)


class TestBasicLocking:
    def test_read_read_share(self, locks):
        a, b = td(1), td(2)
        assert locks.acquire(a, OB, READ)
        assert locks.acquire(b, OB, READ)

    def test_write_blocks_write(self, locks):
        a, b = td(1), td(2)
        assert locks.acquire(a, OB, WRITE)
        outcome = locks.acquire(b, OB, WRITE)
        assert not outcome
        assert outcome.blockers == (Tid(1),)

    def test_write_blocks_read(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        assert not locks.acquire(b, OB, READ)

    def test_read_blocks_write(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, READ)
        assert not locks.acquire(b, OB, WRITE)

    def test_reacquire_is_idempotent(self, locks):
        a = td(1)
        locks.acquire(a, OB, WRITE)
        assert locks.acquire(a, OB, WRITE)
        assert len(a.locks) == 1

    def test_upgrade_read_to_write(self, locks):
        a = td(1)
        locks.acquire(a, OB, READ)
        assert locks.acquire(a, OB, WRITE)
        assert locks.holds(a, OB, WRITE)

    def test_upgrade_blocked_by_other_reader(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, READ)
        locks.acquire(b, OB, READ)
        assert not locks.acquire(a, OB, WRITE)

    def test_holds_semantics(self, locks):
        a = td(1)
        locks.acquire(a, OB, WRITE)
        assert locks.holds(a, OB, READ)  # write covers read
        assert not locks.holds(a, OB2, READ)

    def test_independent_objects(self, locks):
        a, b = td(1), td(2)
        assert locks.acquire(a, OB, WRITE)
        assert locks.acquire(b, OB2, WRITE)


class TestPendingAndRelease:
    def test_blocked_request_registers_pending(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        locks.acquire(b, OB, WRITE)
        pending = locks.pending_requests(Tid(2))
        assert len(pending) == 1
        assert locks.blockers_of(pending[0]) == [Tid(1)]

    def test_release_unblocks(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        locks.acquire(b, OB, WRITE)
        locks.release_all(a)
        assert locks.acquire(b, OB, WRITE)
        assert locks.pending_requests(Tid(2)) == []

    def test_release_clears_pending_too(self, locks, registry):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        locks.acquire(b, OB, WRITE)
        locks.release_all(b)  # b gives up while pending
        assert locks.pending_requests(Tid(2)) == []

    def test_od_freed_when_idle(self, locks, registry):
        a = td(1)
        locks.acquire(a, OB, WRITE)
        assert registry.maybe_get(OB) is not None
        locks.release_all(a)
        assert registry.maybe_get(OB) is None


class TestPermitsAndSuspension:
    def test_permit_suspends_holder_lock(self, locks, permits):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        assert locks.acquire(b, OB, WRITE)
        assert a.lock_on(OB).suspended
        assert not b.lock_on(OB).suspended

    def test_permit_for_wrong_op_does_not_help(self, locks, permits):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=READ)
        assert not locks.acquire(b, OB, WRITE)
        assert locks.acquire(b, OB, READ)

    def test_ping_pong(self, locks, permits):
        """Cooperating transactions alternate via mutual permits."""
        a, b = td(1), td(2)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        permits.grant(OB, Tid(2), receiver=Tid(1), operation=WRITE)
        assert locks.acquire(a, OB, WRITE)
        assert locks.acquire(b, OB, WRITE)  # a suspended
        assert locks.acquire(a, OB, WRITE)  # b suspended, a resumed
        assert locks.acquire(b, OB, WRITE)
        assert a.lock_on(OB).suspended
        assert not b.lock_on(OB).suspended

    def test_suspended_third_party_does_not_block(self, locks, permits):
        a, b, c = td(1), td(2), td(3)
        locks.acquire(a, OB, WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        locks.acquire(b, OB, WRITE)
        # c has no permission from b (the active holder) -> blocked by b
        # only (a's suspended lock no longer excludes).
        outcome = locks.acquire(c, OB, WRITE)
        assert not outcome
        assert outcome.blockers == (Tid(2),)

    def test_invariant_no_two_active_conflicting(self, locks, permits):
        a, b = td(1), td(2)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        locks.acquire(a, OB, WRITE)
        locks.acquire(b, OB, WRITE)
        assert locks.check_invariants() == []

    def test_stats_track_suspensions(self, locks, permits):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        locks.acquire(b, OB, WRITE)
        assert locks.stats["suspensions"] == 1


class TestDelegation:
    def test_delegate_moves_lock(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        moved = locks.delegate(a, b)
        assert moved == [OB]
        assert a.lock_on(OB) is None
        assert b.lock_on(OB) is not None
        assert b.lock_on(OB).td is b

    def test_delegate_scoped_to_oids(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        locks.acquire(a, OB2, WRITE)
        moved = locks.delegate(a, b, oids={OB})
        assert moved == [OB]
        assert a.lock_on(OB2) is not None
        assert b.lock_on(OB) is not None

    def test_delegate_merges_with_existing(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, READ)
        locks.acquire(b, OB, READ)
        locks.delegate(a, b)
        assert a.lock_on(OB) is None
        merged = b.lock_on(OB)
        assert merged.operations == {READ}
        od = locks.registry.maybe_get(OB)
        assert len(od.granted) == 1

    def test_delegated_lock_conflicts_with_delegator(self, locks):
        """After delegation, the delegator's new request can conflict
        with its own past operations (section 2.2)."""
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        locks.delegate(a, b)
        outcome = locks.acquire(a, OB, WRITE)
        assert not outcome
        assert outcome.blockers == (Tid(2),)


class TestSemanticLocking:
    def test_commuting_increments_share(self, registry, permits):
        locks = LockManager(
            registry, permits, conflicts=ConflictTable.with_counter_ops()
        )
        a, b = td(1), td(2)
        assert locks.acquire(a, OB, "increment")
        assert locks.acquire(b, OB, "increment")

    def test_increment_blocks_reader(self, registry, permits):
        locks = LockManager(
            registry, permits, conflicts=ConflictTable.with_counter_ops()
        )
        a, b = td(1), td(2)
        locks.acquire(a, OB, "increment")
        assert not locks.acquire(b, OB, READ)


class TestPendingIndexHygiene:
    def test_pending_by_tid_drops_emptied_entries(self, locks):
        """Regression: granting a previously blocked request must delete
        the transaction's (now empty) per-tid pending list, or the index
        grows with every transaction that ever blocked."""
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        assert not locks.acquire(b, OB, WRITE)
        assert Tid(2) in locks._pending_by_tid
        locks.release_all(a)
        assert locks.acquire(b, OB, WRITE)
        assert Tid(2) not in locks._pending_by_tid
        assert locks.pending_requests() == []

    def test_pending_index_stays_bounded_over_many_transactions(self, locks):
        """A stream of block-then-grant transactions leaves no residue."""
        for value in range(2, 50):
            holder, waiter = td(1), td(value)
            locks.acquire(holder, OB, WRITE)
            assert not locks.acquire(waiter, OB, WRITE)
            locks.release_all(holder)
            assert locks.acquire(waiter, OB, WRITE)
            locks.release_all(waiter)
        assert locks._pending_by_tid == {}

    def test_release_all_clears_pending_entry(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        assert not locks.acquire(b, OB, WRITE)
        locks.release_all(b)  # the *waiter* terminates
        assert Tid(2) not in locks._pending_by_tid


class TestContentionFastPath:
    def test_uncontended_acquire_takes_fast_path(self, locks):
        a = td(1)
        assert locks.acquire(a, OB, WRITE)
        assert locks.stats["fast_grants"] == 1
        # Re-acquiring over one's own lock is also foreign-free.
        assert locks.acquire(a, OB, READ)
        assert locks.stats["fast_grants"] == 2

    def test_foreign_lock_disables_fast_path(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, READ)
        before = locks.stats["fast_grants"]
        assert locks.acquire(b, OB, READ)  # shared, but must be evaluated
        assert locks.stats["fast_grants"] == before

    def test_fast_path_over_suspended_foreign_lock(self, locks, permits):
        """Suspended foreign locks stop excluding others, so a third
        requester sees zero foreign-active locks and grants fast."""
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        permits.grant(OB, Tid(1), receiver=Tid(2), operation=WRITE)
        assert locks.acquire(b, OB, WRITE)  # suspends a's lock
        assert a.lock_on(OB).suspended
        locks.release_all(b)
        before = locks.stats["fast_grants"]
        c = td(3)
        assert locks.acquire(c, OB, WRITE)
        assert locks.stats["fast_grants"] == before + 1
        # Invariant still holds: a is suspended, c is the active writer.
        assert locks.check_invariants() == []

    def test_fast_path_preserves_blockers_of_semantics(self, locks):
        a, b = td(1), td(2)
        locks.acquire(a, OB, WRITE)
        assert not locks.acquire(b, OB, WRITE)
        pending = locks.pending_requests(Tid(2))[0]
        assert locks.blockers_of(pending) == [Tid(1)]
        locks.release_all(a)
        assert locks.blockers_of(pending) == []
