"""The differential-conformance harness (ISSUE 7).

Three layers of reusable machinery:

* **Runtime factories** — every runtime the battery knows, constructed
  uniformly, with a closer for the threaded ones.  Conformance suites
  parametrize over these names (``tests/integration`` wires them into
  the model battery; ``test_conformance_pairs`` runs runtime *pairs*).
* **Workload shapes** — deterministic driver programs exercising the
  ASSET primitive surface: transfers, read→write upgrades, delegation
  chains (cross-shard by construction once the key space exceeds the
  shard count), permit-mediated cooperative writes, wrong-order lock
  deadlocks (victim aborts), GC groups, savepoint/rollback, and nested
  children.  A shape takes a runtime and drives it only through the
  paper-style driver API, so any runtime can execute it.
* **Record/replay** — run a shape on the cooperative oracle under a
  recording :class:`~repro.chaos.explorer.ScheduleController`, then
  replay the recorded interleaving on a deterministic peer and compare
  the two ACTA histories byte for byte.
"""

from __future__ import annotations

from repro.chaos.explorer import ScheduleController
from repro.acta.history import HistoryRecorder
from repro.common.codec import decode_int, encode_int
from repro.core.dependency import DependencyType
from repro.runtime import (
    CooperativeRuntime,
    ParallelShardedRuntime,
    ShardedRuntime,
    ThreadedRuntime,
)

RUNTIME_NAMES = ["coop", "threaded", "sharded", "parallel-sharded"]
DETERMINISTIC = ("coop", "sharded")


def make_runtime(name, seed=None, schedule=None, n_shards=4):
    """Build a runtime by name; returns ``(runtime, closer)``."""
    if name == "coop":
        return CooperativeRuntime(seed=seed, schedule=schedule), _noop
    if name == "sharded":
        return (
            ShardedRuntime(n_shards=n_shards, seed=seed, schedule=schedule),
            _noop,
        )
    if name == "threaded":
        runtime = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=0.002)
        return runtime, runtime.close
    if name == "parallel-sharded":
        runtime = ParallelShardedRuntime(
            n_shards=n_shards, watchdog_interval=0.01, poll_timeout=0.05
        )
        return runtime, runtime.close
    raise ValueError(f"unknown runtime {name!r}")


def _noop():
    return None


# ---------------------------------------------------------------------------
# shared helpers (moved from tests/integration/test_runtime_conformance.py)
# ---------------------------------------------------------------------------


def run_value(result):
    """The program value of a ``runtime.run`` result (RunResult or tuple)."""
    return result.value if hasattr(result, "value") else result[1]


def run_committed(result):
    return result.committed if hasattr(result, "committed") else result[0]


def make_counters(runtime, count):
    def setup(tx):
        oids = []
        for index in range(count):
            oids.append(
                (yield tx.create(encode_int(0), name=f"c{index}"))
            )
        return oids

    return run_value(runtime.run(setup))


def read_counter(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    return run_value(runtime.run(body))


def incrementer(oid, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))
        if fail:
            yield tx.abort()
        return value + 1

    return body


# ---------------------------------------------------------------------------
# workload shapes
# ---------------------------------------------------------------------------


def _transfer(src, dst):
    def body(tx):
        taken = decode_int((yield tx.read(src)))
        yield tx.write(src, encode_int(taken - 1))
        landed = decode_int((yield tx.read(dst)))
        yield tx.write(dst, encode_int(landed + 1))
        return taken

    return body


def shape_transfers(rt):
    """Overlapping transfer pairs across many keys (cross-shard for any
    shard count > 1)."""
    oids = make_counters(rt, 6)
    tids = [
        rt.spawn(_transfer(oids[i], oids[(i + 2) % 6])) for i in range(6)
    ]
    rt.commit_all(tids)


def shape_upgrade_contention(rt):
    """Everyone reads one hot object, then upgrades to write: upgrade
    deadlocks, victim aborts, survivors commit."""
    [hot] = make_counters(rt, 1)
    tids = [rt.spawn(incrementer(hot)) for __ in range(4)]
    rt.commit_all(tids)


def shape_delegation_chain(rt):
    """t1 updates objects scattered over the key space, delegates all to
    t2, which updates more and delegates to t3, which commits the lot —
    a delegation chain that crosses shard boundaries by construction."""
    oids = make_counters(rt, 5)

    def worker(tx, mine):
        for oid in mine:
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 10))

    t1 = rt.spawn(worker, args=(oids[:2],))
    t2 = rt.spawn(worker, args=(oids[2:4],))
    t3 = rt.spawn(worker, args=(oids[4:],))
    # Drain execution, then chain the delegations at the driver level.
    for tid in (t1, t2, t3):
        rt.wait(tid)
    rt.manager.delegate(t1, t2)
    rt.manager.delegate(t2, t3)
    rt.commit(t3)
    # t1/t2 delegated everything away; their commits are now trivial.
    rt.commit_all([t1, t2])


def shape_permit_cooperation(rt):
    """t1 write-locks, permits t2, t2 writes through the suspension;
    both commit (the section 2.2 cooperative-write pattern)."""
    oids = make_counters(rt, 3)

    def first(tx):
        for oid in oids:
            yield tx.write(oid, encode_int(5))
        yield tx.permit()  # any transaction, any operation

    def second(tx):
        for oid in oids:
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

    t1 = rt.spawn(first)
    rt.wait(t1)
    t2 = rt.spawn(second)
    rt.commit_all([t2, t1])


def shape_deadlock_pair(rt):
    """Wrong-order write locks: a genuine deadlock, detector victim."""
    oids = make_counters(rt, 2)

    def locker(tx, first, second):
        yield tx.write(first, encode_int(1))
        yield tx.write(second, encode_int(2))

    t1 = rt.spawn(locker, args=(oids[0], oids[1]))
    t2 = rt.spawn(locker, args=(oids[1], oids[0]))
    rt.commit_all([t1, t2])


def shape_gc_group(rt):
    """A three-member GC group formed at the driver level; group commit
    lands them atomically (one commit record naming all)."""
    oids = make_counters(rt, 3)
    tids = [rt.spawn(incrementer(oids[i])) for i in range(3)]
    rt.manager.form_dependency(DependencyType.GC, tids[0], tids[1])
    rt.manager.form_dependency(DependencyType.GC, tids[1], tids[2])
    rt.commit(tids[0])


def shape_savepoint_rollback(rt):
    """Partial rollback inside a program (tokens are global LSNs — they
    appear in PARTIAL_ROLLBACK events, so LSN allocation must agree)."""
    oids = make_counters(rt, 2)

    def body(tx):
        yield tx.write(oids[0], encode_int(1))
        mark = yield tx.savepoint()
        yield tx.write(oids[0], encode_int(2))
        yield tx.write(oids[1], encode_int(3))
        yield tx.rollback_to(mark)
        yield tx.write(oids[1], encode_int(4))
        return mark

    t1 = rt.spawn(body)
    rt.commit(t1)


def shape_nested_children(rt):
    """Parents initiate children mid-program; waits and cascades."""
    oids = make_counters(rt, 2)

    def child(tx, oid):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))

    def parent(tx):
        kid = yield tx.initiate(child, args=(oids[0],))
        yield tx.begin(kid)
        ok = yield tx.wait(kid)
        yield tx.write(oids[1], encode_int(7 if ok else 0))
        yield tx.commit(kid)

    t1 = rt.spawn(parent)
    rt.commit(t1)


def shape_aborted_delegation(rt):
    """Delegate, then abort the delegatee: undo must follow the moved
    responsibility (re-attribution on both engines' logs)."""
    oids = make_counters(rt, 4)

    def writer(tx, mine):
        for oid in mine:
            yield tx.write(oid, encode_int(99))

    t1 = rt.spawn(writer, args=(oids[:2],))
    t2 = rt.spawn(writer, args=(oids[2:],))
    for tid in (t1, t2):
        rt.wait(tid)
    rt.manager.delegate(t1, t2)
    rt.abort(t2)
    rt.commit(t1)


SHAPES = {
    "transfers": shape_transfers,
    "upgrade-contention": shape_upgrade_contention,
    "delegation-chain": shape_delegation_chain,
    "permit-cooperation": shape_permit_cooperation,
    "deadlock-pair": shape_deadlock_pair,
    "gc-group": shape_gc_group,
    "savepoint-rollback": shape_savepoint_rollback,
    "nested-children": shape_nested_children,
    "aborted-delegation": shape_aborted_delegation,
}


# ---------------------------------------------------------------------------
# record / replay
# ---------------------------------------------------------------------------


def canonical_history(events):
    """The byte string two histories are compared by."""
    return "\n".join(repr(event) for event in events).encode()


def run_shape(runtime, shape):
    """Drive ``shape`` on ``runtime``; return its canonical history."""
    recorder = HistoryRecorder(runtime.manager)
    shape(runtime)
    return canonical_history(recorder.events)


def record_on_oracle(shape, seed):
    """Run ``shape`` on the cooperative oracle under a recording
    schedule; return ``(history_bytes, recorded_choices)``."""
    controller = ScheduleController(seed=seed)
    runtime = CooperativeRuntime(schedule=controller)
    history = run_shape(runtime, shape)
    return history, controller.recorded


def replay_on(name, shape, choices, n_shards=4):
    """Replay a recorded schedule on a deterministic runtime by name."""
    controller = ScheduleController(choices=choices)
    runtime, closer = make_runtime(
        name, schedule=controller, n_shards=n_shards
    )
    try:
        return run_shape(runtime, shape)
    finally:
        closer()
