"""Differential replay: the sharded engine against the cooperative oracle.

Every test case records a workload shape on :class:`CooperativeRuntime`
under a seeded :class:`ScheduleController`, replays the *recorded*
interleaving on :class:`ShardedRuntime`, and asserts the two ACTA
histories are byte-identical.  The battery sweeps 9 shapes × 24 seeds
(216 schedules) with the shard count rotating through {1, 2, 4, 8}, so
every shape sees every shard count several times — including schedules
with cross-shard delegation chains, permit-mediated suspensions, and
deadlock-victim aborts (ISSUE 7 acceptance: ≥ 200 recorded schedules).
"""

from __future__ import annotations

import pytest

from tests.differential.harness import (
    SHAPES,
    record_on_oracle,
    replay_on,
)

SEEDS = list(range(24))
SHARD_ROTATION = (1, 2, 4, 8)

CASES = [
    pytest.param(
        shape_name,
        seed,
        SHARD_ROTATION[seed % len(SHARD_ROTATION)],
        id=f"{shape_name}-s{seed}-k{SHARD_ROTATION[seed % len(SHARD_ROTATION)]}",
    )
    for shape_name in sorted(SHAPES)
    for seed in SEEDS
]


def _diff(oracle, replica):
    """First divergence between two canonical histories (assert detail)."""
    a = oracle.decode().splitlines()
    b = replica.decode().splitlines()
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return f"line {index}: oracle={left!r} sharded={right!r}"
    return f"length: oracle={len(a)} sharded={len(b)}"


@pytest.mark.parametrize("shape_name, seed, n_shards", CASES)
def test_replay_matches_oracle(shape_name, seed, n_shards):
    shape = SHAPES[shape_name]
    oracle_history, recorded = record_on_oracle(shape, seed)
    replica_history = replay_on("sharded", shape, recorded, n_shards=n_shards)
    assert replica_history == oracle_history, _diff(
        oracle_history, replica_history
    )


def test_battery_is_large_enough():
    """The acceptance floor: at least 200 recorded schedules replayed."""
    assert len(CASES) >= 200


def test_recorded_schedules_are_nonempty():
    """The controller actually records choices (replay is not vacuous)."""
    history, recorded = record_on_oracle(SHAPES["transfers"], seed=3)
    assert recorded, "oracle run recorded no scheduling choices"
    assert history, "oracle run produced an empty history"
