"""Differential conformance: runtimes checked against each other.

``harness`` holds the reusable machinery (runtime factories, workload
shapes, record/replay helpers); the test modules assert byte-identical
ACTA histories between the deterministic runtimes and outcome-level
equivalence where real threads make interleavings unrepeatable.
"""
