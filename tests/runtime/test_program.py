"""The request vocabulary and the shared request interpreter."""

import pytest

from repro.common.ids import NULL_TID, Tid
from repro.core.manager import TransactionManager
from repro.runtime import program as prog
from repro.runtime.program import BLOCKED, DONE, TxnContext, execute_request


class _NullRuntime:
    """A runtime stub for interpreter tests."""

    def __init__(self):
        self.begun = []
        self.results = {}

    def on_begun(self, tid):
        self.begun.append(tid)

    def result_of(self, tid):
        return self.results.get(tid)


@pytest.fixture
def manager():
    return TransactionManager()


@pytest.fixture
def runtime():
    return _NullRuntime()


class TestTxnContext:
    def test_identity(self):
        ctx = TxnContext(Tid(5), parent=Tid(2))
        assert ctx.self_tid() == Tid(5)
        assert ctx.parent_tid() == Tid(2)

    def test_top_level_parent_is_null(self):
        assert TxnContext(Tid(5)).parent_tid() == NULL_TID

    def test_commit_defaults_to_self(self):
        ctx = TxnContext(Tid(5))
        assert ctx.commit().tid == Tid(5)
        assert ctx.commit(Tid(9)).tid == Tid(9)

    def test_abort_defaults_to_self(self):
        ctx = TxnContext(Tid(5))
        assert ctx.abort().tid == Tid(5)

    def test_delegate_defaults_source_to_self(self):
        ctx = TxnContext(Tid(5))
        request = ctx.delegate(Tid(9))
        assert request.source == Tid(5)
        assert request.target == Tid(9)
        assert request.oids is None

    def test_permit_defaults_giver_to_self(self):
        ctx = TxnContext(Tid(5))
        request = ctx.permit()
        assert request.giver == Tid(5)
        assert request.receiver is None

    def test_requests_are_frozen(self):
        request = TxnContext(Tid(1)).read("oid")
        with pytest.raises(Exception):
            request.oid = "other"


class TestInterpreter:
    def test_initiate_records_parent(self, manager, runtime):
        parent = manager.initiate()
        state, child = execute_request(
            manager, runtime, parent, prog.Initiate(function=None)
        )
        assert state is DONE
        assert manager.parent_of(child) == parent

    def test_begin_notifies_runtime(self, manager, runtime):
        tid = manager.initiate()
        state, result = execute_request(
            manager, runtime, NULL_TID, prog.Begin(tids=(tid,))
        )
        assert state is DONE and result == 1
        assert runtime.begun == [tid]

    def test_begin_blocked_by_dependency(self, manager, runtime):
        from repro.core.dependency import DependencyType

        gate = manager.initiate()
        manager.begin(gate)
        tid = manager.initiate()
        manager.form_dependency(DependencyType.BCD, gate, tid)
        state, who = execute_request(
            manager, runtime, NULL_TID, prog.Begin(tids=(tid,))
        )
        assert state is BLOCKED
        assert who == (gate,)
        assert runtime.begun == []

    def test_commit_blocks_until_completed(self, manager, runtime):
        tid = manager.initiate()
        manager.begin(tid)
        state, who = execute_request(
            manager, runtime, NULL_TID, prog.Commit(tid=tid)
        )
        assert state is BLOCKED and who == (tid,)
        manager.note_completed(tid)
        state, result = execute_request(
            manager, runtime, NULL_TID, prog.Commit(tid=tid)
        )
        assert state is DONE and result == 1

    def test_commit_of_aborted_returns_zero(self, manager, runtime):
        tid = manager.initiate()
        manager.abort(tid)
        state, result = execute_request(
            manager, runtime, NULL_TID, prog.Commit(tid=tid)
        )
        assert state is DONE and result == 0

    def test_wait_blocks_then_reports(self, manager, runtime):
        tid = manager.initiate()
        manager.begin(tid)
        state, __ = execute_request(
            manager, runtime, NULL_TID, prog.Wait(tid=tid)
        )
        assert state is BLOCKED
        manager.abort(tid)
        state, result = execute_request(
            manager, runtime, NULL_TID, prog.Wait(tid=tid)
        )
        assert state is DONE and result == 0

    def test_read_write_block_on_conflict(self, manager, runtime):
        a = manager.initiate()
        manager.begin(a)
        oid = manager.create_object(a, b"v")
        b = manager.initiate()
        manager.begin(b)
        state, who = execute_request(
            manager, runtime, b, prog.Read(oid=oid)
        )
        assert state is BLOCKED and who == (a,)

    def test_get_status_and_result(self, manager, runtime):
        tid = manager.initiate()
        runtime.results[tid] = "payload"
        state, status = execute_request(
            manager, runtime, NULL_TID, prog.GetStatus(tid=tid)
        )
        assert state is DONE
        state, value = execute_request(
            manager, runtime, NULL_TID, prog.GetResult(tid=tid)
        )
        assert value == "payload"

    def test_unknown_request_raises(self, manager, runtime):
        from repro.common.errors import AssetError

        class Strange(prog.Request):
            pass

        with pytest.raises(AssetError):
            execute_request(manager, runtime, NULL_TID, Strange())
