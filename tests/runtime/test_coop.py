"""The deterministic cooperative runtime."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.common.codec import decode_int, encode_int
from repro.common.errors import TransactionAborted
from repro.runtime.coop import CooperativeRuntime, SchedulerStalledError


class TestBasicExecution:
    def test_run_returns_value(self, rt):
        def body(tx):
            oid = yield tx.create(encode_int(7))
            return decode_int((yield tx.read(oid)))

        result = rt.run(body)
        assert result.committed and result.value == 7

    def test_spawn_then_commit(self, rt):
        [oid] = make_counters(rt, 1)
        tid = rt.spawn(incrementer(oid))
        rt.run_until_quiescent()
        assert rt.commit(tid) == 1
        assert read_counter(rt, oid) == 1

    def test_self_abort_stops_program(self, rt):
        [oid] = make_counters(rt, 1)
        trace = []

        def body(tx):
            trace.append("before")
            yield tx.write(oid, encode_int(99))
            yield tx.abort()
            trace.append("after")  # must never run

        tid = rt.spawn(body)
        rt.run_until_quiescent()
        assert rt.commit(tid) == 0
        assert trace == ["before"]
        assert read_counter(rt, oid) == 0

    def test_program_exception_aborts(self, rt):
        [oid] = make_counters(rt, 1)

        def body(tx):
            yield tx.write(oid, encode_int(5))
            raise ValueError("boom")

        tid = rt.spawn(body)
        rt.run_until_quiescent()
        assert rt.commit(tid) == 0
        assert isinstance(rt.error_of(tid), ValueError)
        assert read_counter(rt, oid) == 0

    def test_wait_primitive(self, rt):
        [oid] = make_counters(rt, 1)
        tid = rt.spawn(incrementer(oid))
        assert rt.wait(tid) == 1
        rt.commit(tid)  # release its locks before the next writer
        aborted = rt.spawn(incrementer(oid, fail=True))
        assert rt.wait(aborted) == 0


class TestDeterminism:
    def _contended_run(self, seed):
        rt = CooperativeRuntime(seed=seed)
        oids = make_counters(rt, 2)
        tids = [rt.spawn(incrementer(oids[i % 2])) for i in range(6)]
        rt.run_until_quiescent()
        outcomes = tuple(rt.commit(tid) for tid in tids)
        finals = tuple(read_counter(rt, oid) for oid in oids)
        return outcomes, finals, rt.steps

    def test_same_seed_same_everything(self):
        assert self._contended_run(7) == self._contended_run(7)

    def test_round_robin_default_is_deterministic_too(self):
        def go():
            rt = CooperativeRuntime()
            [oid] = make_counters(rt, 1)
            tids = [rt.spawn(incrementer(oid)) for __ in range(4)]
            rt.run_until_quiescent()
            return [rt.commit(t) for t in tids], rt.steps

        assert go() == go()


class TestBlockingAndRetry:
    def test_conflicting_writers_stay_consistent(self, rt):
        """Concurrent read-then-write incrementers hit upgrade deadlocks;
        victims abort, survivors serialize.  The invariant is that the
        final value equals the number of commits — no lost updates."""
        [oid] = make_counters(rt, 1)
        tids = [rt.spawn(incrementer(oid)) for __ in range(5)]
        rt.run_until_quiescent()
        commits = sum(rt.commit(tid) for tid in tids)
        assert commits >= 1
        assert read_counter(rt, oid) == commits

    def test_sequential_writers_all_land(self, rt):
        """Committing each incrementer before spawning the next avoids
        upgrade deadlocks entirely: every increment lands."""
        [oid] = make_counters(rt, 1)
        for __ in range(5):
            tid = rt.spawn(incrementer(oid))
            assert rt.commit(tid) == 1
        assert read_counter(rt, oid) == 5

    def test_deadlock_resolved_automatically(self, rt):
        oids = make_counters(rt, 2)

        def crosser(first, second):
            def body(tx):
                v = decode_int((yield tx.read(first)))
                yield tx.write(first, encode_int(v + 1))
                w = decode_int((yield tx.read(second)))
                yield tx.write(second, encode_int(w + 1))

            return body

        a = rt.spawn(crosser(oids[0], oids[1]))
        b = rt.spawn(crosser(oids[1], oids[0]))
        rt.run_until_quiescent()
        outcomes = [rt.commit(a), rt.commit(b)]
        assert sorted(outcomes) == [0, 1]  # victim aborted, winner through
        assert rt.manager.stats["aborted"] == 1

    def test_stall_raises_loudly(self, rt):
        """Waiting on a transaction nobody will ever complete."""
        ghost = rt.initiate(None)  # no program, never begun

        with pytest.raises(SchedulerStalledError):
            rt.commit(ghost)

    def test_stall_diagnostics_name_the_stuck_tasks(self, rt):
        """A stall is only debuggable if the error says *who* is stuck,
        in what status, parked on which request, blocking on whom."""
        [oid] = make_counters(rt, 1)

        holder = rt.spawn(incrementer(oid))
        rt.run_until_quiescent()  # holder finishes its program, keeps lock

        waiter = rt.spawn(incrementer(oid))  # blocks behind holder's lock
        # Committing the waiter can never succeed: its program cannot run
        # until the holder (whom nobody will commit) releases the lock,
        # and there is no deadlock cycle for the detector to break.
        with pytest.raises(SchedulerStalledError) as caught:
            rt.commit(waiter)

        error = caught.value
        stalled = {entry.tid: entry for entry in error.stalled}
        assert waiter in stalled
        row = stalled[waiter]
        assert row.status  # a live table status, not a placeholder
        assert row.pending is not None  # the parked read/write request
        assert holder in row.blocked_on
        # The rendered message carries the same story: both tids and the
        # blocks-on relation are readable without a debugger.
        text = str(error)
        assert repr(waiter) in text
        assert repr(holder) in text
        assert "blocks on" in text

    def test_external_abort_delivered_into_program(self, rt):
        [oid] = make_counters(rt, 1)
        observed = []

        def body(tx):
            try:
                yield tx.write(oid, encode_int(1))
                while True:
                    yield tx.read(oid)
            except TransactionAborted:
                observed.append("aborted")
                raise

        tid = rt.spawn(body)
        rt.round()
        rt.abort(tid)
        rt.run_until_quiescent()
        assert observed == ["aborted"]


class TestDriverApi:
    def test_run_skeleton_matches_paper(self, rt):
        """initiate -> begin -> commit, with null-tid handling."""

        def body(tx):
            return (yield tx.status_of(tx.tid))

        tid = rt.initiate(body)
        assert tid
        assert rt.begin(tid) == 1
        assert rt.commit(tid) == 1

    def test_initiate_limit_yields_null(self):
        from repro.core.manager import TransactionManager

        rt = CooperativeRuntime(TransactionManager(max_transactions=0))
        assert not rt.initiate(lambda tx: (yield tx.status_of(tx.tid)))

    def test_result_of_unknown_is_none(self, rt):
        assert rt.result_of(object()) is None

    def test_begin_without_program_completes_immediately(self, rt):
        tid = rt.initiate(None)
        rt.begin(tid)
        assert rt.manager.wait_outcome(tid) is True
        assert rt.commit(tid) == 1
