"""Extensions on the threaded runtime: semantic ops and savepoints.

The cooperative runtime gets the thorough coverage; these confirm the
same request vocabulary behaves identically under real threads.
"""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.core.manager import TransactionManager
from repro.core.semantics import ConflictTable
from repro.core.typedobjects import Counter
from repro.runtime.threaded import ThreadedRuntime


@pytest.fixture
def rt():
    runtime = ThreadedRuntime(
        TransactionManager(conflicts=ConflictTable.with_counter_ops()),
        watchdog_interval=0.01,
        poll_timeout=0.002,
    )
    yield runtime
    runtime.close()


class TestThreadedSemanticOps:
    def test_concurrent_counter_increments(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(0), name="hits"))

        ok, oid = rt.run(setup)
        assert ok
        counter = Counter(oid)

        def bump(tx):
            return (yield counter.increment(tx))

        tids = [rt.initiate(bump) for __ in range(6)]
        for tid in tids:
            rt.begin(tid)
        outcomes = rt.commit_all(tids)
        assert sum(outcomes.values()) == 6

        def read(tx):
            return (yield counter.get(tx))

        ok, value = rt.run(read)
        assert ok and value == 6


class TestThreadedSavepoints:
    def test_savepoint_round_trip(self, rt):
        def setup(tx):
            return (yield tx.create(encode_int(1), name="x"))

        ok, oid = rt.run(setup)
        assert ok

        def body(tx):
            savepoint = yield tx.savepoint()
            yield tx.write(oid, encode_int(999))
            yield tx.rollback_to(savepoint)
            yield tx.write(oid, encode_int(2))
            return decode_int((yield tx.read(oid)))

        ok, value = rt.run(body)
        assert ok and value == 2

        def read(tx):
            return decode_int((yield tx.read(oid)))

        ok, value = rt.run(read)
        assert ok and value == 2
