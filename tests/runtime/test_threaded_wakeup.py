"""Regression: blocked threaded waiters wake on events, not poll timeouts.

The old ``_wait_a_moment`` had a lost-wakeup race: a waiter evaluated
its predicate (``try_commit``, ``wait_outcome``, ``execute_request`` —
all of which take the manager mutex and can take real time), found it
unsatisfied, and only then entered ``Condition.wait``.  An event
notifying in that gap was lost, so the waiter slept the *full* poll
timeout with nothing left to wake it.  With a generous timeout the
runtime still produced correct answers, just absurdly slowly.

The fix captures a wake-generation token *before* the predicate test;
``_wait_a_moment(seen=token)`` returns immediately if any event fired
since.  These tests run with a poll timeout far longer than the test
budget, so any reliance on polling busts the wall clock and fails.
"""

import threading
import time

import pytest

from repro.common.codec import decode_int, encode_int
from repro.runtime.threaded import ThreadedRuntime

# Long enough that even ONE full poll sleep busts the wall-clock budget.
HUGE_POLL = 30.0
BUDGET = 10.0


@pytest.fixture
def rt():
    runtime = ThreadedRuntime(watchdog_interval=0.01, poll_timeout=HUGE_POLL)
    yield runtime
    runtime._closing.set()


def _make_counter(rt):
    def setup(tx):
        return (yield tx.create(encode_int(0), name="hot"))

    __, oid = rt.run(setup)
    return oid


class TestEventDrivenWakeup:
    def test_event_during_predicate_evaluation_is_not_lost(self, rt):
        """The lost-wakeup race, reproduced deterministically.

        The driver's ``commit`` evaluates ``try_commit`` (pending), and
        the transaction's completion event fires *while that evaluation
        is still in flight* — after the outcome was computed, before the
        driver reaches the condition variable.  The old code then slept
        the full poll timeout (nothing else will ever notify); the fix's
        wake token sees the missed generation and returns immediately.
        """
        oid = _make_counter(rt)
        gate = threading.Event()

        def program(tx):
            yield tx.write(oid, encode_int(1))
            gate.wait(timeout=20.0)  # park until the driver is mid-predicate

        tid = rt.initiate(program)
        rt.begin(tid)

        real_try_commit = rt.manager.try_commit
        raced = []

        def try_commit_racing(target, **kwargs):
            outcome = real_try_commit(target, **kwargs)
            if not outcome.is_final and not raced:
                raced.append(True)
                # Release the worker and WAIT for it to complete: its
                # completion event now lands inside this predicate
                # evaluation — exactly the old code's lost-wakeup gap.
                gate.set()
                deadline = time.monotonic() + 20.0
                while rt.manager.wait_outcome(target) is None:
                    assert time.monotonic() < deadline
                    time.sleep(0.001)
            return outcome

        rt.manager.try_commit = try_commit_racing
        try:
            start = time.monotonic()
            assert rt.commit(tid) == 1
            elapsed = time.monotonic() - start
        finally:
            rt.manager.try_commit = real_try_commit

        assert raced, "the race window was never exercised"
        assert elapsed < BUDGET, (
            f"commit took {elapsed:.1f}s: the completion event that fired "
            f"during the predicate evaluation was lost and the driver "
            f"slept out the poll timeout"
        )

    def test_lock_handoff_needs_no_polling(self, rt):
        """Two contending bumps hand the lock over on release events;
        with a 30s poll timeout the whole exchange must still be quick."""
        oid = _make_counter(rt)

        def bump(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))
            return value + 1

        start = time.monotonic()
        first = rt.initiate(bump)
        second = rt.initiate(bump)
        rt.begin(first, second)
        outcomes = rt.commit_all([first, second])
        elapsed = time.monotonic() - start

        assert all(outcomes.values())
        assert elapsed < BUDGET, (
            f"handoff took {elapsed:.1f}s: a waiter slept out the poll "
            f"timeout instead of waking on the release event"
        )

        def read(tx):
            return decode_int((yield tx.read(oid)))

        assert rt.run(read)[1] == 2

    def test_driver_wait_wakes_on_abort(self, rt):
        """A driver ``wait`` on a lock-blocked transaction returns
        promptly when the transaction is aborted from another thread —
        the system is fully quiescent before the abort, so only the
        abort event itself can provide the wake-up."""
        oid = _make_counter(rt)

        def holder(tx):
            yield tx.write(oid, encode_int(9))
            # Completes but is never committed: the write lock stays.

        def blocked(tx):
            yield tx.write(oid, encode_int(5))

        hold_tid = rt.initiate(holder)
        rt.begin(hold_tid)
        while rt.manager.wait_outcome(hold_tid) is None:
            time.sleep(0.001)

        blocked_tid = rt.initiate(blocked)
        rt.begin(blocked_tid)
        time.sleep(0.05)  # let the worker reach its lock-blocked retry

        start = time.monotonic()
        aborter = threading.Timer(0.05, rt.abort, args=(blocked_tid,))
        aborter.start()
        try:
            assert rt.wait(blocked_tid) == 0
        finally:
            aborter.cancel()
        assert time.monotonic() - start < BUDGET
