"""The threaded runtime: same programs, real threads."""

import pytest

from repro.common.codec import decode_int, encode_int


def make_counters(runtime, count, initial=0):
    def setup(tx):
        oids = []
        for index in range(count):
            oid = yield tx.create(encode_int(initial), name=f"c{index}")
            oids.append(oid)
        return oids

    ok, value = runtime.run(setup)
    assert ok
    return value


def read_counter(runtime, oid):
    def body(tx):
        return decode_int((yield tx.read(oid)))

    ok, value = runtime.run(body)
    assert ok
    return value


def incrementer(oid, fail=False):
    def body(tx):
        value = decode_int((yield tx.read(oid)))
        yield tx.write(oid, encode_int(value + 1))
        if fail:
            yield tx.abort()
        return value + 1

    return body


class TestThreadedExecution:
    def test_run_round_trip(self, threaded_rt):
        [oid] = make_counters(threaded_rt, 1)
        ok, value = threaded_rt.run(incrementer(oid))
        assert ok and value == 1
        assert read_counter(threaded_rt, oid) == 1

    def test_contended_increments_stay_consistent(self, threaded_rt):
        """Racing read-then-write incrementers may hit upgrade deadlocks
        (the watchdog aborts victims); whatever commits must be exactly
        what the counter shows."""
        [oid] = make_counters(threaded_rt, 1)
        tids = [
            threaded_rt.initiate(incrementer(oid)) for __ in range(8)
        ]
        for tid in tids:
            threaded_rt.begin(tid)
        outcomes = threaded_rt.commit_all(tids)
        commits = sum(outcomes.values())
        assert commits >= 1
        assert read_counter(threaded_rt, oid) == commits

    def test_abort_undoes(self, threaded_rt):
        [oid] = make_counters(threaded_rt, 1)
        ok, __ = threaded_rt.run(incrementer(oid, fail=True))
        assert not ok
        assert read_counter(threaded_rt, oid) == 0

    def test_wait_primitive(self, threaded_rt):
        [oid] = make_counters(threaded_rt, 1)
        tid = threaded_rt.initiate(incrementer(oid))
        threaded_rt.begin(tid)
        assert threaded_rt.wait(tid) == 1
        assert threaded_rt.commit(tid) == 1

    def test_deadlock_watchdog_resolves(self, threaded_rt):
        oids = make_counters(threaded_rt, 2)

        def crosser(first, second):
            def body(tx):
                v = decode_int((yield tx.read(first)))
                yield tx.write(first, encode_int(v + 1))
                w = decode_int((yield tx.read(second)))
                yield tx.write(second, encode_int(w + 1))

            return body

        a = threaded_rt.initiate(crosser(oids[0], oids[1]))
        b = threaded_rt.initiate(crosser(oids[1], oids[0]))
        threaded_rt.begin(a)
        threaded_rt.begin(b)
        outcomes = threaded_rt.commit_all([a, b])
        commits = sum(outcomes.values())
        # Either the threads raced into a deadlock (watchdog aborted one)
        # or scheduling serialized them; both end consistent.
        assert commits in (1, 2)
        total = read_counter(threaded_rt, oids[0]) + read_counter(
            threaded_rt, oids[1]
        )
        assert total == 2 * commits

    def test_program_exception_aborts(self, threaded_rt):
        [oid] = make_counters(threaded_rt, 1)

        def body(tx):
            yield tx.write(oid, encode_int(9))
            raise RuntimeError("boom")

        tid = threaded_rt.initiate(body)
        threaded_rt.begin(tid)
        assert threaded_rt.commit(tid) == 0
        assert isinstance(threaded_rt.error_of(tid), RuntimeError)
        assert read_counter(threaded_rt, oid) == 0

    def test_group_commit_across_threads(self, threaded_rt):
        from repro.core.dependency import DependencyType

        oids = make_counters(threaded_rt, 2)
        first = threaded_rt.initiate(incrementer(oids[0]))
        second = threaded_rt.initiate(incrementer(oids[1]))
        threaded_rt.manager.form_dependency(
            DependencyType.GC, first, second
        )
        threaded_rt.begin(first)
        threaded_rt.begin(second)
        assert threaded_rt.commit(first) == 1
        assert threaded_rt.commit(second) == 1
        assert read_counter(threaded_rt, oids[0]) == 1
        assert read_counter(threaded_rt, oids[1]) == 1
