"""Unit tests for the sharded engine: routing, latches, parallel outcomes.

The differential suite proves whole-history equivalence; these tests pin
the individual mechanisms — key routing, striped control structures,
latch hygiene, cross-shard statistics, and real-thread outcomes on the
parallel runtime.
"""

import pytest

from repro.common.codec import decode_int, encode_int
from repro.common.latch import LatchMode
from repro.core.sharded import ShardedTransactionManager
from repro.core.sharding import ShardRouter, default_shard_count, stable_hash
from repro.runtime.sharded import ParallelShardedRuntime, ShardedRuntime


def _value(result):
    return result.value if hasattr(result, "value") else result[1]


class TestRouting:
    def test_named_objects_place_by_name_hash(self):
        router = ShardRouter(4)
        from repro.common.ids import ObjectId

        oid = ObjectId(9, "account-7")
        assert router.place(oid, name="account-7") == stable_hash(
            "account-7"
        ) % 4
        # The directory remembers the placement afterwards.
        assert router.shard_of(oid) == stable_hash("account-7") % 4

    def test_unnamed_objects_stripe_by_value(self):
        router = ShardRouter(4)
        from repro.common.ids import ObjectId

        for value in range(1, 9):
            oid = ObjectId(value)
            assert router.place(oid) == value % 4

    def test_default_shard_count_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "6")
        assert default_shard_count() == 6
        monkeypatch.delenv("REPRO_SHARDS")
        assert default_shard_count() == 4

    def test_descriptors_land_in_owning_shard_bucket(self):
        manager = ShardedTransactionManager(n_shards=4)
        rt = ShardedRuntime(manager=manager, seed=5)

        def setup(tx):
            oids = []
            for index in range(8):
                oids.append(
                    (yield tx.create(encode_int(index), name=f"k{index}"))
                )
            return oids

        oids = _value(rt.run(setup))
        census = manager.shard_census()
        assert sum(row["router_entries"] for row in census) >= len(oids)
        for oid in oids:
            shard = manager.router.shard_of(oid)
            od = manager.registry.maybe_get(oid)
            if od is not None:
                assert od is manager.shards[shard].descriptors.get(oid)


class TestLatchHygiene:
    def test_no_latches_held_after_operations(self):
        manager = ShardedTransactionManager(n_shards=4)
        rt = ShardedRuntime(manager=manager, seed=3)

        def program(tx):
            a = yield tx.create(encode_int(1), name="a")
            b = yield tx.create(encode_int(2), name="b")
            yield tx.write(a, encode_int(10))
            yield tx.read(b)

        result = rt.run(program)
        assert result.committed
        # Thread-local held set is empty and every shard latch is free.
        assert manager._held_shards() == set()
        for shard in manager.shards:
            assert shard.latch.try_acquire(LatchMode.EXCLUSIVE)
            shard.latch.release(LatchMode.EXCLUSIVE)

    def test_abort_and_commit_release_everything(self):
        manager = ShardedTransactionManager(n_shards=2)
        rt = ShardedRuntime(manager=manager, seed=3)

        def writer(tx):
            oid = yield tx.create(encode_int(0), name="w")
            yield tx.write(oid, encode_int(1))
            yield tx.abort()

        rt.run(writer)
        assert manager._held_shards() == set()
        for shard in manager.shards:
            assert shard.latch.try_acquire(LatchMode.EXCLUSIVE)
            shard.latch.release(LatchMode.EXCLUSIVE)


class TestCrossShardStats:
    def test_multi_shard_commit_and_delegation_counted(self):
        manager = ShardedTransactionManager(n_shards=4)
        rt = ShardedRuntime(manager=manager, seed=9)

        def spread(tx):
            for index in range(4):
                yield tx.create(encode_int(index), name=f"s{index}")

        assert rt.run(spread).committed
        assert manager.stats["cross_shard_commits"] >= 1

        def maker(tx):
            return (yield tx.create(encode_int(0), name="m0"))

        def taker(tx):
            yield from ()

        t1 = rt.spawn(maker)
        t2 = rt.spawn(taker)
        rt.wait(t1)
        rt.wait(t2)
        manager.delegate(t1, t2)
        assert manager.stats["cross_shard_delegations"] >= 0  # counted key
        rt.commit(t2)
        rt.commit(t1)

    def test_single_shard_commit_not_counted_as_cross_shard(self):
        manager = ShardedTransactionManager(n_shards=4)
        rt = ShardedRuntime(manager=manager, seed=9)

        def local(tx):
            yield tx.create(encode_int(1), name="k0")  # one shard only

        before = manager.stats["cross_shard_commits"]
        assert rt.run(local).committed
        assert manager.stats["cross_shard_commits"] == before


class TestParallelOutcomes:
    def test_disjoint_transfers_all_commit(self):
        rt = ParallelShardedRuntime(n_shards=4)
        try:

            def setup(tx):
                oids = []
                for index in range(8):
                    oids.append(
                        (yield tx.create(encode_int(100), name=f"acct{index}"))
                    )
                return oids

            oids = _value(rt.run(setup))

            def transfer(tx, src, dst):
                taken = decode_int((yield tx.read(src)))
                yield tx.write(src, encode_int(taken - 10))
                landed = decode_int((yield tx.read(dst)))
                yield tx.write(dst, encode_int(landed + 10))

            tids = [
                rt.spawn(transfer, args=(oids[i], oids[i + 4]), key=f"job{i}")
                for i in range(4)
            ]
            outcomes = rt.commit_all(tids)
            assert all(outcomes.values())

            def audit(tx):
                total = 0
                for oid in oids:
                    total += decode_int((yield tx.read(oid)))
                return total

            assert _value(rt.run(audit)) == 800  # money conserved
        finally:
            rt.close()

    def test_contended_counter_conserves_increments(self):
        rt = ParallelShardedRuntime(n_shards=2)
        try:

            def setup(tx):
                return (yield tx.create(encode_int(0), name="hot"))

            oid = _value(rt.run(setup))

            def bump(tx):
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 1))

            committed = 0
            for __ in range(6):
                result = rt.run(bump)
                committed += 1 if result.committed else 0

            def read(tx):
                return decode_int((yield tx.read(oid)))

            assert _value(rt.run(read)) == committed == 6
        finally:
            rt.close()

    def test_key_pins_transaction_to_shard(self):
        rt = ParallelShardedRuntime(n_shards=4)
        try:
            expected = rt.manager.router.shard_for_key("tenant-42")

            def noop(tx):
                yield from ()

            tid = rt.spawn(noop, key="tenant-42")
            assert rt._owner[tid] == expected
            rt.commit(tid)
        finally:
            rt.close()

    def test_deadlock_victims_are_resolved_not_hung(self):
        """Opposite-order writers on two objects: the watchdog picks a
        victim; the driver's commit_all completes without hanging."""
        rt = ParallelShardedRuntime(n_shards=2, watchdog_interval=0.01)
        try:

            def setup(tx):
                a = yield tx.create(encode_int(0), name="da")
                b = yield tx.create(encode_int(0), name="db")
                return (a, b)

            a, b = _value(rt.run(setup))

            def locker(tx, first, second):
                yield tx.write(first, encode_int(1))
                yield tx.write(second, encode_int(2))

            t1 = rt.spawn(locker, args=(a, b))
            t2 = rt.spawn(locker, args=(b, a))
            outcomes = rt.commit_all([t1, t2])
            assert set(outcomes) == {t1, t2}
            assert sum(outcomes.values()) >= 1  # at least one survivor
        finally:
            rt.close()
