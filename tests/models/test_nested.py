"""EX4 (3.1.4): nested transactions — the trip example and beyond."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.common.codec import decode_int, encode_int
from repro.models.atomic import run_atomic
from repro.models.nested import attempt_subtransaction, require_subtransaction


class TestTripTranslation:
    """The paper's two-level trip: airline + hotel reservations."""

    def _trip(self, rt, airline_ok, hotel_ok):
        oids = make_counters(rt, 2, initial=5)
        airline, hotel = oids

        def reserve(oid, ok):
            def body(tx):
                seats = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(seats - 1))
                if not ok:
                    yield tx.abort()

            return body

        def trip(tx):
            yield from require_subtransaction(tx, reserve(airline, airline_ok))
            yield from require_subtransaction(tx, reserve(hotel, hotel_ok))

        result = run_atomic(rt, trip)
        return result, [read_counter(rt, oid) for oid in oids]

    def test_both_succeed(self, rt):
        result, counts = self._trip(rt, True, True)
        assert result.committed
        assert counts == [4, 4]

    def test_hotel_failure_undoes_airline(self, rt):
        """'The effects of the airline reservation transaction must be
        undone in that case.'"""
        result, counts = self._trip(rt, True, False)
        assert not result.committed
        assert counts == [5, 5]

    def test_airline_failure_cancels_trip(self, rt):
        result, counts = self._trip(rt, False, True)
        assert not result.committed
        assert counts == [5, 5]


class TestVisibilityRules:
    def test_child_accesses_parent_objects(self, rt):
        """permit(self(), t1) lets the child conflict with the parent."""
        [oid] = make_counters(rt, 1)

        def child(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        def parent(tx):
            yield tx.write(oid, encode_int(10))  # parent holds a write lock
            yield from require_subtransaction(tx, child)
            return decode_int((yield tx.read(oid)))

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == 11

    def test_child_effects_visible_to_parent_before_root_commit(self, rt):
        [oid] = make_counters(rt, 1)
        seen = {}

        def child(tx):
            yield tx.write(oid, encode_int(42))

        def parent(tx):
            yield from require_subtransaction(tx, child)
            seen["value"] = decode_int((yield tx.read(oid)))

        run_atomic(rt, parent)
        assert seen["value"] == 42

    def test_child_effects_not_durable_until_root_commits(self, rt):
        """Effects 'are made permanent only upon the commit of the topmost
        root transaction'."""
        [oid] = make_counters(rt, 1)

        def child(tx):
            yield tx.write(oid, encode_int(42))

        def parent(tx):
            yield from require_subtransaction(tx, child)
            yield tx.abort()  # root aborts AFTER the child "committed"

        result = run_atomic(rt, parent)
        assert not result.committed
        assert read_counter(rt, oid) == 0

    def test_outsider_blocked_during_nest(self, rt):
        """Subtransaction effects stay isolated from non-ancestors."""
        [oid] = make_counters(rt, 1)
        outsider_saw = []

        def child(tx):
            yield tx.write(oid, encode_int(99))

        def parent(tx):
            yield tx.write(oid, encode_int(1))  # lock before the child runs
            yield from require_subtransaction(tx, child)
            yield tx.read(oid)

        def outsider(tx):
            outsider_saw.append(decode_int((yield tx.read(oid))))

        parent_tid = rt.spawn(parent)
        rt.round()  # the parent's write lock is now held
        outsider_tid = rt.spawn(outsider)
        rt.run_until_quiescent()
        rt.commit_all([parent_tid, outsider_tid])
        # The outsider read only after the root committed: it saw 99,
        # never an intermediate uncommitted state.
        assert outsider_saw == [99]


class TestAttemptSemantics:
    def test_failed_attempt_spares_parent(self, rt):
        oids = make_counters(rt, 2)

        def parent(tx):
            first = yield from attempt_subtransaction(
                tx, incrementer(oids[0], fail=True)
            )
            second = yield from attempt_subtransaction(
                tx, incrementer(oids[1])
            )
            return (first, second.value)

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == (None, 1)
        assert read_counter(rt, oids[0]) == 0
        assert read_counter(rt, oids[1]) == 1


class TestDeepNesting:
    def test_three_levels(self, rt):
        [oid] = make_counters(rt, 1)

        def leaf(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        def middle(tx):
            yield from require_subtransaction(tx, leaf)
            yield from require_subtransaction(tx, leaf)

        def root(tx):
            yield from require_subtransaction(tx, middle)
            yield from require_subtransaction(tx, leaf)

        result = run_atomic(rt, root)
        assert result.committed
        assert read_counter(rt, oid) == 3

    def test_deep_failure_unwinds_everything(self, rt):
        [oid] = make_counters(rt, 1)

        def leaf_ok(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))

        def leaf_bad(tx):
            yield tx.write(oid, encode_int(1000))
            yield tx.abort()

        def middle(tx):
            yield from require_subtransaction(tx, leaf_ok)
            yield from require_subtransaction(tx, leaf_bad)

        def root(tx):
            yield from require_subtransaction(tx, leaf_ok)
            yield from require_subtransaction(tx, middle)

        result = run_atomic(rt, root)
        assert not result.committed
        assert read_counter(rt, oid) == 0
