"""EX3 (3.1.3): contingent transactions — ordered, at most one commits."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.models.contingent import run_contingent


class TestOrdering:
    def test_first_success_wins(self, rt):
        oids = make_counters(rt, 3)
        result = run_contingent(rt, [incrementer(oid) for oid in oids])
        assert result.committed
        assert result.chosen_index == 0
        # Only the first alternative ran at all.
        assert [read_counter(rt, oid) for oid in oids] == [1, 0, 0]

    def test_fallback_on_failure(self, rt):
        oids = make_counters(rt, 3)
        bodies = [
            incrementer(oids[0], fail=True),
            incrementer(oids[1], fail=True),
            incrementer(oids[2]),
        ]
        result = run_contingent(rt, bodies)
        assert result.committed
        assert result.chosen_index == 2
        assert [read_counter(rt, oid) for oid in oids] == [0, 0, 1]

    def test_at_most_one_commits(self, rt):
        oids = make_counters(rt, 3)
        committed_before = rt.manager.stats["committed"]
        run_contingent(rt, [incrementer(oid) for oid in oids])
        assert rt.manager.stats["committed"] == committed_before + 1

    def test_all_fail(self, rt):
        oids = make_counters(rt, 2)
        result = run_contingent(
            rt, [incrementer(oid, fail=True) for oid in oids]
        )
        assert not result.committed
        assert result.chosen_index == -1
        assert len(result.attempts) == 2
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_value_from_winner(self, rt):
        oids = make_counters(rt, 2)
        result = run_contingent(
            rt,
            [incrementer(oids[0], fail=True), incrementer(oids[1], delta=9)],
        )
        assert result.value == 9

    def test_failed_attempts_left_no_effects(self, rt):
        """Aborted alternatives are fully undone before the next tries."""
        [oid] = make_counters(rt, 1)
        bodies = [incrementer(oid, delta=100, fail=True), incrementer(oid)]
        result = run_contingent(rt, bodies)
        assert result.committed
        assert read_counter(rt, oid) == 1

    def test_empty_alternatives(self, rt):
        result = run_contingent(rt, [])
        assert not result.committed
