"""EX1 (3.1.1): atomic transactions — serializable and failure atomic."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.acta.history import HistoryRecorder
from repro.acta.serializability import is_conflict_serializable
from repro.common.codec import decode_int, encode_int
from repro.models.atomic import run_atomic


class TestCommitPath:
    def test_commit_applies_effects(self, rt):
        [oid] = make_counters(rt, 1)
        result = run_atomic(rt, incrementer(oid))
        assert result.committed
        assert result.value == 1
        assert read_counter(rt, oid) == 1

    def test_result_carries_tid(self, rt):
        [oid] = make_counters(rt, 1)
        result = run_atomic(rt, incrementer(oid))
        assert rt.manager.has_committed(result.tid)

    def test_sequence_of_transactions(self, rt):
        [oid] = make_counters(rt, 1)
        for expected in range(1, 6):
            result = run_atomic(rt, incrementer(oid))
            assert result.committed and result.value == expected


class TestAbortPath:
    def test_self_abort_undoes_everything(self, rt):
        oids = make_counters(rt, 3)

        def body(tx):
            for oid in oids:
                value = decode_int((yield tx.read(oid)))
                yield tx.write(oid, encode_int(value + 10))
            yield tx.abort()

        result = run_atomic(rt, body)
        assert not result.committed
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_exception_aborts(self, rt):
        [oid] = make_counters(rt, 1)

        def body(tx):
            yield tx.write(oid, encode_int(5))
            raise RuntimeError("bug in application code")

        result = run_atomic(rt, body)
        assert not result.committed
        assert read_counter(rt, oid) == 0

    def test_initiation_failure_reported(self):
        from repro.core.manager import TransactionManager
        from repro.runtime.coop import CooperativeRuntime

        rt = CooperativeRuntime(TransactionManager(max_transactions=0))
        result = run_atomic(rt, incrementer(None))
        assert not result.committed
        assert not result.tid


class TestSerializability:
    def test_concurrent_atomic_transactions_serializable(self, seeded_rt):
        rt = seeded_rt
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 4)

        def mover(src, dst):
            def body(tx):
                a = decode_int((yield tx.read(src)))
                yield tx.write(src, encode_int(a - 1))
                b = decode_int((yield tx.read(dst)))
                yield tx.write(dst, encode_int(b + 1))

            return body

        tids = [
            rt.spawn(mover(oids[i % 4], oids[(i + 1) % 4])) for i in range(6)
        ]
        rt.run_until_quiescent()
        rt.commit_all(tids)
        ok, cycle = is_conflict_serializable(recorder)
        assert ok, f"conflict cycle: {cycle}"

    def test_money_is_conserved_under_contention(self, seeded_rt):
        rt = seeded_rt
        oids = make_counters(rt, 3, initial=100)

        def mover(src, dst, amount):
            def body(tx):
                a = decode_int((yield tx.read(src)))
                yield tx.write(src, encode_int(a - amount))
                b = decode_int((yield tx.read(dst)))
                yield tx.write(dst, encode_int(b + amount))

            return body

        tids = [
            rt.spawn(mover(oids[i % 3], oids[(i + 1) % 3], 7))
            for i in range(5)
        ]
        rt.run_until_quiescent()
        rt.commit_all(tids)
        total = sum(read_counter(rt, oid) for oid in oids)
        assert total == 300
