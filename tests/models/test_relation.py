"""Relations: cursor scans, phantom protection, record-level sharing."""

import pytest

from repro.models.relation import (
    create_relation,
    delete_record,
    insert_record,
    record_oids,
    scan_relation,
    update_record,
)


@pytest.fixture
def relation(rt):
    def setup(tx):
        rel = yield from create_relation(tx, name="employees")
        for value in ({"name": "alice"}, {"name": "bob"},
                      {"name": "carol"}):
            yield from insert_record(tx, rel, value)
        return rel

    result = rt.run(setup)
    assert result.committed
    return result.value


class TestBasics:
    def test_scan_in_insertion_order(self, rt, relation):
        def body(tx):
            return (
                yield from scan_relation(
                    tx, relation, process=lambda r: r["name"]
                )
            )

        assert rt.run(body).value == ["alice", "bob", "carol"]

    def test_update_record(self, rt, relation):
        def body(tx):
            records = yield from record_oids(tx, relation)
            yield from update_record(
                tx, records[1], lambda r: {**r, "name": "robert"}
            )
            return (
                yield from scan_relation(
                    tx, relation, process=lambda r: r["name"]
                )
            )

        assert rt.run(body).value == ["alice", "robert", "carol"]

    def test_delete_record(self, rt, relation):
        def body(tx):
            records = yield from record_oids(tx, relation)
            removed = yield from delete_record(tx, relation, records[0])
            assert removed
            return (
                yield from scan_relation(
                    tx, relation, process=lambda r: r["name"]
                )
            )

        assert rt.run(body).value == ["bob", "carol"]

    def test_delete_missing_record_reports_false(self, rt, relation):
        def body(tx):
            records = yield from record_oids(tx, relation)
            yield from delete_record(tx, relation, records[0])
            return (yield from delete_record(tx, relation, records[0]))

        assert rt.run(body).value is False


class TestPhantomProtection:
    def test_insert_blocked_during_scan(self, rt, relation):
        """The directory read lock keeps the record set stable."""
        seen = []

        def scanner(tx):
            values = yield from scan_relation(
                tx, relation, process=lambda r: r["name"]
            )
            seen.extend(values)

        def inserter(tx):
            yield from insert_record(tx, relation, {"name": "mallory"})

        scan_tid = rt.spawn(scanner)
        rt.round()  # scanner holds the directory read lock
        insert_tid = rt.spawn(inserter)
        rt.round()
        rt.round()
        # The inserter cannot commit its directory update mid-scan.
        assert rt.manager.wait_outcome(insert_tid) is None
        rt.run_until_quiescent()
        rt.commit_all([scan_tid, insert_tid])
        assert seen == ["alice", "bob", "carol"]  # no phantom


class TestCursorStabilityOverRelation:
    def test_writer_updates_behind_cursor(self, rt, relation):
        scanned = {}

        def scanner(tx):
            scanned["rows"] = yield from scan_relation(
                tx, relation, process=lambda r: r["name"]
            )

        def writer(tx):
            records = yield from record_oids(tx, relation)
            yield from update_record(
                tx, records[0], lambda r: {**r, "name": "ALICE"}
            )

        scan_tid = rt.spawn(scanner)
        for __ in range(4):
            rt.round()  # the cursor has passed record 0 by now
        writer_tid = rt.spawn(writer)
        rt.run_until_quiescent()
        outcomes = rt.commit_all([writer_tid, scan_tid])
        assert outcomes[writer_tid] == 1 and outcomes[scan_tid] == 1

        def check(tx):
            return (
                yield from scan_relation(
                    tx, relation, process=lambda r: r["name"]
                )
            )

        assert rt.run(check).value == ["ALICE", "bob", "carol"]

    def test_repeatable_read_scan_blocks_writer(self, rt, relation):
        def scanner(tx):
            return (
                yield from scan_relation(tx, relation, stable=False)
            )

        def writer(tx):
            records = yield from record_oids(tx, relation)
            yield from update_record(
                tx, records[0], lambda r: {**r, "name": "X"}
            )

        scan_tid = rt.spawn(scanner)
        rt.run_until_quiescent()
        writer_tid = rt.spawn(writer)
        rt.run_until_quiescent()
        assert rt.manager.wait_outcome(writer_tid) is None  # blocked
        rt.commit(scan_tid)
        rt.run_until_quiescent()
        rt.commit(writer_tid)
