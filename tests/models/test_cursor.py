"""EX8 (3.2.2): cursor stability — writers follow readers mid-scan."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.common.codec import decode_int, encode_int
from repro.models.cursor import cursor_scan, release_record


class TestCursorStability:
    def test_writer_proceeds_behind_the_cursor(self, rt):
        oids = make_counters(rt, 3)
        scanned = {}

        def reader(tx):
            values = yield from cursor_scan(tx, oids, process=decode_int)
            scanned["values"] = values

        def writer(tx):
            # Overwrite the FIRST record — the cursor has moved past it.
            yield tx.write(oids[0], encode_int(99))

        reader_tid = rt.spawn(reader)
        rt.round()  # reader locks record 0
        rt.round()  # reader permits record 0, moves on
        writer_tid = rt.spawn(writer)
        rt.run_until_quiescent()
        outcomes = rt.commit_all([writer_tid, reader_tid])
        assert outcomes[writer_tid] == 1 and outcomes[reader_tid] == 1
        assert read_counter(rt, oids[0]) == 99

    def test_no_dependency_commits_any_order(self, rt):
        """'No dependencies are formed, so that t_i and t_j may commit in
        any order.'"""
        oids = make_counters(rt, 2)

        def reader(tx):
            yield from cursor_scan(tx, oids)

        def writer(tx):
            yield tx.write(oids[0], encode_int(7))

        reader_tid = rt.spawn(reader)
        rt.run_until_quiescent()
        writer_tid = rt.spawn(writer)
        rt.run_until_quiescent()
        # The WRITER commits first, then the reader: no blocking.
        assert rt.commit(writer_tid) == 1
        assert rt.commit(reader_tid) == 1
        assert len(rt.manager.dependencies) == 0

    def test_current_record_still_protected(self, rt):
        """Cursor stability protects the record UNDER the cursor."""
        oids = make_counters(rt, 2)
        progress = []

        def reader(tx):
            value = yield tx.read(oids[0])
            progress.append("read0")
            # Cursor still on record 0: no permit yet. Pause here by
            # reading record 1 next round.
            value = yield tx.read(oids[1])
            progress.append("read1")

        reader_tid = rt.spawn(reader)
        rt.round()
        writer_tid = rt.spawn(
            lambda tx: (yield tx.write(oids[0], encode_int(7)))
        )
        rt.round()
        # The writer is blocked: no permit was issued for record 0.
        assert rt.manager.wait_outcome(writer_tid) is None
        rt.run_until_quiescent()
        rt.commit_all([reader_tid, writer_tid])
        assert read_counter(rt, oids[0]) == 7  # after the reader finished

    def test_non_repeatable_read_is_the_price(self, rt):
        """The relaxation's documented anomaly, demonstrated."""
        oids = make_counters(rt, 1)
        observations = []

        def reader(tx):
            observations.append(decode_int((yield tx.read(oids[0]))))
            yield from release_record(tx, oids[0])
            # ... writer slips in here ...
            yield tx.read(oids[0])  # lock still held; value changed under it
            observations.append(decode_int((yield tx.read(oids[0]))))

        def writer(tx):
            yield tx.write(oids[0], encode_int(55))

        reader_tid = rt.spawn(reader)
        rt.round()  # first read
        rt.round()  # permit released
        writer_tid = rt.spawn(writer)
        rt.round()
        rt.run_until_quiescent()
        rt.commit_all([writer_tid, reader_tid])
        assert observations[0] == 0
        assert observations[-1] == 55  # non-repeatable read

    def test_stable_false_is_repeatable_read(self, rt):
        oids = make_counters(rt, 2)

        def reader(tx):
            return (
                yield from cursor_scan(
                    tx, oids, process=decode_int, stable=False
                )
            )

        reader_tid = rt.spawn(reader)
        rt.run_until_quiescent()
        writer_tid = rt.spawn(
            lambda tx: (yield tx.write(oids[0], encode_int(7)))
        )
        rt.run_until_quiescent()
        # The writer is blocked until the reader commits.
        assert rt.manager.wait_outcome(writer_tid) is None
        assert rt.commit(reader_tid) == 1
        rt.run_until_quiescent()
        assert rt.commit(writer_tid) == 1
