"""EX2 (3.1.2): distributed transactions commit as a group."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.acta.checker import check_group_atomicity
from repro.acta.history import HistoryRecorder
from repro.models.distributed import run_distributed


class TestGroupCommit:
    def test_all_commit_together(self, rt):
        oids = make_counters(rt, 3)
        result = run_distributed(rt, [incrementer(oid) for oid in oids])
        assert result.committed
        # The paper: later commit calls "simply return 1".
        assert result.commit_returns == (1, 1, 1)
        assert all(read_counter(rt, oid) == 1 for oid in oids)

    def test_component_values_collected(self, rt):
        oids = make_counters(rt, 2)
        result = run_distributed(
            rt, [incrementer(oids[0], delta=5), incrementer(oids[1], delta=7)]
        )
        assert result.values == (5, 7)

    def test_single_component_degenerates_to_atomic(self, rt):
        [oid] = make_counters(rt, 1)
        result = run_distributed(rt, [incrementer(oid)])
        assert result.committed
        assert read_counter(rt, oid) == 1


class TestGroupAbort:
    def test_one_failure_aborts_all(self, rt):
        oids = make_counters(rt, 3)
        bodies = [
            incrementer(oids[0]),
            incrementer(oids[1], fail=True),  # this one aborts
            incrementer(oids[2]),
        ]
        result = run_distributed(rt, bodies)
        assert not result.committed
        # The paper: "Later commit invocations simply return 0."
        assert all(ret == 0 for ret in result.commit_returns)
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_group_atomicity_in_history(self, rt):
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 2)
        run_distributed(
            rt, [incrementer(oids[0]), incrementer(oids[1], fail=True)]
        )
        run_distributed(rt, [incrementer(oid) for oid in oids])
        assert check_group_atomicity(recorder) == []

    def test_failure_in_every_position(self, rt):
        """The group aborts regardless of which member fails."""
        for failing_index in range(3):
            oids = make_counters(rt, 3)
            bodies = [
                incrementer(oid, fail=(index == failing_index))
                for index, oid in enumerate(oids)
            ]
            result = run_distributed(rt, bodies)
            assert not result.committed
            assert all(read_counter(rt, oid) == 0 for oid in oids)


class TestEdgeCases:
    def test_initiation_failure_aborts_earlier_components(self):
        from repro.core.manager import TransactionManager
        from repro.runtime.coop import CooperativeRuntime

        rt = CooperativeRuntime(TransactionManager(max_transactions=4))
        oids = make_counters(rt, 1)
        bodies = [incrementer(oids[0]) for __ in range(6)]
        result = run_distributed(rt, bodies)
        assert not result.committed

    def test_initiation_failure_records_the_reason(self):
        """A half-formed group leaves an audit trail, not a mystery."""
        from repro.core.manager import TransactionManager
        from repro.runtime.coop import CooperativeRuntime

        manager = TransactionManager(max_transactions=2)
        rt = CooperativeRuntime(manager)
        oids = make_counters(rt, 1)
        bodies = [incrementer(oids[0]) for __ in range(4)]
        result = run_distributed(rt, bodies)
        assert not result.committed
        assert "initiate of component" in result.abort_reason
        assert "already-initiated" in result.abort_reason
        for tid in result.tids:
            td = manager.table.maybe_get(tid)
            assert td.abort_reason == result.abort_reason


class TestClusterPath:
    def _body(self, tag):
        def body(tx):
            oid = yield tx.create(tag + b"0")
            yield tx.write(oid, tag + b"1")
            return oid

        return body

    def test_group_commits_across_three_sites(self):
        from repro.cluster import Cluster
        from repro.storage.log import CommitRecord

        cluster = Cluster()
        bodies = [self._body(b"a"), self._body(b"b"), self._body(b"c")]
        result = run_distributed(cluster, bodies)
        assert result.committed
        assert result.group is not None and result.group.resolved
        # Round-robin placement: one component per site, all committed
        # in their own site's durable log.
        assert sorted(ref.site for ref in result.tids) == sorted(cluster.sites)
        cluster.converge()
        for ref in result.tids:
            committed = [
                record.tid.value
                for record in cluster.sites[ref.site].durable_records()
                if isinstance(record, CommitRecord)
            ]
            assert ref.tid.value in committed
        assert all(value is not None for value in result.values)

    def test_explicit_placement_and_coordinator(self):
        from repro.cluster import Cluster

        cluster = Cluster(sites=("alpha", "beta"))
        result = run_distributed(
            cluster,
            [self._body(b"x"), self._body(b"y")],
            placement=["beta", "beta"],
            coordinator="beta",
        )
        assert result.committed
        assert {ref.site for ref in result.tids} == {"beta"}

    def test_remote_initiation_failure_aborts_with_reason(self):
        from repro.cluster import Cluster
        from repro.core.status import TransactionStatus

        cluster = Cluster(sites=("alpha", "beta"))
        cluster.sites["beta"].manager.max_transactions = 0
        result = run_distributed(
            cluster, [self._body(b"x"), self._body(b"y")]
        )
        assert not result.committed
        assert "returned the null tid" in result.abort_reason
        (survivor,) = result.tids
        td = cluster.sites[survivor.site].manager.table.maybe_get(survivor.tid)
        assert td.status is TransactionStatus.ABORTED
        assert td.abort_reason == result.abort_reason

    def test_components_see_independent_objects(self, rt):
        oids = make_counters(rt, 4)
        result = run_distributed(
            rt, [incrementer(oid, delta=i + 1) for i, oid in enumerate(oids)]
        )
        assert result.committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 2, 3, 4]
