"""EX2 (3.1.2): distributed transactions commit as a group."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.acta.checker import check_group_atomicity
from repro.acta.history import HistoryRecorder
from repro.models.distributed import run_distributed


class TestGroupCommit:
    def test_all_commit_together(self, rt):
        oids = make_counters(rt, 3)
        result = run_distributed(rt, [incrementer(oid) for oid in oids])
        assert result.committed
        # The paper: later commit calls "simply return 1".
        assert result.commit_returns == (1, 1, 1)
        assert all(read_counter(rt, oid) == 1 for oid in oids)

    def test_component_values_collected(self, rt):
        oids = make_counters(rt, 2)
        result = run_distributed(
            rt, [incrementer(oids[0], delta=5), incrementer(oids[1], delta=7)]
        )
        assert result.values == (5, 7)

    def test_single_component_degenerates_to_atomic(self, rt):
        [oid] = make_counters(rt, 1)
        result = run_distributed(rt, [incrementer(oid)])
        assert result.committed
        assert read_counter(rt, oid) == 1


class TestGroupAbort:
    def test_one_failure_aborts_all(self, rt):
        oids = make_counters(rt, 3)
        bodies = [
            incrementer(oids[0]),
            incrementer(oids[1], fail=True),  # this one aborts
            incrementer(oids[2]),
        ]
        result = run_distributed(rt, bodies)
        assert not result.committed
        # The paper: "Later commit invocations simply return 0."
        assert all(ret == 0 for ret in result.commit_returns)
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_group_atomicity_in_history(self, rt):
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 2)
        run_distributed(
            rt, [incrementer(oids[0]), incrementer(oids[1], fail=True)]
        )
        run_distributed(rt, [incrementer(oid) for oid in oids])
        assert check_group_atomicity(recorder) == []

    def test_failure_in_every_position(self, rt):
        """The group aborts regardless of which member fails."""
        for failing_index in range(3):
            oids = make_counters(rt, 3)
            bodies = [
                incrementer(oid, fail=(index == failing_index))
                for index, oid in enumerate(oids)
            ]
            result = run_distributed(rt, bodies)
            assert not result.committed
            assert all(read_counter(rt, oid) == 0 for oid in oids)


class TestEdgeCases:
    def test_initiation_failure_aborts_earlier_components(self):
        from repro.core.manager import TransactionManager
        from repro.runtime.coop import CooperativeRuntime

        rt = CooperativeRuntime(TransactionManager(max_transactions=4))
        oids = make_counters(rt, 1)
        bodies = [incrementer(oids[0]) for __ in range(6)]
        result = run_distributed(rt, bodies)
        assert not result.committed

    def test_components_see_independent_objects(self, rt):
        oids = make_counters(rt, 4)
        result = run_distributed(
            rt, [incrementer(oid, delta=i + 1) for i, oid in enumerate(oids)]
        )
        assert result.committed
        assert [read_counter(rt, oid) for oid in oids] == [1, 2, 3, 4]
