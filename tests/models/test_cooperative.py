"""EX7 (3.2.1): cooperating transactions — permit ping-pong + coupling."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.acta.checker import check_commit_order, check_group_atomicity
from repro.acta.history import HistoryRecorder
from repro.common.codec import decode_int, encode_int
from repro.models.cooperative import (
    cooperate,
    couple_commits,
    establish_cooperation,
)


def appender(oid, items, approve=True):
    """Append items one at a time via atomic operations."""

    def body(tx):
        for item in items:
            def add(raw, item=item):
                values = decode_int(raw)
                return encode_int(values * 10 + item), None

            yield tx.operation(oid, "write", add)
        if not approve:
            yield tx.abort()

    return body


class TestOneWayCooperation:
    def test_paper_fragment_allows_conflict(self, rt):
        """form_dependency(CD, ti, tj); permit(ti, tj, ob, op)."""
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1]))
        rt.round()  # ti holds the write lock now
        tj = rt.spawn(appender(oid, [2]))
        establish_cooperation(
            rt.manager, ti, tj, oids=[oid], mutual=False
        )
        rt.run_until_quiescent()
        # tj could proceed despite ti's lock; both completed.
        assert rt.manager.wait_outcome(ti) is True
        assert rt.manager.wait_outcome(tj) is True
        rt.commit_all([ti, tj])

    def test_cd_orders_commits(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1]))
        rt.round()
        tj = rt.spawn(appender(oid, [2]))
        establish_cooperation(rt.manager, ti, tj, oids=[oid], mutual=False)
        rt.run_until_quiescent()
        # Commit tj first: it must block until ti terminates.
        outcomes = rt.commit_all([tj, ti])
        assert outcomes[ti] == 1 and outcomes[tj] == 1
        assert check_commit_order(recorder) == []


class TestMutualCooperation:
    def test_ping_pong_interleaves_edits(self, seeded_rt):
        rt = seeded_rt
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1, 1]))
        tj = rt.spawn(appender(oid, [2, 2]))
        establish_cooperation(rt.manager, ti, tj, oids=[oid], mutual=True)
        rt.run_until_quiescent()
        rt.commit_all([ti, tj])
        final = read_counter(rt, oid)
        # All four digits landed (no lost updates), in some interleaving.
        digits = sorted(str(final))
        assert digits == ["1", "1", "2", "2"]
        assert rt.manager.lock_manager.stats["suspensions"] >= 1

    def test_couple_commits_is_group(self, rt):
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1]))
        tj = rt.spawn(appender(oid, [2], approve=False))
        establish_cooperation(rt.manager, ti, tj, oids=[oid], mutual=True)
        rt.run_until_quiescent()
        outcomes = rt.commit_all([ti, tj])
        # tj aborted, so the coupled ti must abort too.
        assert outcomes[ti] == 0 and outcomes[tj] == 0
        assert read_counter(rt, oid) == 0

    def test_group_atomicity_checked(self, rt):
        recorder = HistoryRecorder(rt.manager)
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1]))
        tj = rt.spawn(appender(oid, [2]))
        establish_cooperation(rt.manager, ti, tj, oids=[oid], mutual=True)
        rt.run_until_quiescent()
        rt.commit_all([ti, tj])
        assert check_group_atomicity(recorder) == []

    def test_abort_wipes_both_sides_work(self, rt):
        """The paper's caveat: undo installs before images, so
        'subsequent updates done by cooperating transactions will also
        be lost'."""
        [oid] = make_counters(rt, 1)
        ti = rt.spawn(appender(oid, [1]))
        tj = rt.spawn(appender(oid, [2]))
        establish_cooperation(rt.manager, ti, tj, oids=[oid], mutual=True)
        rt.run_until_quiescent()
        rt.abort(ti)
        rt.commit_all([tj])
        assert read_counter(rt, oid) == 0


class TestBodyLevelHelper:
    def test_cooperate_fragment(self, rt):
        [oid] = make_counters(rt, 1)
        done = {}

        def leader(tx):
            def set1(raw):
                return encode_int(1), None

            yield tx.operation(oid, "write", set1)
            peer_tid = done["peer"]
            yield from cooperate(tx, peer_tid, oids=[oid])
            # hold the lock; the peer can now conflict

        def peer(tx):
            def set2(raw):
                return encode_int(decode_int(raw) + 20), None

            yield tx.operation(oid, "write", set2)

        leader_tid = rt.initiate(leader)
        peer_tid = rt.initiate(peer)
        done["peer"] = peer_tid
        rt.begin(leader_tid)
        rt.round()
        rt.begin(peer_tid)
        rt.run_until_quiescent()
        outcomes = rt.commit_all([peer_tid, leader_tid])
        assert outcomes[leader_tid] == 1 and outcomes[peer_tid] == 1
        assert read_counter(rt, oid) == 21
