"""Parallel sibling subtransactions and saga forward recovery."""

import pytest

from tests.conftest import incrementer, make_counters, read_counter

from repro.acta.checker import check_compensation_shape
from repro.acta.history import HistoryRecorder
from repro.common.codec import decode_int, encode_int
from repro.common.events import EventKind
from repro.models.atomic import run_atomic
from repro.models.nested import parallel_subtransactions
from repro.models.saga import Saga, run_saga


class TestParallelSiblings:
    def test_all_siblings_land(self, rt):
        oids = make_counters(rt, 3)

        def parent(tx):
            outcomes = yield from parallel_subtransactions(
                tx, [incrementer(oid) for oid in oids]
            )
            return [outcome.value for outcome in outcomes]

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == [1, 1, 1]
        assert all(read_counter(rt, oid) == 1 for oid in oids)

    def test_siblings_actually_overlap(self, rt):
        """All children begin before any child completes."""
        recorder = HistoryRecorder(rt.manager)
        oids = make_counters(rt, 3)

        def slow_child(oid):
            def body(tx):
                for __ in range(8):
                    value = decode_int((yield tx.read(oid)))
                    yield tx.write(oid, encode_int(value + 1))

            return body

        def parent(tx):
            yield from parallel_subtransactions(
                tx, [slow_child(oid) for oid in oids]
            )

        result = run_atomic(rt, parent)
        assert result.committed
        begins = [
            event.tick for event in recorder.events
            if event.kind is EventKind.BEGIN and event.tid.value > result.tid.value
        ]
        completes = [
            event.tick for event in recorder.events
            if event.kind is EventKind.COMPLETE
            and event.tid.value > result.tid.value
        ]
        assert len(begins) == 3
        assert max(begins) < min(completes)

    def test_required_failure_aborts_parent(self, rt):
        oids = make_counters(rt, 3)

        def parent(tx):
            yield from parallel_subtransactions(
                tx,
                [
                    incrementer(oids[0]),
                    incrementer(oids[1], fail=True),
                    incrementer(oids[2]),
                ],
            )

        result = run_atomic(rt, parent)
        assert not result.committed
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_tolerant_mode_keeps_survivors(self, rt):
        oids = make_counters(rt, 3)

        def parent(tx):
            outcomes = yield from parallel_subtransactions(
                tx,
                [
                    incrementer(oids[0]),
                    incrementer(oids[1], fail=True),
                    incrementer(oids[2]),
                ],
                require_all=False,
            )
            return [outcome is not None for outcome in outcomes]

        result = run_atomic(rt, parent)
        assert result.committed
        assert result.value == [True, False, True]
        assert [read_counter(rt, oid) for oid in oids] == [1, 0, 1]

    def test_args_pairs_accepted(self, rt):
        oids = make_counters(rt, 1)

        def child(tx, oid, delta):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + delta))
            return delta

        def parent(tx):
            outcomes = yield from parallel_subtransactions(
                tx, [(child, (oids[0], 5))]
            )
            return outcomes[0].value

        result = run_atomic(rt, parent)
        assert result.committed and result.value == 5
        assert read_counter(rt, oids[0]) == 5


class TestForwardRecoverySaga:
    def _flaky_step(self, oid, fail_times, counter):
        def body(tx):
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value + 1))
            counter["attempts"] += 1
            if counter["attempts"] <= fail_times:
                yield tx.abort()

        return body

    def test_flaky_component_retried_to_success(self, rt):
        oids = make_counters(rt, 2)
        counter = {"attempts": 0}
        saga = Saga(recovery="forward", max_forward_retries=5)
        saga.step(incrementer(oids[0]), incrementer(oids[0], delta=-1),
                  name="t1")
        saga.step(self._flaky_step(oids[1], 2, counter), None, name="t2")
        result = run_saga(rt, saga)
        assert result.committed
        assert counter["attempts"] == 3  # two failures + the success
        assert result.execution_order == [
            "t1", "retry-t2", "retry-t2", "t2",
        ]
        assert read_counter(rt, oids[1]) == 1  # aborted attempts undone

    def test_exhausted_retries_fall_back_to_backward(self, rt):
        oids = make_counters(rt, 2)
        saga = Saga(recovery="forward", max_forward_retries=2)
        saga.step(incrementer(oids[0]), incrementer(oids[0], delta=-1),
                  name="t1")
        saga.step(incrementer(oids[1], fail=True), None, name="t2")
        result = run_saga(rt, saga)
        assert not result.committed
        assert result.compensated_steps == 1
        assert check_compensation_shape(result.execution_order, 2)
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_backward_remains_default(self, rt):
        oids = make_counters(rt, 2)
        saga = Saga()
        assert saga.recovery == "backward"

    def test_unknown_recovery_rejected(self):
        from repro.common.errors import AssetError

        with pytest.raises(AssetError, match="recovery"):
            Saga(recovery="sideways")
