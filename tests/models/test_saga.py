"""EX6 (3.1.6): sagas — forward commits, reverse compensation."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.acta.checker import check_compensation_shape
from repro.common.codec import decode_int, encode_int
from repro.common.errors import AssetError
from repro.models.saga import Saga, SagaStep, run_saga


def add_step(tx, oid, delta, fail=False):
    value = decode_int((yield tx.read(oid)))
    yield tx.write(oid, encode_int(value + delta))
    if fail:
        yield tx.abort()
    return value + delta


def build(rt, oids, fail_at=None):
    """A saga of len(oids) steps, each adding 10 to its object."""
    saga = Saga()
    for index, oid in enumerate(oids):
        fail = fail_at is not None and index == fail_at

        def body(tx, oid=oid, fail=fail):
            return (yield from add_step(tx, oid, 10, fail))

        def comp(tx, oid=oid):
            return (yield from add_step(tx, oid, -10))

        is_last = index == len(oids) - 1
        saga.step(body, None if is_last else comp, name=f"t{index + 1}")
    return saga


class TestForwardPath:
    def test_all_steps_commit(self, rt):
        oids = make_counters(rt, 3)
        result = run_saga(rt, build(rt, oids))
        assert result.committed
        assert result.completed_steps == 3
        assert result.execution_order == ["t1", "t2", "t3"]
        assert all(read_counter(rt, oid) == 10 for oid in oids)

    def test_components_commit_as_they_go(self, rt):
        """Component effects are visible before the saga finishes."""
        oids = make_counters(rt, 2)
        observed = []

        def spy_step(tx):
            # t1 committed already, so this independent component can read
            # its effect right away.
            observed.append(decode_int((yield tx.read(oids[0]))))
            value = decode_int((yield tx.read(oids[1])))
            yield tx.write(oids[1], encode_int(value + 10))

        saga = Saga()
        saga.step(
            lambda tx: (yield from add_step(tx, oids[0], 10)),
            lambda tx: (yield from add_step(tx, oids[0], -10)),
            name="t1",
        )
        saga.step(spy_step, None, name="t2")
        result = run_saga(rt, saga)
        assert result.committed
        assert observed == [10]  # t1's effect already durable

    def test_values_collected(self, rt):
        oids = make_counters(rt, 2)
        result = run_saga(rt, build(rt, oids))
        assert result.values == [10, 10]


class TestCompensation:
    @pytest.mark.parametrize("fail_at", [0, 1, 2, 3])
    def test_shape_for_every_failure_point(self, rt, fail_at):
        """t1 .. tk ct_k .. ct_1 for failure at step k+1."""
        oids = make_counters(rt, 4)
        result = run_saga(rt, build(rt, oids, fail_at=fail_at))
        assert not result.committed
        assert result.completed_steps == fail_at
        assert check_compensation_shape(result.execution_order, 4)
        # All effects compensated: back to initial state.
        assert all(read_counter(rt, oid) == 0 for oid in oids)

    def test_compensation_runs_in_reverse_order(self, rt):
        oids = make_counters(rt, 3)
        result = run_saga(rt, build(rt, oids, fail_at=2))
        assert result.execution_order == ["t1", "t2", "ct2", "ct1"]
        assert result.compensated_steps == 2

    def test_compensation_retried_until_commit(self, rt):
        [oid] = make_counters(rt, 1)
        attempts = {"count": 0}

        def flaky_comp(tx):
            attempts["count"] += 1
            if attempts["count"] < 3:
                yield tx.abort()
            value = decode_int((yield tx.read(oid)))
            yield tx.write(oid, encode_int(value - 10))

        saga = Saga()
        saga.step(
            lambda tx: (yield from add_step(tx, oid, 10)),
            flaky_comp,
            name="t1",
        )
        saga.step(
            lambda tx: (yield from add_step(tx, oid, 0, fail=True)),
            None,
            name="t2",
        )
        result = run_saga(rt, saga)
        assert not result.committed
        assert attempts["count"] == 3
        assert read_counter(rt, oid) == 0

    def test_hopeless_compensation_surfaces(self, rt):
        [oid] = make_counters(rt, 1)

        def always_fails(tx):
            yield tx.abort()

        saga = Saga(max_compensation_retries=3)
        saga.step(
            lambda tx: (yield from add_step(tx, oid, 10)),
            always_fails,
            name="t1",
        )
        saga.step(always_fails, None, name="t2")
        with pytest.raises(AssetError, match="compensation"):
            run_saga(rt, saga)


class TestValidation:
    def test_missing_compensation_rejected(self, rt):
        saga = Saga()
        saga.step(lambda tx: (yield tx.abort()), None, name="t1")
        saga.step(lambda tx: (yield tx.abort()), None, name="t2")
        with pytest.raises(AssetError, match="lacks a compensating"):
            run_saga(rt, saga)

    def test_last_step_needs_no_compensation(self, rt):
        [oid] = make_counters(rt, 1)
        saga = Saga()
        saga.step(
            lambda tx: (yield from add_step(tx, oid, 1)),
            lambda tx: (yield from add_step(tx, oid, -1)),
        )
        saga.step(lambda tx: (yield from add_step(tx, oid, 1)), None)
        assert run_saga(rt, saga).committed

    def test_list_of_steps_accepted(self, rt):
        [oid] = make_counters(rt, 1)
        steps = [
            SagaStep(body=lambda tx: (yield from add_step(tx, oid, 1))),
        ]
        assert run_saga(rt, steps).committed


class TestIsolationRelaxation:
    def test_other_transactions_see_partial_saga(self, rt):
        """Sagas expose partial results: isolation is per component."""
        oids = make_counters(rt, 2)
        mid_values = []

        def peeker(tx):
            mid_values.append(decode_int((yield tx.read(oids[0]))))

        saga = Saga()
        saga.step(
            lambda tx: (yield from add_step(tx, oids[0], 10)),
            lambda tx: (yield from add_step(tx, oids[0], -10)),
            name="t1",
        )

        def step_two(tx):
            # Run the peeker as an independent transaction mid-saga by
            # hand: component t1 already committed, so it may read.
            value = decode_int((yield tx.read(oids[1])))
            yield tx.write(oids[1], encode_int(value + 10))

        saga.step(step_two, None, name="t2")

        # Interleave: run t1, peek, then t2 via the saga machinery being
        # sequential — emulate by running the peeker after the saga's
        # t1 using a fresh runtime pass.
        result = run_saga(rt, saga)
        assert result.committed
        peek = rt.run(peeker)
        assert peek.committed
        assert mid_values == [10]
