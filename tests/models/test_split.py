"""EX5 (3.1.5): split and join transactions."""

import pytest

from tests.conftest import make_counters, read_counter

from repro.common.codec import decode_int, encode_int
from repro.models.atomic import run_atomic
from repro.models.split import join_transaction, split_transaction


def bump(tx, oid, delta):
    value = decode_int((yield tx.read(oid)))
    yield tx.write(oid, encode_int(value + delta))


class TestSplit:
    def test_split_commits_independently(self, rt):
        oids = make_counters(rt, 2)

        def body(tx):
            yield from bump(tx, oids[0], 1)
            yield from bump(tx, oids[1], 1)

            def noop(tx2):
                if False:  # pragma: no cover
                    yield None

            split = yield from split_transaction(tx, noop, oids=[oids[0]])
            yield tx.commit(split)  # delegated work commits NOW
            # the parent continues and eventually aborts
            yield tx.abort()

        result = run_atomic(rt, body)
        assert not result.committed
        assert read_counter(rt, oids[0]) == 1  # survived via the split
        assert read_counter(rt, oids[1]) == 0  # undone with the parent

    def test_split_abort_spares_parent(self, rt):
        oids = make_counters(rt, 2)

        def body(tx):
            yield from bump(tx, oids[0], 1)
            yield from bump(tx, oids[1], 1)

            def noop(tx2):
                if False:  # pragma: no cover
                    yield None

            split = yield from split_transaction(tx, noop, oids=[oids[0]])
            yield tx.abort(split)  # the split half dies

        result = run_atomic(rt, body)
        assert result.committed
        assert read_counter(rt, oids[0]) == 0  # the split's share undone
        assert read_counter(rt, oids[1]) == 1  # the parent's share kept

    def test_split_body_continues_work(self, rt):
        """The split transaction can keep operating on delegated objects."""
        oids = make_counters(rt, 1)

        def extra_work(tx2):
            yield from bump(tx2, oids[0], 10)

        def body(tx):
            yield from bump(tx, oids[0], 1)
            split = yield from split_transaction(
                tx, extra_work, oids=[oids[0]]
            )
            ok = yield tx.wait(split)
            assert ok
            yield tx.commit(split)

        result = run_atomic(rt, body)
        assert result.committed
        assert read_counter(rt, oids[0]) == 11

    def test_split_parent_is_caller(self, rt):
        recorded = {}

        def noop(tx2):
            recorded["parent"] = tx2.parent_tid()
            if False:  # pragma: no cover
                yield None

        def body(tx):
            recorded["self"] = tx.self_tid()
            split = yield from split_transaction(tx, noop, oids=[])
            yield tx.wait(split)
            yield tx.commit(split)

        result = run_atomic(rt, body)
        assert result.committed
        assert recorded["parent"] == recorded["self"]


class TestJoin:
    def test_join_merges_effects(self, rt):
        oids = make_counters(rt, 2)

        def side_work(tx2):
            yield from bump(tx2, oids[1], 5)

        def body(tx):
            yield from bump(tx, oids[0], 1)
            side = yield tx.initiate(side_work)
            yield tx.permit(receiver=side)
            yield tx.begin(side)
            ok = yield from join_transaction(tx, side)
            assert ok == 1
            # side's +5 now belongs to me; abort side harmlessly:
            yield tx.abort(side)

        result = run_atomic(rt, body)
        assert result.committed
        assert read_counter(rt, oids[0]) == 1
        assert read_counter(rt, oids[1]) == 5

    def test_join_aborted_source_reports_zero(self, rt):
        oids = make_counters(rt, 1)

        def failing(tx2):
            yield from bump(tx2, oids[0], 5)
            yield tx2.abort()

        def body(tx):
            side = yield tx.initiate(failing)
            yield tx.begin(side)
            ok = yield from join_transaction(tx, side)
            return ok

        result = run_atomic(rt, body)
        assert result.committed
        assert result.value == 0
        assert read_counter(rt, oids[0]) == 0

    def test_paper_split_then_join_round_trip(self, rt):
        """The section 3.1.5 example: s splits from t, then joins back."""
        oids = make_counters(rt, 1)

        def split_body(tx2):
            yield from bump(tx2, oids[0], 100)

        def body(tx):
            yield from bump(tx, oids[0], 1)
            s = yield from split_transaction(
                tx, split_body, oids=[oids[0]]
            )
            ok = yield from join_transaction(tx, s)  # join(s, t)
            assert ok == 1
            yield tx.abort(s)  # s delegated everything; its fate is moot

        result = run_atomic(rt, body)
        assert result.committed
        assert read_counter(rt, oids[0]) == 101
