#!/usr/bin/env python
"""Consolidate the per-PR bench snapshots into one trajectory file.

Each PR's bench run leaves a ``BENCH_PR<n>.json`` at the repo root: a
list of ``{"kind": "series", "series": <name>, "headers": [...],
"rows": [...]}`` objects.  This script merges every snapshot into
``BENCH_TRAJECTORY.json`` so a series can be judged against its curve
across PRs, not a single point (ROADMAP item 3, first slice):

.. code-block:: json

    {
      "prs": [1, 3, 4, 5, 7],
      "series": {
        "EX1: atomic throughput ...": [
          {"pr": 1, "headers": [...], "rows": [...]},
          {"pr": 3, "headers": [...], "rows": [...]}
        ]
      }
    }

Usage::

    python scripts/bench_trajectory.py [--root DIR] [--out PATH] [--print]

Exits non-zero when no snapshots are found (a wired-but-empty
consolidation step should fail loudly, not upload an empty artifact).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SNAPSHOT = re.compile(r"^BENCH_PR(\d+)\.json$")


def find_snapshots(root):
    """``[(pr_number, path)]`` for every BENCH_PR*.json, PR-ordered."""
    found = []
    for path in Path(root).iterdir():
        match = SNAPSHOT.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def consolidate(snapshots):
    """Merge snapshots into the trajectory dict (see module docstring)."""
    trajectory = {"prs": [], "series": {}}
    for pr, path in snapshots:
        with open(path) as handle:
            entries = json.load(handle)
        trajectory["prs"].append(pr)
        for entry in entries:
            if entry.get("kind") != "series":
                continue
            trajectory["series"].setdefault(entry["series"], []).append({
                "pr": pr,
                "headers": entry.get("headers", []),
                "rows": entry.get("rows", []),
            })
    return trajectory


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Merge BENCH_PR*.json snapshots into one trajectory."
    )
    parser.add_argument(
        "--root", default=".", help="directory holding BENCH_PR*.json"
    )
    parser.add_argument(
        "--out", default="BENCH_TRAJECTORY.json", help="output path"
    )
    parser.add_argument(
        "--print", action="store_true", dest="show",
        help="print a per-series coverage summary",
    )
    args = parser.parse_args(argv)

    snapshots = find_snapshots(args.root)
    if not snapshots:
        print(f"no BENCH_PR*.json snapshots under {args.root!r}",
              file=sys.stderr)
        return 1
    trajectory = consolidate(snapshots)
    with open(args.out, "w") as handle:
        json.dump(trajectory, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(
        f"{args.out}: {len(trajectory['series'])} series across PRs"
        f" {trajectory['prs']}"
    )
    if args.show:
        for name in sorted(trajectory["series"]):
            points = trajectory["series"][name]
            prs = [point["pr"] for point in points]
            print(f"  {name}: {len(points)} snapshots (PRs {prs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
