"""Abstract syntax tree for the transaction mini-language."""

from __future__ import annotations

from dataclasses import dataclass


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: int = 0


@dataclass(frozen=True)
class String(Expr):
    value: str = ""


@dataclass(frozen=True)
class Var(Expr):
    name: str = ""


@dataclass(frozen=True)
class ReadExpr(Expr):
    """``read(obj)`` — a locked read of a named object."""

    obj: str = ""


@dataclass(frozen=True)
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr = None


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class WriteStmt(Stmt):
    """``write(obj, expr);``"""

    obj: str = ""
    value: Expr = None


@dataclass(frozen=True)
class AssignStmt(Stmt):
    """``var = expr;``"""

    name: str = ""
    value: Expr = None


@dataclass(frozen=True)
class AbortStmt(Stmt):
    """``abort;`` — abort the enclosing transaction."""


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    """``return expr;`` — the transaction body's value."""

    value: Expr = None


@dataclass(frozen=True)
class IfStmt(Stmt):
    """``if (cond) { ... } else { ... }``"""

    condition: Expr = None
    then_block: tuple = ()
    else_block: tuple = ()


@dataclass(frozen=True)
class SubTransStmt(Stmt):
    """A nested ``trans { ... }``.

    ``required`` selects between the trip semantics (child failure aborts
    the parent) and ``try trans`` (the parent survives; the variable
    ``bound_to``, when set by ``var = try trans {...}`` syntax, receives
    1/0).
    """

    body: tuple = ()
    required: bool = True
    bound_to: str = ""


# -- top-level units --------------------------------------------------------------


@dataclass(frozen=True)
class TransUnit:
    """One ``trans { ... }`` block at top level."""

    body: tuple = ()


@dataclass(frozen=True)
class ParallelUnit:
    """``trans{} || trans{} || ...`` — a distributed transaction."""

    components: tuple = ()


@dataclass(frozen=True)
class ContingentUnit:
    """``trans{} else trans{} else ...`` — a contingent transaction."""

    alternatives: tuple = ()


@dataclass(frozen=True)
class SagaStepNode:
    """One saga component with an optional compensation block."""

    body: tuple = ()
    compensation: tuple = None


@dataclass(frozen=True)
class SagaUnit:
    """``saga { trans{} compensating trans{} ... }``"""

    steps: tuple = ()


@dataclass(frozen=True)
class WorkflowTaskNode:
    """One workflow task declaration.

    ``alternatives`` are statement blocks tried contingently (or raced
    with ``race``); ``compensation`` is an optional statement block run
    during backward recovery.
    """

    name: str = ""
    optional: bool = False
    race: bool = False
    requires: tuple = ()
    alternatives: tuple = ()
    compensation: tuple = None


@dataclass(frozen=True)
class WorkflowUnit:
    """``workflow { task a {...} optional race task b {...} ... }``"""

    tasks: tuple = ()
