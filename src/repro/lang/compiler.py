"""Compiler: mini-language AST → primitive programs.

Each ``trans`` block compiles to a transaction body (a generator function
over the :class:`~repro.runtime.program.TxnContext` request vocabulary);
top-level composition compiles to the section 3 translation schemes in
:mod:`repro.models`.  Object names are bound to object ids at execution
time through the environment, so one compiled unit can run against many
databases.

Values the language manipulates (integers and strings) are stored in
objects JSON-encoded.
"""

from __future__ import annotations

from repro.common.codec import decode_json, encode_json
from repro.common.errors import AssetError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.models.atomic import run_atomic
from repro.models.contingent import run_contingent
from repro.models.distributed import run_distributed
from repro.models.nested import attempt_subtransaction, require_subtransaction
from repro.models.saga import Saga, run_saga
from repro.workflow.engine import WorkflowEngine
from repro.workflow.spec import WorkflowSpec


class _Environment:
    """Execution-time bindings: object name → oid, initial variables."""

    def __init__(self, objects=None, variables=None):
        self.objects = dict(objects or {})
        self.variables = dict(variables or {})

    def oid_of(self, name):
        try:
            return self.objects[name]
        except KeyError:
            raise AssetError(
                f"program references unknown object {name!r}"
            ) from None


# ---------------------------------------------------------------------------
# the statement/expression interpreter (a generator over requests)
# ---------------------------------------------------------------------------

_RETURN = "return"


def _evaluate(tx, env, scope, expr):
    """Evaluate ``expr``; a generator so ``read`` can issue requests."""
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.String):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name not in scope:
            raise AssetError(f"undefined variable {expr.name!r}")
        return scope[expr.name]
    if isinstance(expr, ast.ReadExpr):
        raw = yield tx.read(env.oid_of(expr.obj))
        return decode_json(raw)
    if isinstance(expr, ast.Neg):
        value = yield from _evaluate(tx, env, scope, expr.operand)
        return -value
    if isinstance(expr, ast.BinOp):
        left = yield from _evaluate(tx, env, scope, expr.left)
        if expr.op == "and":
            if not left:
                return left
            return (yield from _evaluate(tx, env, scope, expr.right))
        if expr.op == "or":
            if left:
                return left
            return (yield from _evaluate(tx, env, scope, expr.right))
        right = yield from _evaluate(tx, env, scope, expr.right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "==":
            return 1 if left == right else 0
        if expr.op == "!=":
            return 1 if left != right else 0
        if expr.op == "<":
            return 1 if left < right else 0
        if expr.op == ">":
            return 1 if left > right else 0
        if expr.op == "<=":
            return 1 if left <= right else 0
        if expr.op == ">=":
            return 1 if left >= right else 0
    raise AssetError(f"cannot evaluate {expr!r}")


def _execute_block(tx, env, scope, block):
    """Execute statements; returns ``(_RETURN, value)`` or ``None``."""
    for statement in block:
        if isinstance(statement, ast.WriteStmt):
            value = yield from _evaluate(tx, env, scope, statement.value)
            yield tx.write(env.oid_of(statement.obj), encode_json(value))
        elif isinstance(statement, ast.AssignStmt):
            scope[statement.name] = yield from _evaluate(
                tx, env, scope, statement.value
            )
        elif isinstance(statement, ast.AbortStmt):
            yield tx.abort()
            return (_RETURN, None)  # the runtime stops the program here
        elif isinstance(statement, ast.ReturnStmt):
            value = yield from _evaluate(tx, env, scope, statement.value)
            return (_RETURN, value)
        elif isinstance(statement, ast.IfStmt):
            condition = yield from _evaluate(
                tx, env, scope, statement.condition
            )
            chosen = statement.then_block if condition else statement.else_block
            result = yield from _execute_block(tx, env, scope, chosen)
            if result is not None:
                return result
        elif isinstance(statement, ast.SubTransStmt):
            child_body = _make_body(env, statement.body, dict(scope))
            helper = (
                require_subtransaction
                if statement.required
                else attempt_subtransaction
            )
            outcome = yield from helper(tx, child_body)
            if statement.bound_to:
                scope[statement.bound_to] = 1 if outcome else 0
        else:
            raise AssetError(f"cannot execute {statement!r}")
    return None


def _make_body(env, block, initial_scope=None):
    """Compile a statement block into a transaction body."""

    def body(tx):
        scope = dict(env.variables)
        if initial_scope:
            scope.update(initial_scope)
        result = yield from _execute_block(tx, env, scope, block)
        if result is not None:
            return result[1]
        return None

    return body


# ---------------------------------------------------------------------------
# compiled units
# ---------------------------------------------------------------------------


class CompiledUnit:
    """A compiled top-level program, executable against a runtime."""

    def __init__(self, unit):
        self.unit = unit

    @property
    def model(self):
        """Which translation scheme this unit uses (for introspection)."""
        return {
            ast.TransUnit: "atomic",
            ast.ParallelUnit: "distributed",
            ast.ContingentUnit: "contingent",
            ast.SagaUnit: "saga",
            ast.WorkflowUnit: "workflow",
        }[type(self.unit)]

    def execute(self, runtime, objects=None, variables=None):
        """Run the program.  ``objects`` maps language object names to
        object ids; ``variables`` seeds each body's scope.  Returns the
        underlying model's result object."""
        env = _Environment(objects=objects, variables=variables)
        unit = self.unit
        if isinstance(unit, ast.TransUnit):
            return run_atomic(runtime, _make_body(env, unit.body))
        if isinstance(unit, ast.ParallelUnit):
            return run_distributed(
                runtime,
                [_make_body(env, comp.body) for comp in unit.components],
            )
        if isinstance(unit, ast.ContingentUnit):
            return run_contingent(
                runtime,
                [_make_body(env, alt.body) for alt in unit.alternatives],
            )
        if isinstance(unit, ast.SagaUnit):
            saga = Saga()
            for index, step in enumerate(unit.steps):
                compensation = (
                    _make_body(env, step.compensation)
                    if step.compensation is not None
                    else None
                )
                saga.step(
                    _make_body(env, step.body),
                    compensation,
                    name=f"t{index + 1}",
                )
            return run_saga(runtime, saga)
        if isinstance(unit, ast.WorkflowUnit):
            spec = WorkflowSpec(name="compiled-workflow")
            for node in unit.tasks:
                task = spec.task(
                    node.name,
                    optional=node.optional,
                    race=node.race,
                    depends_on=node.requires,
                )
                for index, block in enumerate(node.alternatives):
                    task.alternative(
                        _make_body(env, block), label=f"alt{index}"
                    )
                if node.compensation is not None:
                    task.compensate_with(_make_body(env, node.compensation))
            return WorkflowEngine(runtime).execute(spec)
        raise AssetError(f"cannot execute unit {unit!r}")


def compile_source(source):
    """Parse and compile a mini-language program."""
    return CompiledUnit(parse(source))
