"""Tokenizer for the transaction mini-language."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import AssetError

KEYWORDS = {
    "trans",
    "else",
    "saga",
    "compensating",
    "if",
    "abort",
    "write",
    "read",
    "return",
    "try",
    "and",
    "or",
    "workflow",
    "task",
    "optional",
    "race",
    "requires",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<number>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\|\||==|!=|<=|>=|[{}();,=+\-*<>])
    """,
    re.VERBOSE,
)


class LangSyntaxError(AssetError):
    """A lexing or parsing error, with position information."""

    def __init__(self, message, line, column):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One token: a kind, its text, and its source position."""

    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source):
    """Tokenize ``source``; raises :class:`LangSyntaxError` on bad input."""
    tokens = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise LangSyntaxError(
                f"unexpected character {source[position]!r}",
                line,
                position - line_start + 1,
            )
        column = match.start() - line_start + 1
        text = match.group()
        if match.lastgroup == "ws":
            line += text.count("\n")
            if "\n" in text:
                line_start = match.start() + text.rindex("\n") + 1
        elif match.lastgroup == "ident":
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
        else:
            tokens.append(Token(match.lastgroup, text, line, column))
        position = match.end()
    tokens.append(Token("eof", "", line, len(source) - line_start + 1))
    return tokens
