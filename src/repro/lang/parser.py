"""Recursive-descent parser for the transaction mini-language."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.lexer import LangSyntaxError, tokenize


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset=0):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind, text=None):
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind, text=None):
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind, text=None):
        token = self.peek()
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise LangSyntaxError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.advance()

    # -- top level ----------------------------------------------------------------

    def parse_unit(self):
        if self.check("keyword", "saga"):
            unit = self.parse_saga()
        elif self.check("keyword", "workflow"):
            unit = self.parse_workflow()
        else:
            unit = self.parse_chain()
        self.expect("eof")
        return unit

    def parse_workflow(self):
        self.expect("keyword", "workflow")
        self.expect("op", "{")
        tasks = []
        while not self.check("op", "}"):
            tasks.append(self.parse_task())
        self.expect("op", "}")
        if not tasks:
            token = self.peek()
            raise LangSyntaxError("empty workflow", token.line, token.column)
        return ast.WorkflowUnit(tasks=tuple(tasks))

    def parse_task(self):
        optional = bool(self.accept("keyword", "optional"))
        race = bool(self.accept("keyword", "race"))
        if not optional:  # modifiers accepted in either order
            optional = bool(self.accept("keyword", "optional"))
        self.expect("keyword", "task")
        name = self.expect("ident").text
        requires = []
        if self.accept("keyword", "requires"):
            requires.append(self.expect("ident").text)
            while self.accept("op", ","):
                requires.append(self.expect("ident").text)
        self.expect("op", "{")
        alternatives = [self.parse_trans_block()]
        while self.accept("keyword", "else"):
            alternatives.append(self.parse_trans_block())
        self.expect("op", "}")
        compensation = None
        if self.accept("keyword", "compensating"):
            compensation = self.parse_trans_block()
        return ast.WorkflowTaskNode(
            name=name,
            optional=optional,
            race=race,
            requires=tuple(requires),
            alternatives=tuple(alternatives),
            compensation=compensation,
        )

    def parse_chain(self):
        first = ast.TransUnit(body=self.parse_trans_block())
        if self.check("op", "||"):
            components = [first]
            while self.accept("op", "||"):
                components.append(
                    ast.TransUnit(body=self.parse_trans_block())
                )
            return ast.ParallelUnit(components=tuple(components))
        if self.check("keyword", "else"):
            alternatives = [first]
            while self.accept("keyword", "else"):
                alternatives.append(
                    ast.TransUnit(body=self.parse_trans_block())
                )
            return ast.ContingentUnit(alternatives=tuple(alternatives))
        return first

    def parse_saga(self):
        self.expect("keyword", "saga")
        self.expect("op", "{")
        steps = []
        while not self.check("op", "}"):
            body = self.parse_trans_block()
            compensation = None
            if self.accept("keyword", "compensating"):
                compensation = self.parse_trans_block()
            steps.append(
                ast.SagaStepNode(body=body, compensation=compensation)
            )
        self.expect("op", "}")
        if not steps:
            token = self.peek()
            raise LangSyntaxError("empty saga", token.line, token.column)
        return ast.SagaUnit(steps=tuple(steps))

    def parse_trans_block(self):
        self.expect("keyword", "trans")
        return self.parse_block()

    def parse_block(self):
        self.expect("op", "{")
        statements = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return tuple(statements)

    # -- statements -----------------------------------------------------------------

    def parse_statement(self):
        if self.check("keyword", "abort"):
            self.advance()
            self.expect("op", ";")
            return ast.AbortStmt()
        if self.check("keyword", "return"):
            self.advance()
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.ReturnStmt(value=value)
        if self.check("keyword", "write"):
            self.advance()
            self.expect("op", "(")
            obj = self.expect("ident").text
            self.expect("op", ",")
            value = self.parse_expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.WriteStmt(obj=obj, value=value)
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "trans"):
            body = self.parse_trans_block()
            return ast.SubTransStmt(body=body, required=True)
        if self.check("keyword", "try"):
            self.advance()
            body = self.parse_trans_block()
            return ast.SubTransStmt(body=body, required=False)
        if self.check("ident") and self.peek(1).kind == "op" and (
            self.peek(1).text == "="
        ):
            name = self.advance().text
            self.advance()  # '='
            if self.check("keyword", "try"):
                self.advance()
                body = self.parse_trans_block()
                self.expect("op", ";")
                return ast.SubTransStmt(
                    body=body, required=False, bound_to=name
                )
            value = self.parse_expression()
            self.expect("op", ";")
            return ast.AssignStmt(name=name, value=value)
        token = self.peek()
        raise LangSyntaxError(
            f"unexpected {token.text or token.kind!r} at statement start",
            token.line,
            token.column,
        )

    def parse_if(self):
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_block = self.parse_block()
        else_block = ()
        if self.accept("keyword", "else"):
            else_block = self.parse_block()
        return ast.IfStmt(
            condition=condition, then_block=then_block, else_block=else_block
        )

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = ast.BinOp(op="or", left=left, right=self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_comparison()
        while self.accept("keyword", "and"):
            left = ast.BinOp(op="and", left=left, right=self.parse_comparison())
        return left

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def parse_comparison(self):
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "op" and token.text in self._COMPARISONS:
            self.advance()
            return ast.BinOp(
                op=token.text, left=left, right=self.parse_additive()
            )
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                left = ast.BinOp(
                    op=token.text, left=left,
                    right=self.parse_multiplicative(),
                )
            else:
                return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while self.check("op", "*"):
            self.advance()
            left = ast.BinOp(op="*", left=left, right=self.parse_unary())
        return left

    def parse_unary(self):
        if self.accept("op", "-"):
            return ast.Neg(operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ast.Number(value=int(token.text))
        if token.kind == "string":
            self.advance()
            raw = token.text[1:-1]
            return ast.String(
                value=raw.replace('\\"', '"').replace("\\\\", "\\")
            )
        if self.check("keyword", "read"):
            self.advance()
            self.expect("op", "(")
            obj = self.expect("ident").text
            self.expect("op", ")")
            return ast.ReadExpr(obj=obj)
        if token.kind == "ident":
            self.advance()
            return ast.Var(name=token.text)
        if self.accept("op", "("):
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        raise LangSyntaxError(
            f"unexpected {token.text or token.kind!r} in expression",
            token.line,
            token.column,
        )


def parse(source):
    """Parse ``source`` into a top-level unit node."""
    return _Parser(tokenize(source)).parse_unit()
