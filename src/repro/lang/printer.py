"""Pretty-printer: AST → mini-language source.

The inverse of the parser, up to formatting: ``parse(to_source(unit)) ==
unit`` for every AST (the round-trip property the test suite checks with
hypothesis-generated programs).  Useful for storing compiled programs in
canonical form, for error messages, and as an executable definition of
the concrete syntax.
"""

from __future__ import annotations

from repro.common.errors import AssetError
from repro.lang import ast_nodes as ast

_INDENT = "  "

# Parenthesization levels, loosest binding first.
_LEVELS = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, ">": 3, "<=": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5,
}
_UNARY_LEVEL = 6
_ATOM_LEVEL = 7


def _expr(node, parent_level=0):
    if isinstance(node, ast.Number):
        text, level = str(node.value), _ATOM_LEVEL
    elif isinstance(node, ast.String):
        escaped = node.value.replace("\\", "\\\\").replace('"', '\\"')
        text, level = f'"{escaped}"', _ATOM_LEVEL
    elif isinstance(node, ast.Var):
        text, level = node.name, _ATOM_LEVEL
    elif isinstance(node, ast.ReadExpr):
        text, level = f"read({node.obj})", _ATOM_LEVEL
    elif isinstance(node, ast.Neg):
        text = f"-{_expr(node.operand, _UNARY_LEVEL)}"
        level = _UNARY_LEVEL
    elif isinstance(node, ast.BinOp):
        level = _LEVELS[node.op]
        # Comparisons do not chain in the grammar (non-associative), so
        # BOTH operands need parens at the same level; the other
        # operators are left-associative, so only the right side binds
        # one tighter.
        comparison = level == 3
        left = _expr(node.left, level + 1 if comparison else level)
        right = _expr(node.right, level + 1)
        text = f"{left} {node.op} {right}"
    else:
        raise AssetError(f"cannot print expression {node!r}")
    if level < parent_level:
        return f"({text})"
    return text


def _statements(block, depth):
    pad = _INDENT * depth
    lines = []
    for statement in block:
        if isinstance(statement, ast.WriteStmt):
            lines.append(
                f"{pad}write({statement.obj}, {_expr(statement.value)});"
            )
        elif isinstance(statement, ast.AssignStmt):
            lines.append(
                f"{pad}{statement.name} = {_expr(statement.value)};"
            )
        elif isinstance(statement, ast.AbortStmt):
            lines.append(f"{pad}abort;")
        elif isinstance(statement, ast.ReturnStmt):
            lines.append(f"{pad}return {_expr(statement.value)};")
        elif isinstance(statement, ast.IfStmt):
            lines.append(f"{pad}if ({_expr(statement.condition)}) {{")
            lines.extend(_statements(statement.then_block, depth + 1))
            if statement.else_block:
                lines.append(f"{pad}}} else {{")
                lines.extend(_statements(statement.else_block, depth + 1))
            lines.append(f"{pad}}}")
        elif isinstance(statement, ast.SubTransStmt):
            keyword = "trans" if statement.required else "try trans"
            prefix = (
                f"{statement.bound_to} = " if statement.bound_to else ""
            )
            suffix = ";" if statement.bound_to else ""
            lines.append(f"{pad}{prefix}{keyword} {{")
            lines.extend(_statements(statement.body, depth + 1))
            lines.append(f"{pad}}}{suffix}")
        else:
            raise AssetError(f"cannot print statement {statement!r}")
    return lines


def _trans_block(block, depth):
    pad = _INDENT * depth
    lines = [f"{pad}trans {{"]
    lines.extend(_statements(block, depth + 1))
    lines.append(f"{pad}}}")
    return lines


def to_source(unit):
    """Render a top-level unit back to mini-language source."""
    if isinstance(unit, ast.TransUnit):
        return "\n".join(_trans_block(unit.body, 0))
    if isinstance(unit, ast.ParallelUnit):
        parts = [
            "\n".join(_trans_block(component.body, 0))
            for component in unit.components
        ]
        return "\n||\n".join(parts)
    if isinstance(unit, ast.ContingentUnit):
        parts = [
            "\n".join(_trans_block(alternative.body, 0))
            for alternative in unit.alternatives
        ]
        return "\nelse\n".join(parts)
    if isinstance(unit, ast.SagaUnit):
        lines = ["saga {"]
        for step in unit.steps:
            lines.extend(_trans_block(step.body, 1))
            if step.compensation is not None:
                lines.append(f"{_INDENT}compensating")
                lines.extend(_trans_block(step.compensation, 1))
        lines.append("}")
        return "\n".join(lines)
    if isinstance(unit, ast.WorkflowUnit):
        lines = ["workflow {"]
        for task in unit.tasks:
            modifiers = ""
            if task.optional:
                modifiers += "optional "
            if task.race:
                modifiers += "race "
            requires = (
                f" requires {', '.join(task.requires)}"
                if task.requires
                else ""
            )
            lines.append(f"{_INDENT}{modifiers}task {task.name}{requires} {{")
            for index, block in enumerate(task.alternatives):
                if index:
                    lines.append(f"{_INDENT * 2}else")
                lines.extend(_trans_block(block, 2))
            lines.append(f"{_INDENT}}}")
            if task.compensation is not None:
                lines.append(f"{_INDENT}compensating")
                lines.extend(_trans_block(task.compensation, 1))
        lines.append("}")
        return "\n".join(lines)
    raise AssetError(f"cannot print unit {unit!r}")
