"""History recording.

ACTA reasons about histories of *significant events*: operation
invocations plus transaction-management events (begin, commit, abort,
delegate, permit).  :class:`HistoryRecorder` subscribes to a transaction
manager's event bus and accumulates exactly those, offering typed views
the serializability builder and checkers consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.events import EventKind
from repro.core.semantics import READ, WRITE


@dataclass(frozen=True)
class OperationEvent:
    """One operation invocation on one object."""

    tick: int
    tid: object
    oid: object
    operation: str


@dataclass(frozen=True)
class DelegationEvent:
    """A transfer of responsibility for ``oids`` from ``source`` to ``target``."""

    tick: int
    source: object
    target: object
    oids: tuple


@dataclass(frozen=True)
class PermitEvent:
    """A permit grant (``receiver``/``operation`` of ``None`` mean "any")."""

    tick: int
    giver: object
    receiver: object
    oid: object
    operation: object


class HistoryRecorder:
    """Collects a manager's emitted events into an analyzable history."""

    def __init__(self, manager=None):
        self.events = []
        if manager is not None:
            self.attach(manager)

    def attach(self, manager):
        """Subscribe to ``manager``'s event bus."""
        manager.events.subscribe(self._on_event)
        return self

    def _on_event(self, event):
        self.events.append(event)

    def clear(self):
        """Forget everything recorded so far."""
        self.events.clear()

    # -- typed views ---------------------------------------------------------

    def operations(self):
        """All operation invocations, in tick order."""
        out = []
        for event in self.events:
            if event.kind is EventKind.READ:
                out.append(
                    OperationEvent(
                        event.tick, event.tid, event.detail["oid"], READ
                    )
                )
            elif event.kind is EventKind.WRITE:
                out.append(
                    OperationEvent(
                        event.tick, event.tid, event.detail["oid"], WRITE
                    )
                )
            elif event.kind is EventKind.OPERATION:
                out.append(
                    OperationEvent(
                        event.tick,
                        event.tid,
                        event.detail["oid"],
                        event.detail["operation"],
                    )
                )
        return out

    def delegations(self):
        """All delegations, in tick order."""
        return [
            DelegationEvent(
                event.tick,
                event.tid,
                event.detail["to"],
                tuple(event.detail["oids"]),
            )
            for event in self.events
            if event.kind is EventKind.DELEGATE
        ]

    def permits(self):
        """All permit grants, in tick order."""
        return [
            PermitEvent(
                event.tick,
                event.tid,
                event.detail.get("receiver"),
                event.detail["oid"],
                event.detail.get("operation"),
            )
            for event in self.events
            if event.kind is EventKind.PERMIT
        ]

    def committed(self):
        """Tids that committed, in commit order."""
        return [
            event.tid
            for event in self.events
            if event.kind is EventKind.COMMITTED
        ]

    def aborted(self):
        """Tids that aborted, in abort order."""
        return [
            event.tid
            for event in self.events
            if event.kind is EventKind.ABORTED
        ]

    def dependencies(self):
        """Formed dependencies as ``(tick, type-name, ti, tj)`` tuples."""
        return [
            (event.tick, event.detail["dep_type"], event.tid,
             event.detail["other"])
            for event in self.events
            if event.kind is EventKind.FORM_DEPENDENCY
        ]

    def of_kind(self, kind):
        """Raw events of one kind, in order."""
        return [event for event in self.events if event.kind is kind]
