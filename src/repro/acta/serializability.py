"""Serialization-graph construction and the serializability test.

The classic conflict graph, with the two ASSET twists the primitives
introduce:

* **Delegation moves responsibility.**  "Once t_i delegates an object ob
  to t_j, it will be as if t_j, not t_i, has performed the operations on
  ob" — so each operation is attributed to the transaction responsible
  for it *after* all delegations, and only operations whose responsible
  transaction committed contribute (aborted work is undone).

* **Permits suppress edges.**  ``permit(t_i, t_j, ob, op)`` lets ``t_j``
  conflict with ``t_i`` "without, conceptually, creating a conflict edge
  in the serialisation graph from t_i to t_j" — so a conflict covered by
  an earlier permit contributes no edge.

With neither primitive in play this is exactly conflict serializability;
the property suite uses that to verify the atomic model, and uses the
full graph to characterize what relaxed models give up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.semantics import ConflictTable


@dataclass
class ConflictGraph:
    """The serialization graph: committed transactions and conflict edges."""

    nodes: set = field(default_factory=set)
    edges: dict = field(default_factory=dict)  # tid -> set of tids
    suppressed: list = field(default_factory=list)  # (ti, tj, oid, op) skipped

    def add_edge(self, source, target):
        """Add ``source -> target`` (conflict order)."""
        self.nodes.add(source)
        self.nodes.add(target)
        self.edges.setdefault(source, set()).add(target)

    def find_cycle(self):
        """One cycle as a tid list, or ``None`` when acyclic."""
        state = {}
        path = []

        def visit(node):
            state[node] = "active"
            path.append(node)
            for nxt in sorted(
                self.edges.get(node, ()), key=lambda t: getattr(t, "value", 0)
            ):
                if state.get(nxt) == "active":
                    return path[path.index(nxt):]
                if nxt not in state:
                    cycle = visit(nxt)
                    if cycle is not None:
                        return cycle
            path.pop()
            state[node] = "done"
            return None

        for node in sorted(self.nodes, key=lambda t: getattr(t, "value", 0)):
            if node not in state:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    @property
    def is_acyclic(self):
        """Whether the graph admits a serial order."""
        return self.find_cycle() is None

    def topological_order(self):
        """A serial order witnessing serializability (graph must be acyclic)."""
        indegree = {node: 0 for node in self.nodes}
        for source, targets in self.edges.items():
            for target in targets:
                indegree[target] += 1
        ready = sorted(
            (n for n, d in indegree.items() if d == 0),
            key=lambda t: getattr(t, "value", 0),
        )
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for target in sorted(
                self.edges.get(node, ()), key=lambda t: getattr(t, "value", 0)
            ):
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
        if len(order) != len(self.nodes):
            raise ValueError("graph has a cycle; no serial order exists")
        return order


def _attribute_operations(recorder):
    """Operations re-attributed per the delegations, in tick order."""
    operations = [
        {"tick": op.tick, "tid": op.tid, "oid": op.oid, "op": op.operation}
        for op in recorder.operations()
    ]
    for delegation in recorder.delegations():
        for entry in operations:
            if (
                entry["tick"] < delegation.tick
                and entry["tid"] == delegation.source
                and entry["oid"] in delegation.oids
            ):
                entry["tid"] = delegation.target
    return operations


def build_conflict_graph(recorder, conflicts=None):
    """Build the serialization graph from a recorded history."""
    conflicts = conflicts if conflicts is not None else ConflictTable()
    committed = set(recorder.committed())
    operations = [
        entry
        for entry in _attribute_operations(recorder)
        if entry["tid"] in committed
    ]
    permits = recorder.permits()

    def permitted(giver, receiver, oid, operation, before_tick):
        for permit in permits:
            if permit.tick >= before_tick:
                continue
            if permit.giver != giver or permit.oid != oid:
                continue
            receiver_ok = permit.receiver is None or permit.receiver == receiver
            op_ok = permit.operation is None or permit.operation == operation
            if receiver_ok and op_ok:
                return True
        return False

    graph = ConflictGraph()
    graph.nodes |= committed
    by_object = {}
    for entry in operations:
        by_object.setdefault(entry["oid"], []).append(entry)
    for oid, entries in by_object.items():
        entries.sort(key=lambda entry: entry["tick"])
        for i, first in enumerate(entries):
            for second in entries[i + 1 :]:
                if first["tid"] == second["tid"]:
                    continue
                if not conflicts.conflicts(first["op"], second["op"]):
                    continue
                if permitted(
                    first["tid"], second["tid"], oid, second["op"],
                    second["tick"],
                ):
                    graph.suppressed.append(
                        (first["tid"], second["tid"], oid, second["op"])
                    )
                    continue
                graph.add_edge(first["tid"], second["tid"])
    return graph


def is_conflict_serializable(recorder, conflicts=None):
    """Whether the committed history is (permit-aware) serializable.

    Returns ``(serializable, cycle)``; ``cycle`` is a witness when not.
    """
    graph = build_conflict_graph(recorder, conflicts=conflicts)
    cycle = graph.find_cycle()
    return cycle is None, cycle
