"""ACTA-style analysis of executed histories.

The ASSET primitives are "inspired by the ACTA transaction framework, a
formal framework designed to specify, analyze and synthesize extended
transaction models".  This package supplies the *analyze* part for the
reproduction:

* :mod:`repro.acta.history` — records the significant events the
  transaction manager emits (operation invocations, delegations, permits,
  dependencies, terminations) into an analyzable history;
* :mod:`repro.acta.serializability` — builds the conflict (serialization)
  graph from a history, honouring delegation (responsibility transfer)
  and permits (edge suppression), and tests for acyclicity;
* :mod:`repro.acta.checker` — per-model property checkers (group
  atomicity, saga compensation shape, visibility rules) used by the test
  and property suites.
"""

from repro.acta.checker import (
    check_compensation_shape,
    check_group_atomicity,
    final_fate,
)
from repro.acta.history import HistoryRecorder, OperationEvent
from repro.acta.serializability import (
    ConflictGraph,
    build_conflict_graph,
    is_conflict_serializable,
)

__all__ = [
    "ConflictGraph",
    "HistoryRecorder",
    "OperationEvent",
    "build_conflict_graph",
    "check_compensation_shape",
    "check_group_atomicity",
    "final_fate",
    "is_conflict_serializable",
]
