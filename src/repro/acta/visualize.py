"""Textual history timelines.

Turns a recorded history into a readable per-transaction timeline —
handy in test failures and when exploring interleavings::

    t=12 T3  write           oid=ObjectId(2:acct)
    t=13 T4  lock_blocked    oid=ObjectId(2:acct) by T3
    t=15 T3  committed

and a compact per-object access summary.  Pure formatting: no state is
touched.
"""

from __future__ import annotations


_SHOW_DETAIL = {
    "oid": "",
    "operation": "op=",
    "to": "to ",
    "other": "with ",
    "dep_type": "",
    "receiver": "-> ",
    "blockers": "by ",
    "waiting": "on ",
    "reason": "",
    "parent": "parent ",
    "for_tid": "for ",
}


def _tid_label(tid):
    value = getattr(tid, "value", None)
    if value is None:
        return str(tid)
    return f"T{value}" if value else "T-"


def _format_detail(detail):
    parts = []
    for key, prefix in _SHOW_DETAIL.items():
        if key not in detail:
            continue
        value = detail[key]
        if value in (None, "", ()):
            continue
        if isinstance(value, tuple):
            value = ",".join(_tid_label(v) for v in value)
        elif hasattr(value, "value") and key in (
            "to", "other", "receiver", "for_tid", "parent",
        ):
            value = _tid_label(value)
        parts.append(f"{prefix}{value}")
    return "  ".join(parts)


def format_history(recorder, tids=None, kinds=None):
    """Render events as one line each, in tick order.

    ``tids``/``kinds`` filter to specific transactions or event kinds.
    """
    wanted_tids = set(tids) if tids is not None else None
    wanted_kinds = set(kinds) if kinds is not None else None
    lines = []
    for event in recorder.events:
        if wanted_tids is not None and event.tid not in wanted_tids:
            continue
        if wanted_kinds is not None and event.kind not in wanted_kinds:
            continue
        detail = _format_detail(event.detail)
        lines.append(
            f"t={event.tick:<4} {_tid_label(event.tid):<5}"
            f" {event.kind.value:<16} {detail}".rstrip()
        )
    return "\n".join(lines)


def format_object_timeline(recorder, oid):
    """The access history of one object, one line per operation."""
    lines = []
    for op in recorder.operations():
        if op.oid != oid:
            continue
        lines.append(
            f"t={op.tick:<4} {_tid_label(op.tid):<5} {op.operation}"
        )
    return "\n".join(lines)


def summarize(recorder):
    """A one-paragraph summary: transactions, outcomes, conflicts."""
    committed = recorder.committed()
    aborted = recorder.aborted()
    operations = recorder.operations()
    objects = {op.oid for op in operations}
    permits = recorder.permits()
    delegations = recorder.delegations()
    return (
        f"{len(committed)} committed, {len(aborted)} aborted;"
        f" {len(operations)} operations on {len(objects)} objects;"
        f" {len(permits)} permits, {len(delegations)} delegations"
    )
