"""Model-property checkers.

Small predicates over recorded histories that state, in executable form,
the guarantees each section 3 model claims.  The test and property suites
assert these after every run.

Each checker is parameterized so the same predicate serves two oracles:

* the *live* oracle — dependencies and fates read off a
  :class:`~repro.acta.history.HistoryRecorder` (the defaults, and the
  original behaviour);
* the *durable* oracle — the chaos harness passes an explicit
  ``dependencies`` list (the scenario's *intended* dependency set, which
  survives even if the buggy code under test never formed the edge) and a
  ``fates`` mapping computed from the durable log after crash recovery.
"""

from __future__ import annotations

from repro.common.events import EventKind


def final_fate(recorder, tid):
    """``"committed"``, ``"aborted"``, or ``"active"`` for ``tid``."""
    fate = "active"
    for event in recorder.events:
        if event.tid != tid:
            continue
        if event.kind is EventKind.COMMITTED:
            fate = "committed"
        elif event.kind is EventKind.ABORTED:
            fate = "aborted"
    return fate


def _normalize_dependencies(recorder, dependencies):
    """``(type_name, ti, tj)`` triples from either source.

    ``dependencies`` may carry :class:`~repro.core.dependency.DependencyType`
    values or plain type-name strings, in ``(type, ti, tj)`` or the
    recorder's ``(tick, type, ti, tj)`` shape.
    """
    if dependencies is None:
        dependencies = recorder.dependencies()
    out = []
    for dep in dependencies:
        if len(dep) == 4:
            __, dep_type, ti, tj = dep
        else:
            dep_type, ti, tj = dep
        out.append((getattr(dep_type, "name", dep_type), ti, tj))
    return out


def _fate_of(recorder, fates):
    if fates is None:
        return lambda tid: final_fate(recorder, tid)
    if callable(fates):
        return fates
    return lambda tid: fates.get(tid, "active")


def check_group_atomicity(recorder, dependencies=None, fates=None):
    """Every GC-linked pair shares one fate: both commit or neither.

    Returns the list of violating pairs (empty when the property holds).
    """
    fate = _fate_of(recorder, fates)
    violations = []
    for dep_type, ti, tj in _normalize_dependencies(recorder, dependencies):
        if dep_type != "GC":
            continue
        fate_i = fate(ti)
        fate_j = fate(tj)
        if "active" in (fate_i, fate_j):
            continue  # not yet decided; nothing to check
        if fate_i != fate_j:
            violations.append((ti, fate_i, tj, fate_j))
    return violations


def check_abort_dependencies(recorder, dependencies=None, fates=None):
    """For every AD ``(ti, tj)``: ``ti`` aborted implies ``tj`` aborted.

    Returns violating pairs.
    """
    fate = _fate_of(recorder, fates)
    violations = []
    for dep_type, ti, tj in _normalize_dependencies(recorder, dependencies):
        if dep_type != "AD":
            continue
        if fate(ti) == "aborted" and fate(tj) == "committed":
            violations.append((ti, tj))
    return violations


def check_commit_order(recorder, dependencies=None, commit_ticks=None):
    """For every CD ``(ti, tj)`` where both committed, ``tj`` did not
    commit before ``ti``.  Returns violating pairs.

    ``commit_ticks`` maps tid to commit position; by default it is read
    from the recorder's COMMITTED events (the durable oracle passes
    positions of commit records in the recovered log instead).
    """
    if commit_ticks is None:
        commit_ticks = {}
        for event in recorder.events:
            if event.kind is EventKind.COMMITTED:
                commit_ticks[event.tid] = event.tick
    violations = []
    for dep_type, ti, tj in _normalize_dependencies(recorder, dependencies):
        if dep_type != "CD":
            continue
        if ti in commit_ticks and tj in commit_ticks:
            if commit_ticks[tj] < commit_ticks[ti]:
                violations.append((ti, tj))
    return violations


def check_compensation_shape(execution_order, total_steps):
    """Verify a saga trace has the ``t1 .. tk ct_k .. ct_1`` shape.

    ``execution_order`` is the :class:`~repro.models.saga.SagaResult`
    trace (labels ``t<i>`` forward, ``ct<i>`` backward).  Returns ``True``
    for a committed saga (all ``total_steps`` forward labels, no
    compensation) or a correctly compensated prefix.
    """
    execution_order = [
        label for label in execution_order if not label.startswith("retry-")
    ]  # forward-recovery retries do not affect the shape
    forward = [label for label in execution_order if not label.startswith("c")]
    backward = [label for label in execution_order if label.startswith("c")]
    if execution_order != forward + backward:
        return False  # interleaved forward/backward work
    k = len(forward)
    if forward != [f"t{i}" for i in range(1, k + 1)]:
        return False
    if k == total_steps:
        return backward == []
    return backward == [f"ct{i}" for i in range(k, 0, -1)]
