"""Model-property checkers.

Small predicates over recorded histories that state, in executable form,
the guarantees each section 3 model claims.  The test and property suites
assert these after every run.
"""

from __future__ import annotations

from repro.common.events import EventKind


def final_fate(recorder, tid):
    """``"committed"``, ``"aborted"``, or ``"active"`` for ``tid``."""
    fate = "active"
    for event in recorder.events:
        if event.tid != tid:
            continue
        if event.kind is EventKind.COMMITTED:
            fate = "committed"
        elif event.kind is EventKind.ABORTED:
            fate = "aborted"
    return fate


def check_group_atomicity(recorder):
    """Every GC-linked pair shares one fate: both commit or neither.

    Returns the list of violating pairs (empty when the property holds).
    """
    violations = []
    for __, dep_type, ti, tj in recorder.dependencies():
        if dep_type != "GC":
            continue
        fate_i = final_fate(recorder, ti)
        fate_j = final_fate(recorder, tj)
        if "active" in (fate_i, fate_j):
            continue  # not yet decided; nothing to check
        if fate_i != fate_j:
            violations.append((ti, fate_i, tj, fate_j))
    return violations


def check_abort_dependencies(recorder):
    """For every AD ``(ti, tj)``: ``ti`` aborted implies ``tj`` aborted.

    Returns violating pairs.
    """
    violations = []
    for __, dep_type, ti, tj in recorder.dependencies():
        if dep_type != "AD":
            continue
        if (
            final_fate(recorder, ti) == "aborted"
            and final_fate(recorder, tj) == "committed"
        ):
            violations.append((ti, tj))
    return violations


def check_commit_order(recorder):
    """For every CD ``(ti, tj)`` where both committed, ``tj`` did not
    commit before ``ti``.  Returns violating pairs."""
    commit_tick = {}
    for event in recorder.events:
        if event.kind is EventKind.COMMITTED:
            commit_tick[event.tid] = event.tick
    violations = []
    for __, dep_type, ti, tj in recorder.dependencies():
        if dep_type != "CD":
            continue
        if ti in commit_tick and tj in commit_tick:
            if commit_tick[tj] < commit_tick[ti]:
                violations.append((ti, tj))
    return violations


def check_compensation_shape(execution_order, total_steps):
    """Verify a saga trace has the ``t1 .. tk ct_k .. ct_1`` shape.

    ``execution_order`` is the :class:`~repro.models.saga.SagaResult`
    trace (labels ``t<i>`` forward, ``ct<i>`` backward).  Returns ``True``
    for a committed saga (all ``total_steps`` forward labels, no
    compensation) or a correctly compensated prefix.
    """
    execution_order = [
        label for label in execution_order if not label.startswith("retry-")
    ]  # forward-recovery retries do not affect the shape
    forward = [label for label in execution_order if not label.startswith("c")]
    backward = [label for label in execution_order if label.startswith("c")]
    if execution_order != forward + backward:
        return False  # interleaved forward/backward work
    k = len(forward)
    if forward != [f"t{i}" for i in range(1, k + 1)]:
        return False
    if k == total_steps:
        return backward == []
    return backward == [f"ct{i}" for i in range(k, 0, -1)]
