"""Command-line interface: a file-backed ASSET database.

Gives the library an operational surface::

    python -m repro.cli init --db ./mydb
    python -m repro.cli create --db ./mydb stock 5 paid 0
    python -m repro.cli get --db ./mydb stock
    python -m repro.cli run --db ./mydb program.asset --var price=30
    python -m repro.cli log --db ./mydb
    python -m repro.cli checkpoint --db ./mydb --truncate
    python -m repro.cli recover --db ./mydb

A database directory holds ``pages.db`` (the page file) and ``wal.log``
(the write-ahead log).  Object names are kept in a catalog object that is
always object id 1; values are JSON, matching the mini-language.
Programs are mini-language source (see :mod:`repro.lang`): atomic,
distributed, contingent, or saga units.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.common.codec import decode_json, encode_json
from repro.common.ids import ObjectId
from repro.core.manager import TransactionManager
from repro.lang import compile_source
from repro.runtime.coop import CooperativeRuntime
from repro.storage.disk import FileDiskManager
from repro.storage.log import FileLogDevice, WriteAheadLog
from repro.storage.store import StorageManager

_CATALOG_OID = ObjectId(1, name="__catalog__")


class Database:
    """A file-backed storage stack plus the name catalog."""

    def __init__(self, path):
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        disk = FileDiskManager(os.path.join(self.path, "pages.db"))
        log = WriteAheadLog(FileLogDevice(os.path.join(self.path, "wal.log")))
        self.storage = StorageManager(disk=disk, log=log)
        self.runtime = CooperativeRuntime(
            TransactionManager(storage=self.storage)
        )
        self._ensure_catalog()

    def _ensure_catalog(self):
        if not self.storage.objects.exists(_CATALOG_OID):
            def setup(tx):
                return (yield tx.create(encode_json({}), name="__catalog__"))

            result = self.runtime.run(setup)
            if result.value != _CATALOG_OID:
                raise RuntimeError(
                    f"catalog landed at {result.value!r}, expected oid 1"
                )

    def catalog(self):
        """The name → oid-value mapping."""
        return decode_json(self.storage.objects.read(_CATALOG_OID))

    def objects_by_name(self):
        """The name → :class:`ObjectId` mapping for program execution."""
        return {
            name: ObjectId(value, name=name)
            for name, value in self.catalog().items()
        }

    def create(self, name, value):
        """Create a named object holding a JSON value (one transaction)."""
        if name in self.catalog():
            raise SystemExit(f"object {name!r} already exists")

        def body(tx):
            oid = yield tx.create(encode_json(value), name=name)
            catalog = decode_json((yield tx.read(_CATALOG_OID)))
            catalog[name] = oid.value
            yield tx.write(_CATALOG_OID, encode_json(catalog))
            return oid

        result = self.runtime.run(body)
        if not result.committed:
            raise SystemExit(f"creating {name!r} failed")
        return result.value

    def get(self, name):
        """Read a named object's value (one transaction)."""
        oid = self.objects_by_name().get(name)
        if oid is None:
            raise SystemExit(f"no such object: {name!r}")

        def body(tx):
            return decode_json((yield tx.read(oid)))

        return self.runtime.run(body).value

    def close(self):
        self.storage.close()


def _parse_value(text):
    """A CLI value: JSON if it parses, else a plain string."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def cmd_init(args):
    """Create (or open) an empty database directory."""
    database = Database(args.db)
    print(f"initialized database at {database.path}")
    database.close()
    return 0


def cmd_create(args):
    """Create named JSON objects from NAME VALUE argument pairs."""
    if len(args.pairs) % 2:
        raise SystemExit("create expects NAME VALUE pairs")
    database = Database(args.db)
    try:
        for index in range(0, len(args.pairs), 2):
            name, raw = args.pairs[index], args.pairs[index + 1]
            oid = database.create(name, _parse_value(raw))
            print(f"created {name} = {raw} ({oid!r})")
    finally:
        database.close()
    return 0


def cmd_get(args):
    """Print named objects (or all of them) as `name = json`."""
    database = Database(args.db)
    try:
        for name in args.names or sorted(database.catalog()):
            if name == "__catalog__":
                continue
            print(f"{name} = {json.dumps(database.get(name))}")
    finally:
        database.close()
    return 0


def cmd_run(args):
    """Compile a mini-language program and run it against the database."""
    from repro.lang.lexer import LangSyntaxError

    try:
        with open(args.program) as handle:
            source = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read program: {exc}") from None
    variables = {}
    for item in args.var or ():
        name, __, raw = item.partition("=")
        if not raw:
            raise SystemExit(f"--var expects NAME=VALUE, got {item!r}")
        variables[name] = _parse_value(raw)
    database = Database(args.db)
    try:
        try:
            program = compile_source(source)
        except LangSyntaxError as exc:
            raise SystemExit(f"{args.program}: {exc}") from None
        result = program.execute(
            database.runtime,
            objects=database.objects_by_name(),
            variables=variables,
        )
        committed = bool(result)
        print(f"model: {program.model}")
        print(f"committed: {committed}")
        value = getattr(result, "value", None)
        if value is not None:
            print(f"value: {json.dumps(value)}")
        order = getattr(result, "execution_order", None)
        if order is not None:
            print(f"execution order: {' '.join(order) or '(none)'}")
        return 0 if committed else 1
    finally:
        database.close()


def cmd_log(args):
    """Dump every write-ahead-log record."""
    database = Database(args.db)
    try:
        records = database.storage.log.records()
        for record in records:
            print(record)
        print(f"({len(records)} records)")
    finally:
        database.close()
    return 0


def cmd_checkpoint(args):
    """Flush all pages; with --truncate, discard the quiescent log."""
    database = Database(args.db)
    try:
        database.storage.checkpoint(active=(), truncate=args.truncate)
        action = "checkpointed and truncated" if args.truncate else "checkpointed"
        print(f"{action}; log now {len(database.storage.log.records())} records")
    finally:
        database.close()
    return 0


def cmd_recover(args):
    """Run restart recovery and print the report."""
    database = Database(args.db)
    try:
        report = database.storage.recover()
        print(report)
    finally:
        database.close()
    return 0


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASSET extended-transaction database (SIGMOD 1994 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, help_text):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("--db", required=True, help="database directory")
        command.set_defaults(func=func)
        return command

    add("init", cmd_init, "create an empty database")
    create = add("create", cmd_create, "create named JSON objects")
    create.add_argument("pairs", nargs="+", metavar="NAME VALUE")
    get = add("get", cmd_get, "print objects (all when no names given)")
    get.add_argument("names", nargs="*")
    run = add("run", cmd_run, "compile and run a mini-language program")
    run.add_argument("program", help="program source file")
    run.add_argument("--var", action="append", metavar="NAME=VALUE")
    add("log", cmd_log, "dump the write-ahead log")
    checkpoint = add("checkpoint", cmd_checkpoint, "flush pages (+truncate)")
    checkpoint.add_argument("--truncate", action="store_true")
    add("recover", cmd_recover, "run restart recovery")
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
