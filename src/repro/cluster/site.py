"""One ASSET site: a full local stack behind a fabric endpoint.

A :class:`Site` owns its own storage manager (disk, buffer pool,
write-ahead log), transaction manager, and cooperative runtime, and
talks to the rest of the cluster only through
:class:`~repro.net.fabric.NetworkFabric` messages.  Remote transactions
appear locally as **proxies**: driver-managed transactions (no program,
auto-completed at begin) that stand in for a remote tid so every
cross-site primitive — ``delegate``, ``permit``, ``form_dependency`` —
reduces to the section 4.2 local primitives against the proxy.  Fate
notifications (``abort_tx`` / ``abort_proxy`` / ``commit_proxy``) keep a
proxy's termination in step with its owner over the unreliable links;
for grouped transactions the two-phase commit decision is the
authoritative synchronizer and the notifications are only accelerants.

The site is also both halves of presumed-abort two-phase commit:

* **participant** — a ``PREPARE`` request is retried from ``on_tick``
  until the named component completes, then answered through
  :meth:`~repro.core.manager.TransactionManager.try_prepare` (force-logs
  the vote, freezes the local group in PREPARED).  A prepared group can
  terminate only by the coordinator's decision; if the decision is slow
  the site inquires with ``status_req``, paced by a lease on the
  resilience :class:`~repro.resilience.deadlines.DeadlineTable`.
* **coordinator** — collects votes under a deadline, releases COMMIT
  to the participants and force-logs the
  :class:`~repro.storage.log.DecisionRecord` once the first participant
  acknowledges (witness-confirmed release: a logged commit implies a
  durable witness exists among the members), and answers in-doubt
  inquiries from its durable state: a logged commit decision says
  commit, anything else is presumed abort.

Crash and restart model the paper's failure assumptions: a crash drops
everything volatile (buffer pool, managers, proxy tables, protocol
state) plus the unflushed log tail; restart replays the surviving log,
reports prepared-but-undecided groups as in doubt, and resolves them by
querying the coordinator — or by presumed abort when the coordinator
has no record.
"""

from __future__ import annotations

from repro.chaos.faults import CrashPoint
from repro.common.errors import TransientIOError
from repro.common.events import EventKind
from repro.common.ids import Tid
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.outcomes import PrepareStatus
from repro.core.status import TransactionStatus
from repro.resilience.deadlines import DeadlineTable
from repro.runtime.coop import CooperativeRuntime
from repro.storage.log import DecisionRecord, PrepareRecord, TakeoverRecord
from repro.storage.store import StorageManager

__all__ = ["Site"]

# Message kinds understood by :meth:`Site.on_message`.  Driver RPC kinds
# reply to ``msg.src`` with ``reply_to=msg.msg_id``; protocol kinds are
# site-to-site and fire-and-forget (loss is survived, not prevented).
INITIATE = "initiate"
BEGIN = "begin"
SPAWN = "spawn"
WAIT = "wait"
RESULT = "result"
ABORT_TX = "abort_tx"
FORM_DEP = "form_dep"
FORM_REMOTE_DEP = "form_remote_dep"
DELEGATE = "delegate"
PERMIT = "permit"
PROXY_WRITE = "proxy_write"
PROXY_READ = "proxy_read"
PROXY_NOTE = "proxy_note"
ABORT_PROXY = "abort_proxy"
COMMIT_PROXY = "commit_proxy"
GC_BEGIN = "gc_begin"
PREPARE = "prepare"
VOTE = "vote"
DECISION = "decision"
ACK = "ack"
STATUS_REQ = "status_req"
STATUS_REP = "status_rep"
GC_HEARTBEAT = "gc_heartbeat"
TAKEOVER_QUERY = "takeover_query"
TAKEOVER_EVIDENCE = "takeover_evidence"
JOIN_ANNOUNCE = "join_announce"
LEAVE_BEGIN = "leave_begin"
HANDOFF_OFFER = "handoff_offer"
HANDOFF_ACCEPT = "handoff_accept"
HANDOFF_DONE = "handoff_done"

# The fault injector's contract (chaos/faults.py): injected faults must
# propagate, never be converted into ordinary RPC error replies — a site
# that swallows its own simulated crash or I/O fault keeps answering
# while "dead", and the sweep oracles lose the fault they planted.
# CrashPoint already escapes ``except Exception`` by deriving from
# BaseException; TransientIOError (fail_flush_at) does not, so the RPC
# handlers must re-raise it explicitly.
_INJECTED_FAULTS = (CrashPoint, TransientIOError)


class Site:
    """A named ASSET instance wired to the cluster fabric."""

    def __init__(
        self,
        name,
        fabric,
        clock,
        injector=None,
        prepare_ttl=24,
        vote_ttl=48,
        inquiry_interval=8,
        coordinator_lease=16,
        heartbeat_interval=4,
        takeover_grace=16,
        handoff_ttl=32,
        capacity=256,
    ):
        self.name = name
        self.fabric = fabric
        self.clock = clock
        self.injector = injector
        self.prepare_ttl = prepare_ttl
        self.vote_ttl = vote_ttl
        self.inquiry_interval = inquiry_interval
        # Failover knobs: the coordinator lease is how long a prepared
        # participant trusts a silent coordinator before counting it
        # overdue; takeover_grace paces the rank-staggered takeover
        # threshold (rank r acts after grace*(r+1) overdue ticks, so the
        # designated successor moves first and the rest are fallbacks).
        self.coordinator_lease = coordinator_lease
        self.heartbeat_interval = heartbeat_interval
        self.takeover_grace = takeover_grace
        self.handoff_ttl = handoff_ttl
        self.ticks = 0
        self.up = False
        self.crashes = 0
        # Protocol counters, cumulative across crashes (the observer's
        # view of the site, like ``crashes``); mirrored into repro.obs
        # by the cluster stats collector when a kit is attached.
        self.stats = {
            "takeovers_started": 0,
            "takeovers_decided": 0,
            "takeovers_cancelled": 0,
            "stale_epoch_rejects": 0,
            "stale_route_rejects": 0,
            "heartbeats_sent": 0,
            "handoffs_completed": 0,
            "handoffs_failed": 0,
            "handoff_txs_moved": 0,
        }
        # The durable half survives crashes; everything else is volatile
        # and rebuilt by :meth:`_boot`.
        self.storage = StorageManager(injector=injector, capacity=capacity)
        self.recovery_report = None
        # Observability (repro.obs): an ObservabilityKit installed by
        # attach_observability, or None.  Kept across crashes — the kit
        # is the *observer's* state, not the site's — and re-wired onto
        # the fresh manager by every _boot.
        self.obs = None
        self._boot()

    # -- lifecycle ---------------------------------------------------------

    def _boot(self):
        """(Re)build the volatile half of the site over ``self.storage``."""
        self.manager = TransactionManager(storage=self.storage, clock=self.clock)
        self.runtime = CooperativeRuntime(self.manager)
        self.deadlines = DeadlineTable(self.clock)
        self.manager.events.subscribe(
            self._on_local_event,
            kinds=(EventKind.ABORTED, EventKind.COMMITTED),
        )
        # Proxy bookkeeping: (owner_site, owner_tid_value) -> local Tid,
        # the reverse map, and which remote sites hold proxies for our
        # local tids (by value).
        self.proxies = {}
        self.proxy_owner = {}
        self.remote_holders = {}
        # Two-phase-commit state, all keyed by gid.
        self.pending_prepares = {}
        self.prepared = {}
        self.coordinating = {}
        self.in_doubt = {}
        self.durable_decisions = {}
        # Failover state.  ``group_epochs`` is the fencing epoch per gid
        # (volatile: durable TakeoverRecords restore it on restart);
        # every group message carries its sender's epoch and lower ones
        # are rejected, so a reappearing old coordinator cannot undo a
        # takeover.  ``settled_gids`` remembers terminal verdicts so
        # takeover polls can be answered after the live entries are gone.
        self.group_epochs = {}
        self.taking_over = {}
        self.settled_gids = {}
        self.takeover_claims = {}
        # Every gid this site ever force-logged a vote for.  Purely
        # defensive: if a voted gid is somehow neither live, in doubt,
        # nor settled, takeover evidence reports ``resolved_unknown``
        # instead of "never prepared" — presuming abort over a member
        # whose resolution was merely forgotten is the one unsafe guess.
        self.voted_gids = set()
        # Membership state: the cluster-wide membership epoch (stale
        # routed requests are rejected against it), whether this site
        # has left, and the in-flight leaver-side handoff, if any.
        self.membership_epoch = 0
        self.left = False
        self.handoff = None
        self._handoff_accepts = {}
        self.up = True
        self.fabric.register(self.name, self.on_message)
        self.fabric.mark_up(self.name)
        self._wire_obs()

    def attach_observability(self, kit):
        """Install an :class:`~repro.obs.wiring.ObservabilityKit`.

        The kit's subscriptions ride the *current* manager; a crash
        throws that manager away, so :meth:`_boot` re-wires the kit onto
        each incarnation.  Spans from before the crash stay in the kit —
        open spans of transactions the crash killed simply never close,
        which is itself the signal.
        """
        self.obs = kit
        self._wire_obs()
        return kit

    def _wire_obs(self):
        if self.obs is None:
            return
        self.obs.attach_manager(
            self.manager, trace=self.name, correlate=self._correlate
        )

    def _correlate(self, tid):
        """A transaction's logical identity: ``owner_site:owner_tid``.

        Proxies resolve to the remote transaction they stand in for, so
        all spans of one logical transaction share a correlation id.
        """
        owner = self.proxy_owner.get(tid)
        if owner is not None:
            return f"{owner[0]}:{owner[1]}"
        return f"{self.name}:{tid.value}"

    def crash(self):
        """Power cut: volatile state and the unflushed log tail are gone."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self.fabric.mark_down(self.name)
        self.deadlines.close()
        self.storage.crash()

    def restart(self):
        """Reboot: replay the log, surface in-doubt groups, resume duty."""
        if self.up:
            return self.recovery_report
        report = self.storage.recover()
        self._boot()
        self.recovery_report = report
        self.in_doubt = {
            gid: {"record": record, "next_ask": 0, "overdue": 0}
            for gid, record in sorted(report.in_doubt_votes.items())
        }
        claims = {}
        decisions = {}
        prepares = {}
        for record in self.storage.log.records(durable_only=True):
            if isinstance(record, TakeoverRecord):
                claims[record.gid] = record
            elif isinstance(record, DecisionRecord):
                decisions[record.gid] = record
            elif isinstance(record, PrepareRecord):
                prepares[record.gid] = record
        self.takeover_claims = claims
        self.voted_gids = set(prepares)
        # Durable takeover claims restore the fencing epoch: a reborn
        # taker must never act below the authority it already asserted.
        for gid, claim in claims.items():
            self.group_epochs[gid] = max(
                self.group_epochs.get(gid, 0), claim.epoch
            )
        for gid, record in sorted(decisions.items()):
            if record.verdict == "commit":
                self.durable_decisions[gid] = "commit"
            if gid in self.in_doubt:
                # A decision logged but not yet applied (crash between
                # the force-log and the local settle): finish it now.
                self._finish_in_doubt(gid, record.verdict)
            self.settled_gids[gid] = record.verdict
            # Re-announce: participants may have crashed or missed the
            # release.  Loss is fine — their own inquiry retries cover
            # it; this is just the fast path.
            for participant in record.participants:
                self._send(
                    participant,
                    DECISION,
                    {
                        "gid": gid,
                        "verdict": record.verdict,
                        "epoch": self.group_epochs.get(gid, 0),
                    },
                )
        # Reconstruct witness knowledge for every group this site voted
        # in and later resolved.  The live maps (``settled_gids``,
        # ``durable_decisions``) are volatile; only the log survives, and
        # a restarted commit witness that answered a takeover poll (or a
        # status inquiry) with "no information" would let a taker presume
        # abort over a member this site durably committed — a cross-site
        # atomicity violation.  A prepared gid absent from ``in_doubt``
        # was resolved: its members are recovery winners iff the group
        # committed, and all hold durable abort records otherwise.
        for gid, record in sorted(prepares.items()):
            if gid in self.settled_gids or gid in self.in_doubt:
                continue
            if record.prepared_tids() & report.winners:
                self.settled_gids[gid] = "commit"
            else:
                self.settled_gids[gid] = "abort"
        # A takeover claim without its decision record: the crash landed
        # between the two force-logs.  The logged verdict was derived
        # from durable evidence that only this claim could have changed,
        # so adopting it is safe — finish the takeover it started.
        for gid, claim in sorted(claims.items()):
            if gid in decisions or gid not in self.in_doubt:
                continue
            record = self.in_doubt[gid]["record"]
            self.taking_over[gid] = {
                "epoch": claim.epoch,
                "old": claim.old_coordinator,
                "sites": tuple(sorted(record.sites)),
                "tid": record.tid.value,
                "evidence": {},
                "tids": {},
                "next_poll": 0,
                "claimed": True,
            }
            self._complete_takeover(gid, claim.verdict)
        return report

    # -- small helpers -----------------------------------------------------

    def _send(self, dst, kind, payload, reply_to=None):
        return self.fabric.send(self.name, dst, kind, payload, reply_to=reply_to)

    def _reply(self, msg, payload):
        return self._send(msg.src, msg.kind + ".reply", payload, reply_to=msg.msg_id)

    def _live_td(self, tid):
        td = self.manager.table.maybe_get(tid)
        if td is None or td.status.is_terminated:
            return None
        return td

    def durable_records(self):
        """The durable log view — what a restart would recover from."""
        return self.storage.log.records(durable_only=True)

    def unsettled(self):
        """Whether protocol work is still outstanding at this site."""
        return bool(
            self.pending_prepares
            or self.prepared
            or self.in_doubt
            or self.taking_over
            or self.handoff is not None
            or any(
                entry["state"] in ("collecting", "releasing")
                for entry in self.coordinating.values()
            )
        )

    # -- fencing epochs ----------------------------------------------------

    def _epoch_of(self, gid):
        return self.group_epochs.get(gid, 0)

    def _fence(self, gid, epoch):
        """Admit or reject a group message by fencing epoch.

        Lower-than-known epochs are stale — a reappearing old
        coordinator, or a delayed pre-takeover release — and are
        dropped (counted).  Equal epochs pass (same-epoch dueling
        takers derive the same verdict from the same durable evidence),
        and higher epochs are adopted on the spot.
        """
        known = self.group_epochs.get(gid, 0)
        if epoch < known:
            self._stat("stale_epoch_rejects")
            return False
        if epoch > known:
            self.group_epochs[gid] = epoch
        return True

    def _stat(self, name, amount=1):
        self.stats[name] += amount
        if self.obs is not None:
            counter = self.obs.metrics.counter(
                f"site.protocol.{name}", site=self.name
            )
            counter.value += amount

    def _obs_mark(self, gid, kind, **fields):
        """Annotate the local member transaction's span, if any.

        Takeover and handoff transitions are group-level, not
        transaction-level, so they surface as links on the span of the
        member transaction they settle — visible in the same export as
        the 2PC marks."""
        if self.obs is None:
            return
        tick = self.ticks
        for key, span in self.obs.spans.spans.items():
            if key[0] == self.name and span.get("gid") == gid:
                span["links"].append(
                    {"type": kind, "tick": tick, "gid": gid, **fields}
                )

    def _note_coordinator_alive(self, gid, src=None):
        """Evidence of a live deciding authority for ``gid``: refresh
        the coordinator lease and reset the takeover countdown."""
        entry = self.prepared.get(gid)
        if entry is not None:
            entry["overdue"] = 0
            if src is not None:
                entry["coordinator"] = src
        doubt = self.in_doubt.get(gid)
        if doubt is not None:
            doubt["overdue"] = 0
        if entry is not None or doubt is not None:
            self.deadlines.grant_lease(("gcl", gid), self.coordinator_lease)

    def _takeover_threshold(self, sites, coordinator):
        """How many overdue ticks before *this* site takes over, or
        ``None`` if it never should.

        Successors are ranked by name among the members that are not the
        old coordinator; rank r waits ``takeover_grace * (r + 1)`` ticks
        so the designated successor acts first and the others are
        deterministic fallbacks should it die too.  A coordinator reborn
        in doubt about its own group (``coordinator == self.name``) is
        rank 0: it cannot ask itself, so it re-derives by polling."""
        if coordinator == self.name:
            return self.takeover_grace
        candidates = sorted(s for s in sites if s != coordinator)
        if self.name not in candidates:
            return None
        return self.takeover_grace * (candidates.index(self.name) + 1)

    # -- proxies -----------------------------------------------------------

    def proxy_for(self, owner_site, owner_tid_value):
        """The local proxy standing in for a remote transaction.

        Created on first use: an initiated, begun, driver-managed
        transaction (no program) that the runtime auto-completes — so it
        can immediately hold locks, receive delegations, and anchor
        dependency edges.  The owner site is told, so fate notifications
        flow back.
        """
        key = (owner_site, owner_tid_value)
        proxy = self.proxies.get(key)
        if proxy is not None:
            return proxy
        proxy = self.manager.initiate(function=None)
        self.runtime.begin(proxy)
        self.proxies[key] = proxy
        self.proxy_owner[proxy] = key
        self._send(owner_site, PROXY_NOTE, {"tid": owner_tid_value, "holder": self.name})
        return proxy

    def _on_local_event(self, event):
        """Propagate local terminations across the fabric.

        A proxy's abort is reported home; a local transaction's fate is
        pushed to every remote holder of its proxies.  All of it rides
        unreliable links — for grouped transactions the 2PC decision is
        the safety net, for ungrouped ones this is documented best-effort
        (exactly the paper's remote-dependency caveat).
        """
        if not self.up:
            return
        tid = event.tid
        aborted = event.kind is EventKind.ABORTED
        owner = self.proxy_owner.get(tid)
        if owner is not None and aborted:
            owner_site, owner_value = owner
            self._send(
                owner_site,
                ABORT_TX,
                {"tid": owner_value, "reason": f"proxy aborted at {self.name}"},
            )
        holders = self.remote_holders.get(tid.value)
        if holders:
            kind = ABORT_PROXY if aborted else COMMIT_PROXY
            for holder in sorted(holders):
                self._send(
                    holder,
                    kind,
                    {
                        "owner": self.name,
                        "tid": tid.value,
                        "reason": f"owner {'aborted' if aborted else 'committed'}",
                    },
                )

    def _abort_unless_prepared(self, tid, reason):
        """Abort ``tid`` unless it voted: prepared fate belongs to the
        coordinator's decision, never to a stray notification."""
        td = self._live_td(tid)
        if td is None or td.status is TransactionStatus.PREPARED:
            return False
        return self.manager.abort(tid, reason=reason)

    # -- message dispatch --------------------------------------------------

    def on_message(self, msg):
        if not self.up:
            return
        handler = self._HANDLERS.get(msg.kind)
        if handler is None:
            return
        if self.obs is not None:
            with self.obs.message_context(self.name, msg):
                handler(self, msg)
        else:
            handler(self, msg)

    # -- driver RPC handlers ----------------------------------------------

    def _h_initiate(self, msg):
        tid = self.manager.initiate(
            function=msg.payload.get("function"),
            args=tuple(msg.payload.get("args", ())),
        )
        self._reply(msg, {"tid": tid.value})

    def _h_begin(self, msg):
        tid = Tid(msg.payload["tid"])
        started = bool(self._live_td(tid)) and self.runtime.begin(tid)
        self._reply(msg, {"started": bool(started)})

    def _h_spawn(self, msg):
        route_epoch = msg.payload.get("route_epoch")
        if route_epoch is not None and (
            self.left or route_epoch < self.membership_epoch
        ):
            # Routed work carrying a stale membership view: reject with
            # the current epoch so the router refreshes and retries —
            # a left site must never accept new placements.
            self._stat("stale_route_rejects")
            self._reply(
                msg,
                {
                    "tid": 0,
                    "stale_route": True,
                    "epoch": self.membership_epoch,
                    "left": self.left,
                },
            )
            return
        tid = self.manager.initiate(
            function=msg.payload["function"],
            args=tuple(msg.payload.get("args", ())),
        )
        if tid:
            self.runtime.begin(tid)
        self._reply(msg, {"tid": tid.value})

    def _h_wait(self, msg):
        tid = Tid(msg.payload["tid"])
        td = self.manager.table.maybe_get(tid)
        if td is None:
            outcome = "unknown"
        else:
            verdict = self.manager.wait_outcome(tid)
            if verdict is None:
                outcome = "running"
            elif verdict:
                outcome = "committed" if td.status.is_terminated else "completed"
            else:
                outcome = "aborted"
        self._reply(msg, {"outcome": outcome})

    def _h_result(self, msg):
        tid = Tid(msg.payload["tid"])
        self._reply(msg, {"value": self.runtime.result_of(tid)})

    def _h_abort_tx(self, msg):
        tid = Tid(msg.payload["tid"])
        done = self._abort_unless_prepared(
            tid, msg.payload.get("reason", "remote abort request")
        )
        if msg.reply_to is None and msg.src == "client":
            self._reply(msg, {"aborted": bool(done)})

    def _h_form_dep(self, msg):
        dep_type = DependencyType[msg.payload["dep_type"]]
        ti = Tid(msg.payload["ti"])
        tj = Tid(msg.payload["tj"])
        try:
            self.manager.form_dependency(dep_type, ti, tj)
            ok = True
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:  # cycle / unknown tid -> report, not die
            ok = False
            self._reply(msg, {"ok": False, "error": type(exc).__name__})
            return
        self._reply(msg, {"ok": ok})

    def _h_form_remote_dep(self, msg):
        """One site's half of a cross-site dependency.

        The peer transaction is represented by its local proxy; the edge
        is the ordinary section 4.1 edge with the proxy in the remote
        party's place.  ``role`` says which side of the edge the *local*
        transaction is on.
        """
        dep_type = DependencyType[msg.payload["dep_type"]]
        local = Tid(msg.payload["local"])
        proxy = self.proxy_for(msg.payload["peer_site"], msg.payload["peer_tid"])
        try:
            if msg.payload["role"] == "dependee":
                self.manager.form_dependency(dep_type, local, proxy)
            else:
                self.manager.form_dependency(dep_type, proxy, local)
            ok, error = True, None
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            ok, error = False, type(exc).__name__
        self._reply(msg, {"ok": ok, "error": error})

    def _h_delegate(self, msg):
        """Delegate local responsibility, possibly to a remote receiver.

        A remote receiver is its proxy here: the giver-site log records
        the :class:`~repro.storage.log.DelegateRecord` against the proxy,
        so recovery attributes undo to the receiver's stand-in exactly as
        section 3's joint-checking scenario requires.
        """
        giver = Tid(msg.payload["tid"])
        oids = msg.payload.get("oids")
        receiver_site = msg.payload.get("receiver_site", self.name)
        if receiver_site == self.name:
            receiver = Tid(msg.payload["receiver_tid"])
        else:
            receiver = self.proxy_for(receiver_site, msg.payload["receiver_tid"])
        try:
            moved = self.manager.delegate(giver, receiver, oids)
            self._reply(msg, {"ok": True, "moved": sorted(moved)})
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            self._reply(msg, {"ok": False, "error": type(exc).__name__})

    def _h_permit(self, msg):
        giver = Tid(msg.payload["tid"])
        receiver_site = msg.payload.get("receiver_site", self.name)
        receiver_value = msg.payload.get("receiver_tid")
        if receiver_value is None:
            receiver = None
        elif receiver_site == self.name:
            receiver = Tid(receiver_value)
        else:
            receiver = self.proxy_for(receiver_site, receiver_value)
        try:
            self.manager.permit(
                giver,
                receiver,
                oids=msg.payload.get("oids"),
                operations=msg.payload.get("operations"),
            )
            self._reply(msg, {"ok": True})
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            self._reply(msg, {"ok": False, "error": type(exc).__name__})

    def _h_proxy_write(self, msg):
        """A remote transaction writes *here*, through its proxy.

        This is what a cross-site permit buys: the receiver's accesses at
        the giver's site run under the proxy's tid, so attribution, WAL
        images, and undo responsibility all land on the stand-in.
        """
        proxy = self.proxy_for(msg.payload["owner"], msg.payload["tid"])
        outcome = self.manager.try_write(
            proxy, msg.payload["oid"], msg.payload["value"]
        )
        self._reply(msg, {"granted": bool(outcome)})

    def _h_proxy_read(self, msg):
        proxy = self.proxy_for(msg.payload["owner"], msg.payload["tid"])
        outcome, value = self.manager.try_read(proxy, msg.payload["oid"])
        self._reply(msg, {"granted": bool(outcome), "value": value})

    # -- fate notification handlers ---------------------------------------

    def _h_proxy_note(self, msg):
        holders = self.remote_holders.setdefault(msg.payload["tid"], set())
        holders.add(msg.payload["holder"])

    def _h_abort_proxy(self, msg):
        proxy = self.proxies.get((msg.payload["owner"], msg.payload["tid"]))
        if proxy is not None:
            self._abort_unless_prepared(
                proxy, msg.payload.get("reason", "owner aborted")
            )

    def _h_commit_proxy(self, msg):
        """The remote owner committed on its own (no global group).

        Only a *standalone* proxy commits here: a proxy woven into a GC
        group belongs to two-phase commit, and committing it early would
        drag local group members past their vote.
        """
        proxy = self.proxies.get((msg.payload["owner"], msg.payload["tid"]))
        if proxy is None or self._live_td(proxy) is None:
            return
        if self.manager.dependencies.gc_group(proxy) == {proxy}:
            self.runtime.commit(proxy)

    # -- two-phase commit: coordinator ------------------------------------

    def _h_gc_begin(self, msg):
        gid = msg.payload["gid"]
        entry = self.coordinating.get(gid)
        if entry is not None:
            if entry["state"] in ("collecting", "releasing"):
                # Still collecting votes, or waiting for the witness ACK
                # that seals the commit — answer when the fate is sealed.
                entry["client"] = (msg.src, msg.msg_id)
            else:
                self._reply(msg, {"committed": entry["verdict"] == "commit"})
            return
        members = dict(msg.payload["members"])
        sites = tuple(sorted(members))
        entry = {
            "members": members,
            "votes": {},
            "acks": set(),
            "state": "collecting",
            "verdict": None,
            "client": (msg.src, msg.msg_id),
            "ttl": self.vote_ttl,
            "next_beat": self.ticks + self.heartbeat_interval,
        }
        self.coordinating[gid] = entry
        for site, tid_value in sorted(members.items()):
            if site == self.name:
                self._accept_prepare(gid, tid_value, self.name, sites=sites)
            else:
                self._send(
                    site,
                    PREPARE,
                    {
                        "gid": gid,
                        "tid": tid_value,
                        "coordinator": self.name,
                        "sites": sites,
                        "epoch": self._epoch_of(gid),
                    },
                )

    def _record_vote(self, gid, site, verdict):
        entry = self.coordinating.get(gid)
        if entry is None or entry["state"] != "collecting":
            return
        entry["votes"][site] = verdict
        if verdict == "abort":
            self._decide(gid, "abort")
        elif all(entry["votes"].get(s) == "commit" for s in entry["members"]):
            self._decide(gid, "commit")

    def _decide(self, gid, verdict):
        """Seal the global fate and release it — witnesses first.

        On commit the DECISION messages leave *before* the
        :class:`DecisionRecord` is force-logged, and the force-log (plus
        local apply and client reply, in :meth:`_seal_commit`) waits in
        state ``releasing`` for the first participant ACK.  A send is
        not a delivery: only an acknowledged DECISION proves a durable
        commit witness exists among the members, so the invariant "a
        logged commit implies a witness exists" holds even if every
        fan-out message is dropped and this site then dies permanently.
        That invariant is what makes coordinator takeover safe: a taker
        that finds no commit witness among the members may presume
        abort, because a commit this coordinator logged but never got
        witnessed cannot exist.  (A crash while ``releasing`` leaves no
        decision record; the restarted coordinator is then in doubt
        about its own group and re-derives by polling — a witness that
        did receive the commit answers for it.)  Abort decisions are
        never logged on this path (presumed abort: absence of a
        decision *is* the abort record), and a commit with no remote
        participant seals immediately — its own log is the only truth
        and no takeover can contradict it.
        """
        entry = self.coordinating[gid]
        entry["verdict"] = verdict
        epoch = self._epoch_of(gid)
        participants = sorted(s for s in entry["members"] if s != self.name)
        if verdict == "commit" and participants:
            entry["state"] = "releasing"
            entry["next_release"] = self.ticks + self.heartbeat_interval
        else:
            entry["state"] = "decided"
        for site in participants:
            self._send(
                site,
                DECISION,
                {
                    "gid": gid,
                    "verdict": verdict,
                    "tid": entry["members"][site],
                    "epoch": epoch,
                },
            )
        if not self.up or entry["state"] == "releasing":
            # Dead (a planned crash fired on one of those sends — the
            # site must not touch its storage again), or waiting for a
            # witness ACK to seal the commit.
            return
        if verdict == "commit":
            self._log_commit_decision(gid, entry, participants)
            if not self.up:
                return
        # The coordinator is its own participant: apply the decision to
        # the local member through the same path a remote one would use.
        self._apply_decision_locally(gid, verdict, entry["members"].get(self.name))
        if not self.up:
            return
        self._answer_group_client(gid, entry)

    def _log_commit_decision(self, gid, entry, participants):
        """Force-log the commit :class:`DecisionRecord` for ``gid``."""
        local_value = entry["members"].get(self.name)
        local_tid = Tid(local_value) if local_value is not None else None
        anchor = local_tid if local_tid is not None else Tid(0)
        group = ()
        if local_tid is not None:
            group = tuple(
                sorted(
                    self.manager.dependencies.gc_group(local_tid) - {local_tid},
                    key=lambda t: t.value,
                )
            )
        self.storage.log_decision(
            anchor, gid, "commit", group=group, participants=participants
        )
        self.durable_decisions[gid] = "commit"

    def _answer_group_client(self, gid, entry):
        """Reply to the console waiting on ``gc_begin``, if any."""
        client = entry.pop("client", None)
        if client is not None:
            src, msg_id = client
            self._send(
                src,
                "gc_begin.reply",
                {"gid": gid, "committed": entry["verdict"] == "commit"},
                reply_to=msg_id,
            )

    def _seal_commit(self, gid):
        """First witness ACK arrived: make the commit decision durable.

        The acknowledging participant has durably applied the commit,
        so force-logging the :class:`DecisionRecord` now preserves the
        takeover invariant — any taker polling the members will find at
        least one ``committed`` witness.  Local apply and the client
        reply were deferred with the log for the same reason: nothing
        observable may claim commit while no witness exists.
        """
        entry = self.coordinating[gid]
        entry["state"] = "decided"
        participants = sorted(s for s in entry["members"] if s != self.name)
        self._log_commit_decision(gid, entry, participants)
        if not self.up:
            return
        self._apply_decision_locally(gid, "commit", entry["members"].get(self.name))
        if not self.up:
            return
        self._answer_group_client(gid, entry)

    def _h_vote(self, msg):
        self._record_vote(msg.payload["gid"], msg.payload["site"], msg.payload["verdict"])

    def _h_ack(self, msg):
        gid = msg.payload["gid"]
        entry = self.coordinating.get(gid)
        if entry is None or entry["state"] not in ("releasing", "decided"):
            return
        entry["acks"].add(msg.payload["site"])
        if entry["state"] == "releasing":
            # First acknowledged witness: the commit may now be sealed.
            self._seal_commit(gid)
            if not self.up:
                return
        if entry["acks"] >= {s for s in entry["members"] if s != self.name}:
            entry["state"] = "done"

    def _h_status_req(self, msg):
        """Answer an in-doubt inquiry from durable truth.

        Still collecting -> pending.  Decided -> the verdict.  No state
        at all (a coordinator reborn after a crash) -> a logged commit
        decision says commit; *no information means abort* — the
        presumed-abort rule that makes coordinator amnesia safe.

        One refinement under witness-confirmed release: a site that is
        itself in doubt about ``gid`` (a reborn coordinator before its
        own re-derivation poll settles), or that voted but cannot place
        the resolution, answers *pending*, never abort — a commit
        witness it has not heard from yet may exist.
        """
        gid = msg.payload["gid"]
        self._fence(gid, msg.payload.get("epoch", 0))
        entry = self.coordinating.get(gid)
        if entry is not None and entry["state"] in ("collecting", "releasing"):
            # Releasing: the commit verdict is volatile until a witness
            # ACK seals it.  Answering "commit" here would let the asker
            # durably apply it — including *this site's own member* via
            # a self-inquiry — minting a witness the takeover derivation
            # does not know can exist.  DECISION resends carry liveness.
            verdict = "pending"
        elif entry is not None:
            verdict = entry["verdict"]
        elif gid in self.durable_decisions:
            verdict = "commit"
        elif gid in self.settled_gids:
            verdict = self.settled_gids[gid]
        elif (
            gid in self.in_doubt
            or gid in self.taking_over
            or gid in self.prepared
            or gid in self.voted_gids
        ):
            verdict = "pending"
        else:
            verdict = "abort"
        self._send(
            msg.src,
            STATUS_REP,
            {"gid": gid, "verdict": verdict, "epoch": self._epoch_of(gid)},
        )

    # -- two-phase commit: participant ------------------------------------

    def _h_prepare(self, msg):
        if not self._fence(msg.payload["gid"], msg.payload.get("epoch", 0)):
            return
        self._accept_prepare(
            msg.payload["gid"],
            msg.payload["tid"],
            msg.payload["coordinator"],
            sites=tuple(msg.payload.get("sites", ())),
        )

    def _accept_prepare(self, gid, tid_value, coordinator, sites=()):
        if gid in self.prepared or gid in self.pending_prepares:
            return  # duplicate PREPARE (at-least-once links)
        if gid in self.durable_decisions or gid in self.in_doubt:
            return
        self.pending_prepares[gid] = {
            "tid": Tid(tid_value),
            "coordinator": coordinator,
            "sites": tuple(sites),
            "ttl": self.prepare_ttl,
        }
        self._attempt_prepare(gid)

    def _attempt_prepare(self, gid):
        """Try to vote; called at accept time and retried from ticks."""
        entry = self.pending_prepares.get(gid)
        if entry is None:
            return
        if self.handoff is not None:
            # The member was gathered for migration before this PREPARE
            # arrived.  The 2PC claim wins: voting yes *and* delegating
            # it away would race the group verdict against the handoff.
            # Keep it here for group duty (a leaving site still serves
            # 2PC) and migrate only the rest.
            self.handoff["txs"].pop(entry["tid"].value, None)
        outcome = self.manager.try_prepare(
            entry["tid"],
            gid=gid,
            coordinator=entry["coordinator"],
            sites=entry.get("sites", ()),
        )
        if outcome:
            del self.pending_prepares[gid]
            self.voted_gids.add(gid)
            self.prepared[gid] = {
                "tid": entry["tid"],
                "coordinator": entry["coordinator"],
                "sites": entry.get("sites", ()),
                "overdue": 0,
            }
            # Pace decision inquiries with a lease: while it is live we
            # trust the decision is in flight, when it lapses we ask.
            # A second lease tracks the *coordinator* itself: refreshed
            # by its heartbeats; once it lapses the takeover countdown
            # starts.
            self.deadlines.grant_lease(("gc", gid), self.inquiry_interval)
            self.deadlines.grant_lease(("gcl", gid), self.coordinator_lease)
            self._cast_vote(gid, entry["coordinator"], "commit")
        elif outcome.status is PrepareStatus.ABORTED:
            del self.pending_prepares[gid]
            self._cast_vote(gid, entry["coordinator"], "abort")
        # NOT_COMPLETED / BLOCKED: keep pending, the tick loop retries.

    def _cast_vote(self, gid, coordinator, verdict):
        if coordinator == self.name:
            self._record_vote(gid, self.name, verdict)
        else:
            self._send(
                coordinator,
                VOTE,
                {
                    "gid": gid,
                    "site": self.name,
                    "verdict": verdict,
                    "epoch": self._epoch_of(gid),
                },
            )

    def _h_decision(self, msg):
        gid = msg.payload["gid"]
        epoch = msg.payload.get("epoch", 0)
        if not self._fence(gid, epoch):
            return
        # Whoever released this decision holds (at least) our epoch:
        # any takeover of ours is superseded by it.
        self.taking_over.pop(gid, None)
        verdict = msg.payload["verdict"]
        entry = self.coordinating.get(gid)
        if entry is not None and entry["state"] in ("collecting", "releasing"):
            # A usurper sealed the fate while this (superseded, fenced
            # past) coordinator was still collecting votes or waiting
            # for its witness ACK.  Adopt the verdict — the usurper's
            # log is the durable truth now — and answer the client.
            entry["state"] = "decided"
            entry["verdict"] = verdict
        self._apply_decision_locally(gid, verdict, msg.payload.get("tid"))
        if not self.up:
            return
        if entry is not None and entry["state"] == "decided":
            self._answer_group_client(gid, entry)
        self._send(
            msg.src, ACK, {"gid": gid, "site": self.name, "epoch": epoch}
        )

    def _h_status_rep(self, msg):
        gid = msg.payload["gid"]
        if not self._fence(gid, msg.payload.get("epoch", 0)):
            return
        verdict = msg.payload["verdict"]
        if verdict == "pending":
            # The coordinator answered: alive, still deciding.
            self._note_coordinator_alive(gid, src=msg.src)
            return
        self.taking_over.pop(gid, None)
        self._apply_decision_locally(gid, verdict, None)

    def _apply_decision_locally(self, gid, verdict, tid_value):
        """Finish the local member group per the global verdict.

        Handles every shape the participant can be in: still pending
        (never managed to vote), live-prepared, in doubt after a
        restart, or already settled (duplicate decision — a no-op).
        """
        self.pending_prepares.pop(gid, None)
        live = self.prepared.pop(gid, None)
        self.deadlines.forget(("gc", gid))
        self.deadlines.forget(("gcl", gid))
        self.settled_gids[gid] = verdict
        if live is not None:
            if verdict == "commit":
                self.runtime.commit(live["tid"])
            else:
                self.manager.abort(
                    live["tid"], reason=f"global group {gid} aborted"
                )
                # The vote was force-logged, so its resolution must be
                # too: an abort record still in the volatile tail would
                # leave the durable log claiming we are in doubt.
                self.storage.sync_log()
            return
        if gid in self.in_doubt:
            self._finish_in_doubt(gid, verdict)
            return
        if tid_value is not None and verdict == "abort":
            # Decision for a member we never prepared (the PREPARE was
            # lost): an abort decision still names the component.
            self._abort_unless_prepared(
                Tid(tid_value), f"global group {gid} aborted"
            )

    def _finish_in_doubt(self, gid, verdict):
        """Settle a recovered in-doubt group at the log level.

        There is no live transaction state after a restart — recovery
        already reinstalled the group's updates (they were neither
        winners nor losers) — so commit is one durable commit record and
        abort is the undo pass plus abort records, exactly what the
        recovery manager would have done with the decision in hand.
        """
        entry = self.in_doubt.pop(gid)
        record = entry["record"]
        anchor = record.tid
        others = tuple(t for t in record.prepared_tids() if t != anchor)
        if verdict == "commit":
            self.storage.log_commit(anchor, group=others)
        else:
            members = sorted(record.prepared_tids(), key=lambda t: t.value)
            self.storage.undo_many(members)
            for member in members:
                self.storage.log_abort(member)
        self.storage.sync_log()

    # -- coordinator failover ----------------------------------------------

    def _h_gc_heartbeat(self, msg):
        """The coordinator's lease renewal for one of its groups."""
        gid = msg.payload["gid"]
        if not self._fence(gid, msg.payload.get("epoch", 0)):
            return
        self._note_coordinator_alive(gid, src=msg.src)

    def _start_takeover(self, gid, old, sites, tid_value=None):
        """Claim a wedged in-doubt group at the next fencing epoch.

        The taker polls every member for durable evidence; the old
        coordinator is polled too (it may be reborn holding the
        verdict) but is the only member whose *silence* is eventually
        presumed — any other silent member might be a commit witness.
        """
        if gid in self.taking_over:
            return
        epoch = self.group_epochs.get(gid, 0) + 1
        claim = self.takeover_claims.get(gid)
        if claim is not None and claim.epoch >= epoch:
            epoch = claim.epoch
        self.group_epochs[gid] = epoch
        self._stat("takeovers_started")
        self._obs_mark(gid, "takeover_started", epoch=epoch, old=old)
        self.taking_over[gid] = {
            "epoch": epoch,
            "old": old,
            "sites": tuple(sorted(sites)),
            "tid": tid_value,
            "evidence": {},
            "tids": {},
            "next_poll": 0,
            "claimed": False,
        }
        self._poll_takeover(gid)

    def _poll_takeover(self, gid):
        entry = self.taking_over.get(gid)
        if entry is None:
            return
        entry["next_poll"] = self.ticks + self.inquiry_interval
        for site in entry["sites"]:
            if site == self.name or site in entry["evidence"]:
                continue
            self._send(
                site,
                TAKEOVER_QUERY,
                {"gid": gid, "epoch": entry["epoch"], "site": self.name},
            )
        self._maybe_conclude_takeover(gid)

    def _takeover_evidence(self, gid):
        """This site's durable verdict evidence for ``gid``:
        ``committed`` / ``aborted`` / ``collecting`` / ``prepared`` /
        ``pending_prepare`` (accepted but not yet voted) /
        ``never_prepared`` (no trace of the group at all) /
        ``resolved_unknown`` (voted, later resolved, resolution lost —
        defensive, should be unreachable after log reconstruction),
        plus the member tid if known."""
        if gid in self.durable_decisions:
            return "committed", None
        verdict = self.settled_gids.get(gid)
        if verdict is not None:
            return ("committed" if verdict == "commit" else "aborted"), None
        entry = self.coordinating.get(gid)
        if entry is not None:
            if entry["state"] in ("collecting", "releasing"):
                # Releasing is still "deciding" to the outside world:
                # the commit is volatile until a witness ACK seals it,
                # so it must not be offered as durable evidence.
                return "collecting", None
            committed = entry["verdict"] == "commit"
            return ("committed" if committed else "aborted"), None
        live = self.prepared.get(gid)
        if live is not None:
            return "prepared", live["tid"].value
        if gid in self.in_doubt:
            return "prepared", self.in_doubt[gid]["record"].tid.value
        pending = self.pending_prepares.get(gid)
        if pending is not None:
            return "pending_prepare", pending["tid"].value
        if gid in self.voted_gids:
            # The vote was force-logged but its resolution is in no live
            # or reconstructed map.  Never report "no trace" here:
            # presuming abort over a member whose resolution was merely
            # forgotten is the one unsafe guess a taker could make.
            return "resolved_unknown", None
        return "never_prepared", None

    def _h_takeover_query(self, msg):
        gid = msg.payload["gid"]
        epoch = msg.payload["epoch"]
        if not self._fence(gid, epoch):
            # Teach the stale taker the newer epoch so it stands down.
            self._send(
                msg.src,
                TAKEOVER_EVIDENCE,
                {
                    "gid": gid,
                    "epoch": self._epoch_of(gid),
                    "site": self.name,
                    "state": "superseded",
                },
            )
            return
        mine = self.taking_over.get(gid)
        if mine is not None and mine["epoch"] < epoch:
            # A higher-epoch taker owns this group; abandon our claim.
            self.taking_over.pop(gid, None)
        # The querying taker is the acting authority now: inquiries go
        # to it, and its poll counts as a heartbeat.
        self._note_coordinator_alive(gid, src=msg.src)
        state, tid_value = self._takeover_evidence(gid)
        self._send(
            msg.src,
            TAKEOVER_EVIDENCE,
            {
                "gid": gid,
                "epoch": self._epoch_of(gid),
                "site": self.name,
                "state": state,
                "tid": tid_value,
            },
        )

    def _h_takeover_evidence(self, msg):
        gid = msg.payload["gid"]
        entry = self.taking_over.get(gid)
        if entry is None:
            return
        epoch = msg.payload["epoch"]
        state = msg.payload["state"]
        if epoch > entry["epoch"] or state == "superseded":
            self.group_epochs[gid] = max(self.group_epochs.get(gid, 0), epoch)
            self.taking_over.pop(gid, None)
            self._stat("takeovers_cancelled")
            return
        site = msg.payload["site"]
        if state == "collecting":
            if site == entry["old"]:
                # The old coordinator answered: alive and still
                # deciding.  Cancel the coup, fall back to inquiries.
                self._cancel_takeover(gid)
                return
            state = "prepared"  # a rival same-epoch taker mid-poll
        entry["evidence"][site] = state
        if msg.payload.get("tid") is not None:
            entry["tids"][site] = msg.payload["tid"]
        if state in ("committed", "aborted"):
            # Someone already holds a durable outcome for this group —
            # adopt it now instead of waiting out members that may never
            # answer (a crashed rival taker whose decision this is, or a
            # reborn old coordinator that settled before dying again).
            self._complete_takeover(
                gid, "commit" if state == "committed" else "abort"
            )
            return
        self._maybe_conclude_takeover(gid)

    def _cancel_takeover(self, gid):
        if self.taking_over.pop(gid, None) is not None:
            self._stat("takeovers_cancelled")
        self._note_coordinator_alive(gid)

    def _maybe_conclude_takeover(self, gid):
        """Derive the verdict once every pollable member has answered.

        Evidence from *all* members except the old coordinator is
        required — a silent member could be a commit witness, and
        presuming abort over it would split the group.  Only the old
        coordinator's silence is presumed (abort), which the
        witness-confirmed release in :meth:`_decide` makes safe: a
        commit the old coordinator logged without any member holding it
        cannot exist.  Any commit evidence — including a reborn old
        coordinator's durable decision — forces commit.  Abort is
        presumed only over states that provably never held a commit
        (``prepared`` / ``pending_prepare`` / ``never_prepared`` /
        ``aborted``); a ``resolved_unknown`` answer blocks the
        conclusion rather than risk a dual durable verdict.
        """
        entry = self.taking_over.get(gid)
        if entry is None:
            return
        needed = [
            s
            for s in entry["sites"]
            if s not in (self.name, entry["old"])
        ]
        if any(s not in entry["evidence"] for s in needed):
            return
        states = set(entry["evidence"].values())
        own_state, __ = self._takeover_evidence(gid)
        states.add(own_state)
        if "committed" in states:
            self._complete_takeover(gid, "commit")
            return
        if "resolved_unknown" in states:
            # Some member voted and later resolved but lost track of
            # which way — a recovery defect surfaced loudly.  Concluding
            # either verdict would be a guess; leave the group open (the
            # quiescence oracle will flag it) instead of gambling.
            return
        self._complete_takeover(gid, "abort")

    def _complete_takeover(self, gid, verdict):
        """Force-log the claim + decision, settle locally, release."""
        entry = self.taking_over.pop(gid)
        epoch = entry["epoch"]
        self.group_epochs[gid] = max(self.group_epochs.get(gid, 0), epoch)
        if not entry.get("claimed"):
            votes = tuple(
                f"{site}:{state}"
                for site, state in sorted(entry["evidence"].items())
            )
            self.storage.log_takeover(
                gid, epoch, entry["old"], verdict, votes=votes
            )
        if not self.up:
            return
        tid_value = entry.get("tid")
        anchor = Tid(tid_value) if tid_value else Tid(0)
        participants = tuple(
            s for s in sorted(entry["sites"]) if s != self.name
        )
        # Unlike the primary path, *both* verdicts are force-logged:
        # the decision record is the audit trail the no-dual-decision
        # oracle (and any later taker) reads.
        self.storage.log_decision(
            anchor, gid, verdict, participants=participants
        )
        if not self.up:
            return
        if verdict == "commit":
            self.durable_decisions[gid] = "commit"
        self._stat("takeovers_decided")
        self._obs_mark(gid, "takeover_decided", epoch=epoch, verdict=verdict)
        members = {site: entry["tids"].get(site) for site in entry["sites"]}
        members[self.name] = tid_value
        self.coordinating[gid] = {
            "members": members,
            "votes": {},
            "acks": set(),
            "state": "decided",
            "verdict": verdict,
            "ttl": 0,
        }
        self._apply_decision_locally(gid, verdict, tid_value)
        if not self.up:
            return
        for site in participants:
            self._send(
                site,
                DECISION,
                {
                    "gid": gid,
                    "verdict": verdict,
                    "tid": entry["tids"].get(site),
                    "epoch": epoch,
                },
            )

    # -- membership churn: join, leave, object-range handoff ---------------

    def _h_join_announce(self, msg):
        """A new site joined: adopt the bumped membership epoch."""
        epoch = msg.payload["epoch"]
        self.membership_epoch = max(self.membership_epoch, epoch)
        self._reply(msg, {"ok": True, "epoch": self.membership_epoch})

    def _h_leave_begin(self, msg):
        """Console request: leave the cluster, handing uncommitted state
        to ``successor`` via delegation (the ASSET §4 primitive — the
        migration *is* a delegation of responsibility).

        Live, unprepared local transactions are offered to the
        successor; 2PC members stay behind (their fate belongs to their
        coordinator) and this site keeps serving protocol duty for
        them.  The console reply is deferred until the handoff settles.
        """
        epoch = msg.payload["epoch"]
        successor = msg.payload["successor"]
        self.membership_epoch = max(self.membership_epoch, epoch)
        if self.handoff is not None or self.left:
            self._reply(msg, {"ok": False, "error": "already leaving"})
            return
        in_twophase = {
            entry["tid"]
            for entry in self.pending_prepares.values()
        } | {entry["tid"] for entry in self.prepared.values()}
        txs = {}
        for td in self.manager.table:
            tid = td.tid
            if td.status.is_terminated or td.status is TransactionStatus.PREPARED:
                continue
            if tid in in_twophase or tid in self.proxy_owner:
                continue
            txs[tid.value] = sorted(
                {
                    record.oid.value
                    for record in self.storage.log.updates_by(tid)
                }
            )
        if not txs:
            self.left = True
            self._stat("handoffs_completed")
            self._reply(msg, {"ok": True, "moved": 0, "adopted": {}})
            return
        self.handoff = {
            "successor": successor,
            "epoch": epoch,
            "txs": txs,
            "client": (msg.src, msg.msg_id),
            "map": None,
            "ttl": self.handoff_ttl,
            "next_send": 0,
        }
        self._send_handoff_offer()

    def _send_handoff_offer(self):
        handoff = self.handoff
        handoff["next_send"] = self.ticks + self.inquiry_interval
        self._send(
            handoff["successor"],
            HANDOFF_OFFER,
            {
                "epoch": handoff["epoch"],
                "txs": sorted(handoff["txs"].items()),
            },
        )

    def _h_handoff_offer(self, msg):
        """Successor side: adopt one receiver per offered transaction.

        Idempotent per (leaver, epoch): the leaver retries the offer
        until accepted, and a duplicate must map to the *same*
        receivers, not a fresh batch.
        """
        epoch = msg.payload["epoch"]
        if epoch < self.membership_epoch and (msg.src, epoch) not in self._handoff_accepts:
            return  # stale offer from a superseded churn round
        self.membership_epoch = max(self.membership_epoch, epoch)
        key = (msg.src, epoch)
        adopted = self._handoff_accepts.get(key)
        if adopted is None:
            adopted = {}
            for tid_value, __ in msg.payload["txs"]:
                receiver = self.manager.initiate(function=None)
                self.runtime.begin(receiver)
                adopted[tid_value] = receiver.value
            self._handoff_accepts[key] = adopted
        self._send(
            msg.src,
            HANDOFF_ACCEPT,
            {"epoch": epoch, "map": sorted(adopted.items())},
        )

    def _h_handoff_accept(self, msg):
        """Leaver side: delegate every offered transaction's state to
        its adopted receiver (through the receiver's local proxy), then
        finish the givers and report back to the console."""
        handoff = self.handoff
        if handoff is None or msg.payload["epoch"] != handoff["epoch"]:
            return
        if msg.src != handoff["successor"]:
            return
        moved = 0
        mapping = dict(msg.payload["map"])
        for tid_value in sorted(handoff["txs"]):
            receiver_value = mapping.get(tid_value)
            if receiver_value is None:
                continue
            giver = Tid(tid_value)
            if self._live_td(giver) is None:
                continue
            td = self.manager.table.maybe_get(giver)
            if td is not None and td.status is TransactionStatus.PREPARED:
                continue  # claimed by 2PC after the gather; it stays
            proxy = self.proxy_for(handoff["successor"], receiver_value)
            try:
                self.manager.delegate(giver, proxy, None)
            except _INJECTED_FAULTS:
                raise
            except Exception:
                self.manager.abort(giver, reason="handoff delegation failed")
                continue
            moved += 1
            td = self.manager.table.maybe_get(giver)
            if td is not None and td.status is TransactionStatus.COMPLETED:
                self.runtime.commit(giver)
            else:
                self.manager.abort(
                    giver, reason=f"handed off to {handoff['successor']}"
                )
        if not self.up:
            return
        self.handoff = None
        self.left = True
        self._stat("handoffs_completed")
        self._stat("handoff_txs_moved", moved)
        self._obs_mark(0, "handoff_done", moved=moved)
        self._send(
            handoff["successor"],
            HANDOFF_DONE,
            {"epoch": handoff["epoch"], "moved": moved},
        )
        src, msg_id = handoff["client"]
        self._send(
            src,
            "leave_begin.reply",
            {"ok": True, "moved": moved, "adopted": mapping},
            reply_to=msg_id,
        )

    def _h_handoff_done(self, msg):
        """Successor side: the leaver finished delegating.  Nothing to
        unwind — the receivers simply hold whatever arrived."""
        self.membership_epoch = max(
            self.membership_epoch, msg.payload["epoch"]
        )

    def _abandon_handoff(self):
        """The successor never answered within the handoff TTL: abort
        the gathered transactions locally (a clean, consistent abort)
        and report failure rather than wedging the leave forever."""
        handoff = self.handoff
        self.handoff = None
        self.left = True
        self._stat("handoffs_failed")
        for tid_value in sorted(handoff["txs"]):
            giver = Tid(tid_value)
            if self._live_td(giver) is not None:
                self.manager.abort(giver, reason="handoff successor lost")
        src, msg_id = handoff["client"]
        self._send(
            src,
            "leave_begin.reply",
            {"ok": False, "moved": 0, "adopted": {}},
            reply_to=msg_id,
        )

    # -- the tick loop -----------------------------------------------------

    def on_tick(self):
        """One deterministic slice of background duty per pump round."""
        if not self.up:
            return
        self.ticks += 1
        # Advance local transaction programs one cooperative step.
        self.runtime.round()
        # Retry pending votes; give up (vote abort) when the component
        # cannot complete within the prepare deadline.
        for gid in sorted(self.pending_prepares):
            entry = self.pending_prepares.get(gid)
            if entry is None:
                continue
            entry["ttl"] -= 1
            self._attempt_prepare(gid)
            entry = self.pending_prepares.get(gid)
            if entry is not None and entry["ttl"] <= 0:
                del self.pending_prepares[gid]
                self._cast_vote(gid, entry["coordinator"], "abort")
        # Coordinator vote deadlines: silence is an abort vote.  While
        # collecting, heartbeat the members so their coordinator leases
        # stay live (a slow vote must not look like a dead coordinator).
        for gid in sorted(self.coordinating):
            entry = self.coordinating[gid]
            if entry["state"] == "releasing":
                # Un-witnessed commit: keep re-releasing to members that
                # have not acknowledged (DECISION is idempotent and
                # always ACKed) until the first ACK seals it.
                if self.ticks >= entry.get("next_release", 0):
                    entry["next_release"] = (
                        self.ticks + self.heartbeat_interval
                    )
                    epoch = self._epoch_of(gid)
                    for site in sorted(entry["members"]):
                        if site == self.name or site in entry["acks"]:
                            continue
                        self._send(
                            site,
                            DECISION,
                            {
                                "gid": gid,
                                "verdict": "commit",
                                "tid": entry["members"][site],
                                "epoch": epoch,
                            },
                        )
                continue
            if entry["state"] != "collecting":
                continue
            entry["ttl"] -= 1
            if entry["ttl"] <= 0:
                self._decide(gid, "abort")
                continue
            if self.ticks >= entry.get("next_beat", 0):
                entry["next_beat"] = self.ticks + self.heartbeat_interval
                epoch = self._epoch_of(gid)
                for site in sorted(entry["members"]):
                    if site == self.name:
                        continue
                    self._stat("heartbeats_sent")
                    self._send(
                        site, GC_HEARTBEAT, {"gid": gid, "epoch": epoch}
                    )
        # Prepared but no decision: when the inquiry lease lapses, ask;
        # when the *coordinator* lease lapses, count it overdue and —
        # past this site's rank-staggered threshold — take over.
        for gid in sorted(self.prepared):
            entry = self.prepared.get(gid)
            if entry is None or gid in self.taking_over:
                continue
            key = ("gc", gid)
            if not self.deadlines.lease_live(key):
                self._send(
                    entry["coordinator"], STATUS_REQ,
                    {
                        "gid": gid,
                        "site": self.name,
                        "epoch": self._epoch_of(gid),
                    },
                )
                self.deadlines.grant_lease(key, self.inquiry_interval)
            if entry["coordinator"] == self.name:
                continue  # our own liveness is not in doubt
            if self.deadlines.lease_live(("gcl", gid)):
                entry["overdue"] = 0
                continue
            entry["overdue"] += 1
            threshold = self._takeover_threshold(
                entry.get("sites", ()), entry["coordinator"]
            )
            if threshold is not None and entry["overdue"] >= threshold:
                self._start_takeover(
                    gid,
                    entry["coordinator"],
                    entry.get("sites", ()),
                    tid_value=entry["tid"].value,
                )
        # In-doubt after restart: periodic inquiry until resolved, with
        # the same overdue countdown (the coordinator may be long gone).
        for gid in sorted(self.in_doubt):
            entry = self.in_doubt.get(gid)
            if entry is None or gid in self.taking_over:
                continue
            record = entry["record"]
            if self.ticks >= entry["next_ask"]:
                entry["next_ask"] = self.ticks + self.inquiry_interval
                if record.coordinator != self.name:
                    self._send(
                        record.coordinator, STATUS_REQ,
                        {
                            "gid": gid,
                            "site": self.name,
                            "epoch": self._epoch_of(gid),
                        },
                    )
            if self.deadlines.lease_live(("gcl", gid)):
                entry["overdue"] = 0
                continue
            entry["overdue"] = entry.get("overdue", 0) + 1
            threshold = self._takeover_threshold(
                record.sites, record.coordinator
            )
            if threshold is not None and entry["overdue"] >= threshold:
                self._start_takeover(
                    gid,
                    record.coordinator,
                    record.sites,
                    tid_value=record.tid.value,
                )
        # Takeover polls: re-ask members that have not answered yet.
        for gid in sorted(self.taking_over):
            entry = self.taking_over.get(gid)
            if entry is not None and self.ticks >= entry["next_poll"]:
                self._poll_takeover(gid)
        # Leaver-side handoff: retry the offer; give up past the TTL.
        if self.handoff is not None:
            self.handoff["ttl"] -= 1
            if self.handoff["ttl"] <= 0:
                self._abandon_handoff()
            elif self.ticks >= self.handoff["next_send"]:
                self._send_handoff_offer()

    _HANDLERS = {
        INITIATE: _h_initiate,
        BEGIN: _h_begin,
        SPAWN: _h_spawn,
        WAIT: _h_wait,
        RESULT: _h_result,
        ABORT_TX: _h_abort_tx,
        FORM_DEP: _h_form_dep,
        FORM_REMOTE_DEP: _h_form_remote_dep,
        DELEGATE: _h_delegate,
        PERMIT: _h_permit,
        PROXY_WRITE: _h_proxy_write,
        PROXY_READ: _h_proxy_read,
        PROXY_NOTE: _h_proxy_note,
        ABORT_PROXY: _h_abort_proxy,
        COMMIT_PROXY: _h_commit_proxy,
        GC_BEGIN: _h_gc_begin,
        PREPARE: _h_prepare,
        VOTE: _h_vote,
        DECISION: _h_decision,
        ACK: _h_ack,
        STATUS_REQ: _h_status_req,
        STATUS_REP: _h_status_rep,
        GC_HEARTBEAT: _h_gc_heartbeat,
        TAKEOVER_QUERY: _h_takeover_query,
        TAKEOVER_EVIDENCE: _h_takeover_evidence,
        JOIN_ANNOUNCE: _h_join_announce,
        LEAVE_BEGIN: _h_leave_begin,
        HANDOFF_OFFER: _h_handoff_offer,
        HANDOFF_ACCEPT: _h_handoff_accept,
        HANDOFF_DONE: _h_handoff_done,
    }
