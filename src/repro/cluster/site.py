"""One ASSET site: a full local stack behind a fabric endpoint.

A :class:`Site` owns its own storage manager (disk, buffer pool,
write-ahead log), transaction manager, and cooperative runtime, and
talks to the rest of the cluster only through
:class:`~repro.net.fabric.NetworkFabric` messages.  Remote transactions
appear locally as **proxies**: driver-managed transactions (no program,
auto-completed at begin) that stand in for a remote tid so every
cross-site primitive — ``delegate``, ``permit``, ``form_dependency`` —
reduces to the section 4.2 local primitives against the proxy.  Fate
notifications (``abort_tx`` / ``abort_proxy`` / ``commit_proxy``) keep a
proxy's termination in step with its owner over the unreliable links;
for grouped transactions the two-phase commit decision is the
authoritative synchronizer and the notifications are only accelerants.

The site is also both halves of presumed-abort two-phase commit:

* **participant** — a ``PREPARE`` request is retried from ``on_tick``
  until the named component completes, then answered through
  :meth:`~repro.core.manager.TransactionManager.try_prepare` (force-logs
  the vote, freezes the local group in PREPARED).  A prepared group can
  terminate only by the coordinator's decision; if the decision is slow
  the site inquires with ``status_req``, paced by a lease on the
  resilience :class:`~repro.resilience.deadlines.DeadlineTable`.
* **coordinator** — collects votes under a deadline, force-logs a
  :class:`~repro.storage.log.DecisionRecord` *before* releasing COMMIT
  (that record is the global commit point), and answers in-doubt
  inquiries from its durable state: a logged commit decision says
  commit, anything else is presumed abort.

Crash and restart model the paper's failure assumptions: a crash drops
everything volatile (buffer pool, managers, proxy tables, protocol
state) plus the unflushed log tail; restart replays the surviving log,
reports prepared-but-undecided groups as in doubt, and resolves them by
querying the coordinator — or by presumed abort when the coordinator
has no record.
"""

from __future__ import annotations

from repro.chaos.faults import CrashPoint
from repro.common.errors import TransientIOError
from repro.common.events import EventKind
from repro.common.ids import Tid
from repro.core.dependency import DependencyType
from repro.core.manager import TransactionManager
from repro.core.outcomes import PrepareStatus
from repro.core.status import TransactionStatus
from repro.resilience.deadlines import DeadlineTable
from repro.runtime.coop import CooperativeRuntime
from repro.storage.log import DecisionRecord
from repro.storage.store import StorageManager

__all__ = ["Site"]

# Message kinds understood by :meth:`Site.on_message`.  Driver RPC kinds
# reply to ``msg.src`` with ``reply_to=msg.msg_id``; protocol kinds are
# site-to-site and fire-and-forget (loss is survived, not prevented).
INITIATE = "initiate"
BEGIN = "begin"
SPAWN = "spawn"
WAIT = "wait"
RESULT = "result"
ABORT_TX = "abort_tx"
FORM_DEP = "form_dep"
FORM_REMOTE_DEP = "form_remote_dep"
DELEGATE = "delegate"
PERMIT = "permit"
PROXY_WRITE = "proxy_write"
PROXY_READ = "proxy_read"
PROXY_NOTE = "proxy_note"
ABORT_PROXY = "abort_proxy"
COMMIT_PROXY = "commit_proxy"
GC_BEGIN = "gc_begin"
PREPARE = "prepare"
VOTE = "vote"
DECISION = "decision"
ACK = "ack"
STATUS_REQ = "status_req"
STATUS_REP = "status_rep"

# The fault injector's contract (chaos/faults.py): injected faults must
# propagate, never be converted into ordinary RPC error replies — a site
# that swallows its own simulated crash or I/O fault keeps answering
# while "dead", and the sweep oracles lose the fault they planted.
# CrashPoint already escapes ``except Exception`` by deriving from
# BaseException; TransientIOError (fail_flush_at) does not, so the RPC
# handlers must re-raise it explicitly.
_INJECTED_FAULTS = (CrashPoint, TransientIOError)


class Site:
    """A named ASSET instance wired to the cluster fabric."""

    def __init__(
        self,
        name,
        fabric,
        clock,
        injector=None,
        prepare_ttl=24,
        vote_ttl=48,
        inquiry_interval=8,
        capacity=256,
    ):
        self.name = name
        self.fabric = fabric
        self.clock = clock
        self.injector = injector
        self.prepare_ttl = prepare_ttl
        self.vote_ttl = vote_ttl
        self.inquiry_interval = inquiry_interval
        self.ticks = 0
        self.up = False
        self.crashes = 0
        # The durable half survives crashes; everything else is volatile
        # and rebuilt by :meth:`_boot`.
        self.storage = StorageManager(injector=injector, capacity=capacity)
        self.recovery_report = None
        # Observability (repro.obs): an ObservabilityKit installed by
        # attach_observability, or None.  Kept across crashes — the kit
        # is the *observer's* state, not the site's — and re-wired onto
        # the fresh manager by every _boot.
        self.obs = None
        self._boot()

    # -- lifecycle ---------------------------------------------------------

    def _boot(self):
        """(Re)build the volatile half of the site over ``self.storage``."""
        self.manager = TransactionManager(storage=self.storage, clock=self.clock)
        self.runtime = CooperativeRuntime(self.manager)
        self.deadlines = DeadlineTable(self.clock)
        self.manager.events.subscribe(
            self._on_local_event,
            kinds=(EventKind.ABORTED, EventKind.COMMITTED),
        )
        # Proxy bookkeeping: (owner_site, owner_tid_value) -> local Tid,
        # the reverse map, and which remote sites hold proxies for our
        # local tids (by value).
        self.proxies = {}
        self.proxy_owner = {}
        self.remote_holders = {}
        # Two-phase-commit state, all keyed by gid.
        self.pending_prepares = {}
        self.prepared = {}
        self.coordinating = {}
        self.in_doubt = {}
        self.durable_decisions = {}
        self.up = True
        self.fabric.register(self.name, self.on_message)
        self.fabric.mark_up(self.name)
        self._wire_obs()

    def attach_observability(self, kit):
        """Install an :class:`~repro.obs.wiring.ObservabilityKit`.

        The kit's subscriptions ride the *current* manager; a crash
        throws that manager away, so :meth:`_boot` re-wires the kit onto
        each incarnation.  Spans from before the crash stay in the kit —
        open spans of transactions the crash killed simply never close,
        which is itself the signal.
        """
        self.obs = kit
        self._wire_obs()
        return kit

    def _wire_obs(self):
        if self.obs is None:
            return
        self.obs.attach_manager(
            self.manager, trace=self.name, correlate=self._correlate
        )

    def _correlate(self, tid):
        """A transaction's logical identity: ``owner_site:owner_tid``.

        Proxies resolve to the remote transaction they stand in for, so
        all spans of one logical transaction share a correlation id.
        """
        owner = self.proxy_owner.get(tid)
        if owner is not None:
            return f"{owner[0]}:{owner[1]}"
        return f"{self.name}:{tid.value}"

    def crash(self):
        """Power cut: volatile state and the unflushed log tail are gone."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self.fabric.mark_down(self.name)
        self.deadlines.close()
        self.storage.crash()

    def restart(self):
        """Reboot: replay the log, surface in-doubt groups, resume duty."""
        if self.up:
            return self.recovery_report
        report = self.storage.recover()
        self._boot()
        self.recovery_report = report
        self.in_doubt = {
            gid: {"record": record, "next_ask": 0}
            for gid, record in sorted(report.in_doubt_votes.items())
        }
        for record in self.storage.log.records(durable_only=True):
            if isinstance(record, DecisionRecord) and record.verdict == "commit":
                self.durable_decisions[record.gid] = "commit"
                # Re-announce: participants may have crashed or missed
                # the COMMIT release.  Loss is fine — their own inquiry
                # retries cover it; this is just the fast path.
                for participant in record.participants:
                    self._send(
                        participant,
                        DECISION,
                        {"gid": record.gid, "verdict": "commit"},
                    )
        return report

    # -- small helpers -----------------------------------------------------

    def _send(self, dst, kind, payload, reply_to=None):
        return self.fabric.send(self.name, dst, kind, payload, reply_to=reply_to)

    def _reply(self, msg, payload):
        return self._send(msg.src, msg.kind + ".reply", payload, reply_to=msg.msg_id)

    def _live_td(self, tid):
        td = self.manager.table.maybe_get(tid)
        if td is None or td.status.is_terminated:
            return None
        return td

    def durable_records(self):
        """The durable log view — what a restart would recover from."""
        return self.storage.log.records(durable_only=True)

    def unsettled(self):
        """Whether protocol work is still outstanding at this site."""
        return bool(
            self.pending_prepares
            or self.prepared
            or self.in_doubt
            or any(
                entry["state"] == "collecting"
                for entry in self.coordinating.values()
            )
        )

    # -- proxies -----------------------------------------------------------

    def proxy_for(self, owner_site, owner_tid_value):
        """The local proxy standing in for a remote transaction.

        Created on first use: an initiated, begun, driver-managed
        transaction (no program) that the runtime auto-completes — so it
        can immediately hold locks, receive delegations, and anchor
        dependency edges.  The owner site is told, so fate notifications
        flow back.
        """
        key = (owner_site, owner_tid_value)
        proxy = self.proxies.get(key)
        if proxy is not None:
            return proxy
        proxy = self.manager.initiate(function=None)
        self.runtime.begin(proxy)
        self.proxies[key] = proxy
        self.proxy_owner[proxy] = key
        self._send(owner_site, PROXY_NOTE, {"tid": owner_tid_value, "holder": self.name})
        return proxy

    def _on_local_event(self, event):
        """Propagate local terminations across the fabric.

        A proxy's abort is reported home; a local transaction's fate is
        pushed to every remote holder of its proxies.  All of it rides
        unreliable links — for grouped transactions the 2PC decision is
        the safety net, for ungrouped ones this is documented best-effort
        (exactly the paper's remote-dependency caveat).
        """
        if not self.up:
            return
        tid = event.tid
        aborted = event.kind is EventKind.ABORTED
        owner = self.proxy_owner.get(tid)
        if owner is not None and aborted:
            owner_site, owner_value = owner
            self._send(
                owner_site,
                ABORT_TX,
                {"tid": owner_value, "reason": f"proxy aborted at {self.name}"},
            )
        holders = self.remote_holders.get(tid.value)
        if holders:
            kind = ABORT_PROXY if aborted else COMMIT_PROXY
            for holder in sorted(holders):
                self._send(
                    holder,
                    kind,
                    {
                        "owner": self.name,
                        "tid": tid.value,
                        "reason": f"owner {'aborted' if aborted else 'committed'}",
                    },
                )

    def _abort_unless_prepared(self, tid, reason):
        """Abort ``tid`` unless it voted: prepared fate belongs to the
        coordinator's decision, never to a stray notification."""
        td = self._live_td(tid)
        if td is None or td.status is TransactionStatus.PREPARED:
            return False
        return self.manager.abort(tid, reason=reason)

    # -- message dispatch --------------------------------------------------

    def on_message(self, msg):
        if not self.up:
            return
        handler = self._HANDLERS.get(msg.kind)
        if handler is None:
            return
        if self.obs is not None:
            with self.obs.message_context(self.name, msg):
                handler(self, msg)
        else:
            handler(self, msg)

    # -- driver RPC handlers ----------------------------------------------

    def _h_initiate(self, msg):
        tid = self.manager.initiate(
            function=msg.payload.get("function"),
            args=tuple(msg.payload.get("args", ())),
        )
        self._reply(msg, {"tid": tid.value})

    def _h_begin(self, msg):
        tid = Tid(msg.payload["tid"])
        started = bool(self._live_td(tid)) and self.runtime.begin(tid)
        self._reply(msg, {"started": bool(started)})

    def _h_spawn(self, msg):
        tid = self.manager.initiate(
            function=msg.payload["function"],
            args=tuple(msg.payload.get("args", ())),
        )
        if tid:
            self.runtime.begin(tid)
        self._reply(msg, {"tid": tid.value})

    def _h_wait(self, msg):
        tid = Tid(msg.payload["tid"])
        td = self.manager.table.maybe_get(tid)
        if td is None:
            outcome = "unknown"
        else:
            verdict = self.manager.wait_outcome(tid)
            if verdict is None:
                outcome = "running"
            elif verdict:
                outcome = "committed" if td.status.is_terminated else "completed"
            else:
                outcome = "aborted"
        self._reply(msg, {"outcome": outcome})

    def _h_result(self, msg):
        tid = Tid(msg.payload["tid"])
        self._reply(msg, {"value": self.runtime.result_of(tid)})

    def _h_abort_tx(self, msg):
        tid = Tid(msg.payload["tid"])
        done = self._abort_unless_prepared(
            tid, msg.payload.get("reason", "remote abort request")
        )
        if msg.reply_to is None and msg.src == "client":
            self._reply(msg, {"aborted": bool(done)})

    def _h_form_dep(self, msg):
        dep_type = DependencyType[msg.payload["dep_type"]]
        ti = Tid(msg.payload["ti"])
        tj = Tid(msg.payload["tj"])
        try:
            self.manager.form_dependency(dep_type, ti, tj)
            ok = True
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:  # cycle / unknown tid -> report, not die
            ok = False
            self._reply(msg, {"ok": False, "error": type(exc).__name__})
            return
        self._reply(msg, {"ok": ok})

    def _h_form_remote_dep(self, msg):
        """One site's half of a cross-site dependency.

        The peer transaction is represented by its local proxy; the edge
        is the ordinary section 4.1 edge with the proxy in the remote
        party's place.  ``role`` says which side of the edge the *local*
        transaction is on.
        """
        dep_type = DependencyType[msg.payload["dep_type"]]
        local = Tid(msg.payload["local"])
        proxy = self.proxy_for(msg.payload["peer_site"], msg.payload["peer_tid"])
        try:
            if msg.payload["role"] == "dependee":
                self.manager.form_dependency(dep_type, local, proxy)
            else:
                self.manager.form_dependency(dep_type, proxy, local)
            ok, error = True, None
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            ok, error = False, type(exc).__name__
        self._reply(msg, {"ok": ok, "error": error})

    def _h_delegate(self, msg):
        """Delegate local responsibility, possibly to a remote receiver.

        A remote receiver is its proxy here: the giver-site log records
        the :class:`~repro.storage.log.DelegateRecord` against the proxy,
        so recovery attributes undo to the receiver's stand-in exactly as
        section 3's joint-checking scenario requires.
        """
        giver = Tid(msg.payload["tid"])
        oids = msg.payload.get("oids")
        receiver_site = msg.payload.get("receiver_site", self.name)
        if receiver_site == self.name:
            receiver = Tid(msg.payload["receiver_tid"])
        else:
            receiver = self.proxy_for(receiver_site, msg.payload["receiver_tid"])
        try:
            moved = self.manager.delegate(giver, receiver, oids)
            self._reply(msg, {"ok": True, "moved": sorted(moved)})
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            self._reply(msg, {"ok": False, "error": type(exc).__name__})

    def _h_permit(self, msg):
        giver = Tid(msg.payload["tid"])
        receiver_site = msg.payload.get("receiver_site", self.name)
        receiver_value = msg.payload.get("receiver_tid")
        if receiver_value is None:
            receiver = None
        elif receiver_site == self.name:
            receiver = Tid(receiver_value)
        else:
            receiver = self.proxy_for(receiver_site, receiver_value)
        try:
            self.manager.permit(
                giver,
                receiver,
                oids=msg.payload.get("oids"),
                operations=msg.payload.get("operations"),
            )
            self._reply(msg, {"ok": True})
        except _INJECTED_FAULTS:
            raise
        except Exception as exc:
            self._reply(msg, {"ok": False, "error": type(exc).__name__})

    def _h_proxy_write(self, msg):
        """A remote transaction writes *here*, through its proxy.

        This is what a cross-site permit buys: the receiver's accesses at
        the giver's site run under the proxy's tid, so attribution, WAL
        images, and undo responsibility all land on the stand-in.
        """
        proxy = self.proxy_for(msg.payload["owner"], msg.payload["tid"])
        outcome = self.manager.try_write(
            proxy, msg.payload["oid"], msg.payload["value"]
        )
        self._reply(msg, {"granted": bool(outcome)})

    def _h_proxy_read(self, msg):
        proxy = self.proxy_for(msg.payload["owner"], msg.payload["tid"])
        outcome, value = self.manager.try_read(proxy, msg.payload["oid"])
        self._reply(msg, {"granted": bool(outcome), "value": value})

    # -- fate notification handlers ---------------------------------------

    def _h_proxy_note(self, msg):
        holders = self.remote_holders.setdefault(msg.payload["tid"], set())
        holders.add(msg.payload["holder"])

    def _h_abort_proxy(self, msg):
        proxy = self.proxies.get((msg.payload["owner"], msg.payload["tid"]))
        if proxy is not None:
            self._abort_unless_prepared(
                proxy, msg.payload.get("reason", "owner aborted")
            )

    def _h_commit_proxy(self, msg):
        """The remote owner committed on its own (no global group).

        Only a *standalone* proxy commits here: a proxy woven into a GC
        group belongs to two-phase commit, and committing it early would
        drag local group members past their vote.
        """
        proxy = self.proxies.get((msg.payload["owner"], msg.payload["tid"]))
        if proxy is None or self._live_td(proxy) is None:
            return
        if self.manager.dependencies.gc_group(proxy) == {proxy}:
            self.runtime.commit(proxy)

    # -- two-phase commit: coordinator ------------------------------------

    def _h_gc_begin(self, msg):
        gid = msg.payload["gid"]
        entry = self.coordinating.get(gid)
        if entry is not None:
            if entry["state"] != "collecting":
                self._reply(msg, {"committed": entry["verdict"] == "commit"})
            else:
                entry["client"] = (msg.src, msg.msg_id)
            return
        members = dict(msg.payload["members"])
        entry = {
            "members": members,
            "votes": {},
            "acks": set(),
            "state": "collecting",
            "verdict": None,
            "client": (msg.src, msg.msg_id),
            "ttl": self.vote_ttl,
        }
        self.coordinating[gid] = entry
        for site, tid_value in sorted(members.items()):
            if site == self.name:
                self._accept_prepare(gid, tid_value, self.name)
            else:
                self._send(
                    site,
                    PREPARE,
                    {"gid": gid, "tid": tid_value, "coordinator": self.name},
                )

    def _record_vote(self, gid, site, verdict):
        entry = self.coordinating.get(gid)
        if entry is None or entry["state"] != "collecting":
            return
        entry["votes"][site] = verdict
        if verdict == "abort":
            self._decide(gid, "abort")
        elif all(entry["votes"].get(s) == "commit" for s in entry["members"]):
            self._decide(gid, "commit")

    def _decide(self, gid, verdict):
        """Seal the global fate and release it.

        On commit the :class:`DecisionRecord` is force-logged *before*
        anything else — that flush is the transaction's global commit
        point.  Abort decisions are never logged (presumed abort: absence
        of a decision *is* the abort record).
        """
        entry = self.coordinating[gid]
        entry["state"] = "decided"
        entry["verdict"] = verdict
        participants = sorted(s for s in entry["members"] if s != self.name)
        local_value = entry["members"].get(self.name)
        local_tid = Tid(local_value) if local_value is not None else None
        if verdict == "commit":
            anchor = local_tid if local_tid is not None else Tid(0)
            group = ()
            if local_tid is not None:
                group = tuple(
                    sorted(
                        self.manager.dependencies.gc_group(local_tid) - {local_tid},
                        key=lambda t: t.value,
                    )
                )
            self.storage.log_decision(
                anchor, gid, "commit", group=group, participants=participants
            )
            self.durable_decisions[gid] = "commit"
        # The coordinator is its own participant: apply the decision to
        # the local member through the same path a remote one would use.
        self._apply_decision_locally(gid, verdict, local_value)
        for site in participants:
            self._send(
                site,
                DECISION,
                {"gid": gid, "verdict": verdict, "tid": entry["members"][site]},
            )
        client = entry.pop("client", None)
        if client is not None:
            src, msg_id = client
            self._send(
                src,
                "gc_begin.reply",
                {"gid": gid, "committed": verdict == "commit"},
                reply_to=msg_id,
            )

    def _h_vote(self, msg):
        self._record_vote(msg.payload["gid"], msg.payload["site"], msg.payload["verdict"])

    def _h_ack(self, msg):
        entry = self.coordinating.get(msg.payload["gid"])
        if entry is None or entry["state"] != "decided":
            return
        entry["acks"].add(msg.payload["site"])
        if entry["acks"] >= {s for s in entry["members"] if s != self.name}:
            entry["state"] = "done"

    def _h_status_req(self, msg):
        """Answer an in-doubt inquiry from durable truth.

        Still collecting -> pending.  Decided -> the verdict.  No state
        at all (a coordinator reborn after a crash) -> a logged commit
        decision says commit; *no information means abort* — the
        presumed-abort rule that makes coordinator amnesia safe.
        """
        gid = msg.payload["gid"]
        entry = self.coordinating.get(gid)
        if entry is not None and entry["state"] == "collecting":
            verdict = "pending"
        elif entry is not None:
            verdict = entry["verdict"]
        elif gid in self.durable_decisions:
            verdict = "commit"
        else:
            verdict = "abort"
        self._send(msg.src, STATUS_REP, {"gid": gid, "verdict": verdict})

    # -- two-phase commit: participant ------------------------------------

    def _h_prepare(self, msg):
        self._accept_prepare(
            msg.payload["gid"], msg.payload["tid"], msg.payload["coordinator"]
        )

    def _accept_prepare(self, gid, tid_value, coordinator):
        if gid in self.prepared or gid in self.pending_prepares:
            return  # duplicate PREPARE (at-least-once links)
        if gid in self.durable_decisions or gid in self.in_doubt:
            return
        self.pending_prepares[gid] = {
            "tid": Tid(tid_value),
            "coordinator": coordinator,
            "ttl": self.prepare_ttl,
        }
        self._attempt_prepare(gid)

    def _attempt_prepare(self, gid):
        """Try to vote; called at accept time and retried from ticks."""
        entry = self.pending_prepares.get(gid)
        if entry is None:
            return
        outcome = self.manager.try_prepare(
            entry["tid"], gid=gid, coordinator=entry["coordinator"]
        )
        if outcome:
            del self.pending_prepares[gid]
            self.prepared[gid] = {
                "tid": entry["tid"],
                "coordinator": entry["coordinator"],
            }
            # Pace decision inquiries with a lease: while it is live we
            # trust the decision is in flight, when it lapses we ask.
            self.deadlines.grant_lease(("gc", gid), self.inquiry_interval)
            self._cast_vote(gid, entry["coordinator"], "commit")
        elif outcome.status is PrepareStatus.ABORTED:
            del self.pending_prepares[gid]
            self._cast_vote(gid, entry["coordinator"], "abort")
        # NOT_COMPLETED / BLOCKED: keep pending, the tick loop retries.

    def _cast_vote(self, gid, coordinator, verdict):
        if coordinator == self.name:
            self._record_vote(gid, self.name, verdict)
        else:
            self._send(
                coordinator,
                VOTE,
                {"gid": gid, "site": self.name, "verdict": verdict},
            )

    def _h_decision(self, msg):
        gid = msg.payload["gid"]
        verdict = msg.payload["verdict"]
        self._apply_decision_locally(gid, verdict, msg.payload.get("tid"))
        self._send(msg.src, ACK, {"gid": gid, "site": self.name})

    def _h_status_rep(self, msg):
        verdict = msg.payload["verdict"]
        if verdict != "pending":
            self._apply_decision_locally(msg.payload["gid"], verdict, None)

    def _apply_decision_locally(self, gid, verdict, tid_value):
        """Finish the local member group per the global verdict.

        Handles every shape the participant can be in: still pending
        (never managed to vote), live-prepared, in doubt after a
        restart, or already settled (duplicate decision — a no-op).
        """
        self.pending_prepares.pop(gid, None)
        live = self.prepared.pop(gid, None)
        self.deadlines.forget(("gc", gid))
        if live is not None:
            if verdict == "commit":
                self.runtime.commit(live["tid"])
            else:
                self.manager.abort(
                    live["tid"], reason=f"global group {gid} aborted"
                )
                # The vote was force-logged, so its resolution must be
                # too: an abort record still in the volatile tail would
                # leave the durable log claiming we are in doubt.
                self.storage.sync_log()
            return
        if gid in self.in_doubt:
            self._finish_in_doubt(gid, verdict)
            return
        if tid_value is not None and verdict == "abort":
            # Decision for a member we never prepared (the PREPARE was
            # lost): an abort decision still names the component.
            self._abort_unless_prepared(
                Tid(tid_value), f"global group {gid} aborted"
            )

    def _finish_in_doubt(self, gid, verdict):
        """Settle a recovered in-doubt group at the log level.

        There is no live transaction state after a restart — recovery
        already reinstalled the group's updates (they were neither
        winners nor losers) — so commit is one durable commit record and
        abort is the undo pass plus abort records, exactly what the
        recovery manager would have done with the decision in hand.
        """
        entry = self.in_doubt.pop(gid)
        record = entry["record"]
        anchor = record.tid
        others = tuple(t for t in record.prepared_tids() if t != anchor)
        if verdict == "commit":
            self.storage.log_commit(anchor, group=others)
        else:
            members = sorted(record.prepared_tids(), key=lambda t: t.value)
            self.storage.undo_many(members)
            for member in members:
                self.storage.log_abort(member)
        self.storage.sync_log()

    # -- the tick loop -----------------------------------------------------

    def on_tick(self):
        """One deterministic slice of background duty per pump round."""
        if not self.up:
            return
        self.ticks += 1
        # Advance local transaction programs one cooperative step.
        self.runtime.round()
        # Retry pending votes; give up (vote abort) when the component
        # cannot complete within the prepare deadline.
        for gid in sorted(self.pending_prepares):
            entry = self.pending_prepares.get(gid)
            if entry is None:
                continue
            entry["ttl"] -= 1
            self._attempt_prepare(gid)
            entry = self.pending_prepares.get(gid)
            if entry is not None and entry["ttl"] <= 0:
                del self.pending_prepares[gid]
                self._cast_vote(gid, entry["coordinator"], "abort")
        # Coordinator vote deadlines: silence is an abort vote.
        for gid in sorted(self.coordinating):
            entry = self.coordinating[gid]
            if entry["state"] != "collecting":
                continue
            entry["ttl"] -= 1
            if entry["ttl"] <= 0:
                self._decide(gid, "abort")
        # Prepared but no decision: when the inquiry lease lapses, ask.
        for gid in sorted(self.prepared):
            key = ("gc", gid)
            if not self.deadlines.lease_live(key):
                self._send(
                    self.prepared[gid]["coordinator"], STATUS_REQ,
                    {"gid": gid, "site": self.name},
                )
                self.deadlines.grant_lease(key, self.inquiry_interval)
        # In-doubt after restart: periodic inquiry until resolved.
        for gid in sorted(self.in_doubt):
            entry = self.in_doubt[gid]
            if self.ticks >= entry["next_ask"]:
                self._send(
                    entry["record"].coordinator, STATUS_REQ,
                    {"gid": gid, "site": self.name},
                )
                entry["next_ask"] = self.ticks + self.inquiry_interval

    _HANDLERS = {
        INITIATE: _h_initiate,
        BEGIN: _h_begin,
        SPAWN: _h_spawn,
        WAIT: _h_wait,
        RESULT: _h_result,
        ABORT_TX: _h_abort_tx,
        FORM_DEP: _h_form_dep,
        FORM_REMOTE_DEP: _h_form_remote_dep,
        DELEGATE: _h_delegate,
        PERMIT: _h_permit,
        PROXY_WRITE: _h_proxy_write,
        PROXY_READ: _h_proxy_read,
        PROXY_NOTE: _h_proxy_note,
        ABORT_PROXY: _h_abort_proxy,
        COMMIT_PROXY: _h_commit_proxy,
        GC_BEGIN: _h_gc_begin,
        PREPARE: _h_prepare,
        VOTE: _h_vote,
        DECISION: _h_decision,
        ACK: _h_ack,
        STATUS_REQ: _h_status_req,
        STATUS_REP: _h_status_rep,
    }
