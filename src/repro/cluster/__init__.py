"""Multi-site ASSET: cross-site primitives over an unreliable fabric.

A :class:`~repro.cluster.cluster.Cluster` connects N
:class:`~repro.cluster.site.Site` instances — each a complete local
ASSET stack (storage, WAL, transaction manager, cooperative runtime) —
through the deterministic unreliable
:class:`~repro.net.fabric.NetworkFabric`.  Remote transactions are
represented locally by *proxies*, which is what lets every section 4.2
primitive (``delegate``, ``permit``, ``form_dependency``) span sites
without changing the core.  Cross-site groups commit atomically by
presumed-abort two-phase commit; crashes, partitions, and message loss
are survived, swept, and judged by the oracles in
:mod:`repro.chaos.oracles`.
"""

from repro.cluster.cluster import Cluster, GroupOutcome, SiteRef
from repro.cluster.site import Site

__all__ = ["Cluster", "GroupOutcome", "Site", "SiteRef"]
