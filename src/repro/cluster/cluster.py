"""The multi-site ASSET cluster: N sites, one fabric, one plan.

:class:`Cluster` assembles :class:`~repro.cluster.site.Site` instances
over a shared :class:`~repro.net.fabric.NetworkFabric`, a shared
:class:`~repro.common.clock.LogicalClock`, and a *single*
:class:`~repro.chaos.faults.FaultInjector` — so every storage I/O step
and every message step across all sites draws from one deterministic
counter, and one :class:`~repro.chaos.faults.FaultPlan` reproduces a
whole multi-site failure scenario.

The driver itself is a fabric endpoint named ``"client"`` — the test
console.  Its RPCs ride the same unreliable links as everything else and
are retried by the resilience :class:`~repro.resilience.retry.RetryPolicy`
(network faults are :class:`~repro.common.errors.TransientError`\\ s, so
the default policy already covers them).  A call that exhausts retries
raises — or, for :meth:`group_commit`, degrades to an *unresolved*
:class:`GroupOutcome`: the cluster may still settle the group on its own
once links heal; :meth:`converge` drives that settlement.

The cluster records every group-commit *intent* in :attr:`groups`, in
exactly the shape :func:`repro.chaos.oracles.evaluate_cluster` consumes
— the bridge between "what the driver asked for" and "what the durable
logs say happened" that the cross-site atomicity oracle checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.chaos.oracles import evaluate_cluster
from repro.common.clock import LogicalClock
from repro.common.errors import NetworkTimeout, RetryExhausted
from repro.common.ids import Tid
from repro.core.dependency import DependencyType
from repro.core.sharding import ShardRouter
from repro.net.fabric import NetworkFabric
from repro.resilience.retry import RetryPolicy
from repro.cluster import site as protocol
from repro.cluster.site import Site

__all__ = ["Cluster", "GroupOutcome", "SiteRef"]


@dataclass(frozen=True)
class SiteRef:
    """A transaction named from outside its site: ``(site, tid)``."""

    site: str
    tid: Tid

    def __repr__(self):
        return f"{self.site}:{self.tid.value}"


@dataclass(frozen=True)
class GroupOutcome:
    """What the driver learned about a global group commit.

    ``resolved`` is False when the console lost contact before hearing
    the verdict — the group is in doubt *from the driver's view* only;
    the sites settle it themselves and :attr:`committed` then reflects
    the pessimistic presumption, not the final fate.  ``abort_reason``
    records why a degraded outcome aborted (for the error paths that
    never reach 2PC at all, e.g. a coordinator hosting no member).
    """

    gid: int
    committed: bool
    resolved: bool = True
    abort_reason: str = ""

    def __bool__(self):
        return self.resolved and self.committed


class Cluster:
    """N ASSET sites behind one deterministic unreliable fabric."""

    def __init__(
        self,
        sites=("alpha", "beta", "gamma"),
        plan=None,
        injector=None,
        rpc_timeout=16,
        rpc_attempts=4,
        **site_options,
    ):
        self.injector = (
            injector
            if injector is not None
            else FaultInjector(plan=plan if plan is not None else FaultPlan())
        )
        self.clock = LogicalClock()
        self.fabric = NetworkFabric(injector=self.injector)
        self.fabric.crash_hook = self.crash_site
        self.sites = {
            name: Site(
                name,
                self.fabric,
                clock=self.clock,
                injector=self.injector,
                **site_options,
            )
            for name in sites
        }
        self.rpc_timeout = rpc_timeout
        self.retry = RetryPolicy(
            max_attempts=rpc_attempts, base_delay=1, max_delay=4, clock=self.clock
        )
        self.fabric.register("client", self._on_client_message)
        self._replies = {}
        self._gids = count(1)
        self.groups = {}
        self.rounds = 0
        self._site_options = dict(site_options)
        # Membership map + object-range placement.  ``membership`` is
        # the set of sites accepting *new* placements (a left site stays
        # in ``sites`` to serve 2PC duty for state it still holds); the
        # router hashes keys into a fixed number of ranges and
        # ``placement`` maps each range to its owning site.  Both carry
        # the membership epoch so stale routes are rejected and retried.
        self.membership = set(sites)
        self.membership_epoch = 0
        self.router = ShardRouter(n_shards=max(8, 2 * len(self.sites)))
        self.placement = self._balanced_placement()

    # -- time --------------------------------------------------------------

    def tick(self):
        """One cluster round: deliver, then give every site a duty slice."""
        # Planned membership churn fires on message-step numbers inside
        # fabric.send; the fabric only queues the request (joining a
        # site mid-send would recurse into the cluster), and the next
        # tick boundary executes it deterministically.
        for action, arg in self.fabric.take_churn():
            if action == "join":
                if arg not in self.sites:
                    self.join_site(arg)
            elif action == "leave":
                leaver, successor = arg
                if (
                    leaver in self.membership
                    and successor in self.membership
                    and successor != leaver
                ):
                    # A plan naming an absent successor (typo, or its
                    # join fires at a later step) is skipped, not a
                    # ValueError out of the middle of the tick loop.
                    self.leave_site(leaver, successor, wait=False)
        self.fabric.pump_round()
        for name in sorted(self.sites):
            self.sites[name].on_tick()
        self.clock.tick()
        self.rounds += 1

    def settle(self, rounds=8):
        """Run a fixed number of rounds (protocol soak, no early exit)."""
        for __ in range(rounds):
            self.tick()

    def unsettled(self):
        return self.fabric.pending() > 0 or any(
            site.up and site.unsettled() for site in self.sites.values()
        )

    def converge(self, max_rounds=200):
        """Drive rounds until protocol state quiesces; True on success.

        This is the post-fault settlement loop: decision re-sends,
        status inquiries, and in-doubt resolution all happen on ticks,
        so "no pending messages and no unsettled site" is the fixpoint.
        A cluster that cannot settle (coordinator still partitioned
        away) exhausts the budget and returns False.
        """
        idle = 0
        for __ in range(max_rounds):
            if not self.unsettled():
                idle += 1
                if idle >= 2:
                    return True
            else:
                idle = 0
            self.tick()
        return not self.unsettled()

    # -- the console RPC channel ------------------------------------------

    def _on_client_message(self, msg):
        if msg.reply_to is not None:
            self._replies[msg.reply_to] = msg

    def call(self, dst, kind, payload=None, timeout=None, retry=True):
        """An RPC from the console, over the same unreliable links.

        Raises :class:`~repro.common.errors.NetworkTimeout` when no
        reply arrives within the round budget; with ``retry`` the
        resilience policy re-sends (timeouts are transient) and
        :class:`~repro.common.errors.RetryExhausted` is the final word.
        """
        timeout = timeout if timeout is not None else self.rpc_timeout

        def attempt():
            msg = self.fabric.send("client", dst, kind, payload or {})
            for __ in range(timeout):
                self.tick()
                reply = self._replies.pop(msg.msg_id, None)
                if reply is not None:
                    return reply
            raise NetworkTimeout("client", dst, kind, timeout)

        if retry:
            return self.retry.run(attempt, op=f"rpc.{kind}")
        return attempt()

    # -- transaction console ----------------------------------------------

    def site(self, name):
        return self.sites[name]

    def initiate_at(self, site, function=None, args=()):
        """Cross-site ``initiate``; returns a ref or None (null tid)."""
        reply = self.call(
            site, protocol.INITIATE, {"function": function, "args": tuple(args)}
        )
        value = reply.payload["tid"]
        return SiteRef(site, Tid(value)) if value else None

    def begin(self, ref):
        reply = self.call(ref.site, protocol.BEGIN, {"tid": ref.tid.value})
        return reply.payload["started"]

    def spawn_at(self, site, function, args=()):
        """initiate + begin in one console exchange."""
        reply = self.call(
            site, protocol.SPAWN, {"function": function, "args": tuple(args)}
        )
        value = reply.payload["tid"]
        return SiteRef(site, Tid(value)) if value else None

    def wait(self, ref, max_rounds=64):
        """Poll the paper's ``wait`` remotely until the fate is known."""
        for __ in range(max_rounds):
            reply = self.call(ref.site, protocol.WAIT, {"tid": ref.tid.value})
            outcome = reply.payload["outcome"]
            if outcome != "running":
                return outcome
        return "running"

    def result_of(self, ref):
        reply = self.call(ref.site, protocol.RESULT, {"tid": ref.tid.value})
        return reply.payload["value"]

    def abort(self, ref, reason="console abort"):
        reply = self.call(
            ref.site, protocol.ABORT_TX, {"tid": ref.tid.value, "reason": reason}
        )
        return reply.payload.get("aborted", False)

    # -- cross-site primitives --------------------------------------------

    def form_dependency(self, dep_type, dependee, dependent):
        """Section 4.2 ``form_dependency`` across sites.

        Same-site refs use the local primitive directly.  Cross-site,
        the edge is split into per-site halves against proxies:

        * **GC** — symmetric: each site links its member to the peer's
          proxy, which is what stitches local groups into the global one
          (and what routes the 2PC prepare through delegated state).
        * **AD/ED/BCD/BAD** (dependee's fate triggers the dependent) —
          installed at *both* sites so whichever side hears the news
          first propagates it.
        * **CD** — only the dependent's site needs the edge; the proxy
          terminates when the dependee's fate notification arrives.
        """
        if dependee.site == dependent.site:
            reply = self.call(
                dependee.site,
                protocol.FORM_DEP,
                {
                    "dep_type": dep_type.name,
                    "ti": dependee.tid.value,
                    "tj": dependent.tid.value,
                },
            )
            return reply.payload["ok"]
        halves = []
        if dep_type is DependencyType.GC or dep_type.aborts_dependent_on_commit or (
            dep_type is DependencyType.AD
        ):
            halves.append((dependee.site, "dependee", dependee, dependent))
        halves.append((dependent.site, "dependent", dependent, dependee))
        ok = True
        for site, role, local, peer in halves:
            reply = self.call(
                site,
                protocol.FORM_REMOTE_DEP,
                {
                    "dep_type": dep_type.name,
                    "role": role,
                    "local": local.tid.value,
                    "peer_site": peer.site,
                    "peer_tid": peer.tid.value,
                },
            )
            ok = ok and reply.payload["ok"]
        return ok

    def delegate(self, giver, receiver, oids=None):
        """Cross-site ``delegate``: responsibility moves to the receiver.

        The giver's site logs the delegation against the receiver's
        proxy, so the giver-site WAL attributes undo to the receiver's
        stand-in from that point on.
        """
        reply = self.call(
            giver.site,
            protocol.DELEGATE,
            {
                "tid": giver.tid.value,
                "receiver_site": receiver.site,
                "receiver_tid": receiver.tid.value,
                "oids": oids,
            },
        )
        return reply.payload

    def permit(self, giver, receiver, oids=None, operations=None):
        """Cross-site ``permit``: the receiver may access at the giver's
        site, through its proxy there."""
        reply = self.call(
            giver.site,
            protocol.PERMIT,
            {
                "tid": giver.tid.value,
                "receiver_site": receiver.site,
                "receiver_tid": receiver.tid.value,
                "oids": oids,
                "operations": operations,
            },
        )
        return reply.payload

    def write_as(self, ref, at_site, oid, value):
        """``ref`` writes an object hosted at ``at_site`` via its proxy."""
        reply = self.call(
            at_site,
            protocol.PROXY_WRITE,
            {"owner": ref.site, "tid": ref.tid.value, "oid": oid, "value": value},
        )
        return reply.payload["granted"]

    def read_as(self, ref, at_site, oid):
        reply = self.call(
            at_site,
            protocol.PROXY_READ,
            {"owner": ref.site, "tid": ref.tid.value, "oid": oid},
        )
        return reply.payload

    # -- global group commit ----------------------------------------------

    def link_group(self, refs):
        """Pairwise-GC the refs (the paper's group formation), returning
        the same refs for chaining.  Cross-site pairs get proxy webs."""
        for left, right in zip(refs, refs[1:]):
            self.form_dependency(DependencyType.GC, left, right)
        return refs

    def group_commit(self, refs, coordinator=None, timeout=64):
        """Commit a cross-site group atomically via presumed-abort 2PC.

        ``refs`` must name at most one component per site (same-site
        members belong to one local GC group; pass any representative).
        The coordinator defaults to the first ref's site and must host a
        member — its durable log is the group's commit point.
        """
        members = {}
        for ref in refs:
            if ref.site in members:
                raise ValueError(
                    f"one representative per site: {ref.site} named twice"
                )
            members[ref.site] = ref.tid.value
        coordinator = coordinator or refs[0].site
        gid = next(self._gids)
        if coordinator not in members:
            # Degrade like the other error paths instead of raising: the
            # group never enters 2PC, so abort the members (best-effort)
            # and hand back a resolved abort with the reason recorded.
            reason = f"coordinator {coordinator} hosts no member"
            self.groups[gid] = {
                "coordinator": coordinator,
                "members": {ref.site: ref.tid for ref in refs},
            }
            for ref in refs:
                try:
                    self.abort(ref, reason=reason)
                except (NetworkTimeout, RetryExhausted):
                    pass  # their sites settle the abort on their own
            return GroupOutcome(
                gid=gid, committed=False, abort_reason=reason
            )
        self.groups[gid] = {
            "coordinator": coordinator,
            "members": {ref.site: ref.tid for ref in refs},
        }
        # Tell the fabric who coordinates the group in flight, so a
        # planned ``kill_coordinator_at`` mark knows whom to kill.
        self.fabric.coordinator_name = coordinator
        try:
            reply = self.call(
                coordinator,
                protocol.GC_BEGIN,
                {"gid": gid, "members": members},
                timeout=timeout,
            )
        except (NetworkTimeout, RetryExhausted):
            # The console lost contact — not the cluster's commit point.
            # Presume abort from out here; converge() settles the truth.
            return GroupOutcome(gid=gid, committed=False, resolved=False)
        return GroupOutcome(gid=gid, committed=reply.payload["committed"])

    # -- failure console ---------------------------------------------------

    def crash_site(self, name):
        self.sites[name].crash()

    def restart_site(self, name):
        return self.sites[name].restart()

    def restart_down_sites(self):
        for name in sorted(self.sites):
            if not self.sites[name].up:
                self.restart_site(name)

    def partition(self, *groups):
        self.fabric.partition(groups)

    def heal(self):
        self.fabric.heal()

    # -- membership churn & object-range routing ---------------------------

    def _balanced_placement(self):
        members = sorted(self.membership)
        return {
            shard: members[shard % len(members)]
            for shard in range(self.router.n_shards)
        }

    def _announce_epoch(self, event, site):
        """Fire-and-forget the new membership epoch to every live site.

        Loss is survivable: a site with a stale epoch merely rejects
        nothing extra, and learns the truth from the next routed
        request or churn event that reaches it.
        """
        for name in sorted(self.sites):
            if self.sites[name].up:
                self.fabric.send(
                    "client",
                    name,
                    protocol.JOIN_ANNOUNCE,
                    {
                        "event": event,
                        "site": site,
                        "epoch": self.membership_epoch,
                    },
                )

    def join_site(self, name, **site_options):
        """Add a site to the cluster and rebalance placement ranges.

        The joiner starts with the current membership epoch; every
        other site learns the bumped epoch so routes resolved before
        the join are rejected as stale and re-resolved.
        """
        if name in self.sites:
            raise ValueError(f"site {name} already exists")
        options = dict(self._site_options)
        options.update(site_options)
        self.membership_epoch += 1
        self.router.bump_epoch()
        site = Site(
            name,
            self.fabric,
            clock=self.clock,
            injector=self.injector,
            **options,
        )
        site.membership_epoch = self.membership_epoch
        self.sites[name] = site
        self.membership.add(name)
        self.placement = self._balanced_placement()
        self._announce_epoch("join", name)
        return site

    def leave_site(self, name, successor, wait=True, timeout=None):
        """Remove ``name`` from membership, handing its state over.

        The leaver delegates its uncommitted transactions to adopted
        receivers at ``successor`` (ASSET ``delegate`` as migration) and
        its placement ranges move to the successor.  The site object
        stays registered — it keeps serving 2PC duty for groups it
        already voted in — but accepts no new placements.  With
        ``wait`` the console blocks for the handoff result and returns
        it ({'ok', 'moved', 'adopted'}); without, the handoff proceeds
        in the background (planned-churn sweeps).
        """
        if name not in self.membership:
            raise ValueError(f"site {name} is not a member")
        if successor not in self.membership or successor == name:
            raise ValueError(f"bad successor {successor} for {name}")
        self.membership_epoch += 1
        self.router.bump_epoch()
        self.membership.discard(name)
        self.placement = {
            shard: (successor if owner == name else owner)
            for shard, owner in self.placement.items()
        }
        self._announce_epoch("leave", name)
        payload = {"successor": successor, "epoch": self.membership_epoch}
        if not wait:
            self.fabric.send("client", name, protocol.LEAVE_BEGIN, payload)
            return None
        reply = self.call(
            name,
            protocol.LEAVE_BEGIN,
            payload,
            timeout=timeout if timeout is not None else 4 * self.rpc_timeout,
        )
        return reply.payload

    def route(self, key):
        """The site owning ``key``'s placement range right now."""
        return self.placement[self.router.shard_for_key(key)]

    def spawn_placed(self, key, function, args=()):
        """Spawn at the site owning ``key``, with stale-route retry.

        The request carries the epoch it was routed under; a site that
        has seen newer membership (or has left) rejects it, the console
        re-resolves against its own placement, and retries once per
        epoch step — the reject/retry loop the epoch exists for.
        """
        for __ in range(4):
            site = self.route(key)
            reply = self.call(
                site,
                protocol.SPAWN,
                {
                    "function": function,
                    "args": tuple(args),
                    "route_epoch": self.membership_epoch,
                },
            )
            if not reply.payload.get("stale_route"):
                value = reply.payload["tid"]
                return SiteRef(site, Tid(value)) if value else None
            # Adopt the owner's newer epoch and re-resolve.
            self.membership_epoch = max(
                self.membership_epoch, reply.payload.get("epoch", 0)
            )
        raise RetryExhausted(
            f"route for {key!r} still stale after retries", attempts=4
        )

    # -- verdicts ----------------------------------------------------------

    def durable_records(self):
        """Per-site durable log views, for the cross-site oracles."""
        return {
            name: site.durable_records()
            for name, site in sorted(self.sites.items())
        }

    def evaluate(self, label="", converged=True):
        """Run the cross-site oracles over every recorded group intent."""
        return evaluate_cluster(
            self.groups, self.durable_records(), label=label, converged=converged
        )
